"""Two-dimensional optimized rectangle rules (§1.4 outlook).

§1.4 sketches the extension to rules whose presumptive condition is a region
in the plane of two numeric attributes, e.g.

    ``(Age, Balance) ∈ X ⇒ (CardLoan = yes)``.

Finding the optimal *arbitrary connected* region is NP-hard; the follow-up
papers study rectangles, x-monotone and rectilinear-convex regions.  This
module implements the rectangular case on a bucket grid, which already
showcases how the one-dimensional solvers compose:

1. bucket each attribute independently (equi-depth, as in §3) into a grid of
   ``rows × columns`` cells with counts ``u_ij`` / ``v_ij``;
2. for every pair of row indices ``(r1, r2)`` collapse the rows in between
   into a single row of column totals;
3. run the 1-D optimizers over that collapsed row to find the best column
   range — the result is the best rectangle spanning rows ``r1..r2``.

The total cost is ``O(R² · C)`` for an ``R × C`` grid, a practical polynomial
algorithm for the grid sizes the examples use (the follow-up papers give
asymptotically faster variants for the rectangle case; the value here is the
exact composition with this library's 1-D solvers).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bucketing.base import Bucketing, Bucketizer
from repro.bucketing.equidepth_sort import SortingEquiDepthBucketizer
from repro.core.optimized_confidence import maximize_ratio
from repro.core.optimized_support import maximize_support
from repro.core.rules import RuleKind
from repro.exceptions import OptimizationError
from repro.relation.conditions import Condition, NumericInRange
from repro.relation.relation import Relation

__all__ = ["GridProfile", "RectangleRule", "optimized_rectangle"]


@dataclass(frozen=True)
class GridProfile:
    """Per-cell counts over a 2-D bucket grid.

    ``sizes[i, j]`` is the number of tuples whose row attribute falls in row
    bucket ``i`` and column attribute in column bucket ``j``; ``values`` is
    the analogous count of tuples that also satisfy the objective.
    """

    row_attribute: str
    column_attribute: str
    objective_label: str
    sizes: np.ndarray
    values: np.ndarray
    row_lows: np.ndarray
    row_highs: np.ndarray
    column_lows: np.ndarray
    column_highs: np.ndarray
    total: float

    @staticmethod
    def from_relation(
        relation: Relation,
        row_attribute: str,
        column_attribute: str,
        objective: Condition,
        row_bucketing: Bucketing,
        column_bucketing: Bucketing,
    ) -> "GridProfile":
        """Count a relation into the 2-D grid defined by two bucketings."""
        row_values = np.asarray(relation.numeric_column(row_attribute), dtype=np.float64)
        column_values = np.asarray(
            relation.numeric_column(column_attribute), dtype=np.float64
        )
        objective_mask = np.asarray(objective.mask(relation), dtype=bool)

        row_indices = row_bucketing.assign(row_values)
        column_indices = column_bucketing.assign(column_values)
        rows = row_bucketing.num_buckets
        columns = column_bucketing.num_buckets

        flat = row_indices * columns + column_indices
        sizes = np.bincount(flat, minlength=rows * columns).reshape(rows, columns)
        values = np.bincount(flat[objective_mask], minlength=rows * columns).reshape(
            rows, columns
        )

        row_lows, row_highs = row_bucketing.data_bounds(row_values)
        column_lows, column_highs = column_bucketing.data_bounds(column_values)
        return GridProfile(
            row_attribute=row_attribute,
            column_attribute=column_attribute,
            objective_label=str(objective),
            sizes=sizes.astype(np.float64),
            values=values.astype(np.float64),
            row_lows=row_lows,
            row_highs=row_highs,
            column_lows=column_lows,
            column_highs=column_highs,
            total=float(relation.num_tuples),
        )

    @property
    def shape(self) -> tuple[int, int]:
        """Grid shape ``(rows, columns)``."""
        return tuple(self.sizes.shape)  # type: ignore[return-value]


@dataclass(frozen=True)
class RectangleRule:
    """An optimized rectangle rule ``(A, B) ∈ [lows..highs] ⇒ C``."""

    row_attribute: str
    column_attribute: str
    objective_label: str
    row_start: int
    row_end: int
    column_start: int
    column_end: int
    row_low: float
    row_high: float
    column_low: float
    column_high: float
    support: float
    confidence: float
    kind: RuleKind

    def region_condition(self) -> Condition:
        """The rectangle as a conjunction of two range conditions."""
        return NumericInRange(self.row_attribute, self.row_low, self.row_high) & NumericInRange(
            self.column_attribute, self.column_low, self.column_high
        )

    def __str__(self) -> str:
        return (
            f"({self.row_attribute} in [{self.row_low:g}, {self.row_high:g}]) and "
            f"({self.column_attribute} in [{self.column_low:g}, {self.column_high:g}]) "
            f"=> {self.objective_label}  "
            f"[support={self.support:.1%}, confidence={self.confidence:.1%}]"
        )


def optimized_rectangle(
    relation: Relation,
    row_attribute: str,
    column_attribute: str,
    objective: Condition,
    kind: RuleKind = RuleKind.OPTIMIZED_CONFIDENCE,
    min_support: float = 0.05,
    min_confidence: float = 0.5,
    grid: tuple[int, int] = (30, 30),
    bucketizer: Bucketizer | None = None,
    rng: np.random.Generator | None = None,
) -> RectangleRule | None:
    """Best axis-aligned rectangle on a 2-D bucket grid.

    Parameters
    ----------
    kind:
        ``OPTIMIZED_CONFIDENCE`` maximizes confidence subject to
        ``support >= min_support``; ``OPTIMIZED_SUPPORT`` maximizes support
        subject to ``confidence >= min_confidence``.
    grid:
        Number of row and column buckets.
    """
    if grid[0] <= 0 or grid[1] <= 0:
        raise OptimizationError("grid dimensions must be positive")
    bucketizer = bucketizer if bucketizer is not None else SortingEquiDepthBucketizer()
    row_bucketing = bucketizer.build(
        relation.numeric_column(row_attribute), grid[0], rng=rng
    )
    column_bucketing = bucketizer.build(
        relation.numeric_column(column_attribute), grid[1], rng=rng
    )
    profile = GridProfile.from_relation(
        relation, row_attribute, column_attribute, objective, row_bucketing, column_bucketing
    )
    return _best_rectangle(profile, kind, min_support, min_confidence)


def _best_rectangle(
    profile: GridProfile,
    kind: RuleKind,
    min_support: float,
    min_confidence: float,
) -> RectangleRule | None:
    """Search every row band and optimize the column range inside it."""
    rows, _ = profile.shape
    prefix_sizes = np.concatenate(
        (np.zeros((1, profile.sizes.shape[1])), np.cumsum(profile.sizes, axis=0)), axis=0
    )
    prefix_values = np.concatenate(
        (np.zeros((1, profile.values.shape[1])), np.cumsum(profile.values, axis=0)), axis=0
    )

    best: RectangleRule | None = None
    best_key: tuple[float, float] | None = None
    for row_start in range(rows):
        for row_end in range(row_start, rows):
            band_sizes = prefix_sizes[row_end + 1] - prefix_sizes[row_start]
            band_values = prefix_values[row_end + 1] - prefix_values[row_start]
            keep = band_sizes > 0
            if not np.any(keep):
                continue
            kept_columns = np.nonzero(keep)[0]
            sizes = band_sizes[keep]
            values = band_values[keep]
            if kind is RuleKind.OPTIMIZED_CONFIDENCE:
                selection = maximize_ratio(
                    sizes, values, min_support * profile.total, total=profile.total
                )
                if selection is None:
                    continue
                key = (selection.ratio, selection.support)
            elif kind is RuleKind.OPTIMIZED_SUPPORT:
                selection = maximize_support(
                    sizes, values, min_confidence, total=profile.total
                )
                if selection is None:
                    continue
                key = (selection.support, selection.ratio)
            else:
                raise OptimizationError(
                    f"rectangle mining supports confidence/support rules, got {kind}"
                )
            if best_key is None or key > best_key:
                column_start = int(kept_columns[selection.start])
                column_end = int(kept_columns[selection.end])
                best_key = key
                best = RectangleRule(
                    row_attribute=profile.row_attribute,
                    column_attribute=profile.column_attribute,
                    objective_label=profile.objective_label,
                    row_start=row_start,
                    row_end=row_end,
                    column_start=column_start,
                    column_end=column_end,
                    row_low=float(profile.row_lows[row_start]),
                    row_high=float(profile.row_highs[row_end]),
                    column_low=float(profile.column_lows[column_start]),
                    column_high=float(profile.column_highs[column_end]),
                    support=selection.support,
                    confidence=selection.ratio,
                    kind=kind,
                )
    return best
