"""Two-dimensional optimized rectangle rules (§1.4 outlook).

§1.4 sketches the extension to rules whose presumptive condition is a region
in the plane of two numeric attributes, e.g.

    ``(Age, Balance) ∈ X ⇒ (CardLoan = yes)``.

Finding the optimal *arbitrary connected* region is NP-hard; the follow-up
papers study rectangles, x-monotone and rectilinear-convex regions.  This
module implements the rectangular case on a bucket grid:

1. bucket each attribute independently (equi-depth, as in §3) into a grid of
   ``rows × columns`` cells with counts ``u_ij`` / ``v_ij`` — a
   :class:`~repro.pipeline.GridProfile`, built either in-memory or from any
   :class:`~repro.pipeline.DataSource` through
   :class:`~repro.pipeline.GridProfileBuilder` (so rectangles mine
   out-of-core, under any pipeline executor, without materializing the
   relation);
2. collapse pairs of row indices ``(r1, r2)`` into single rows of column
   totals — whole *blocks* of bands at once, via a cumulative sum over the
   grid's rows and one fancy-indexed difference per block (bounded memory,
   no per-band Python lists);
3. solve the best column range of every band in the block with one stacked
   call to the batched fast-path solvers
   (:func:`~repro.core.fastpath.fast_maximize_ratio_many` /
   :func:`~repro.core.fastpath.fast_maximize_support_many`), instead of
   ``R²`` Python-level solver invocations.

The total work is ``O(R² · C)`` as before (the follow-up papers give
asymptotically faster variants), but every step is array-native now.  The
per-band scalar solvers survive as the ``engine="reference"`` oracle: on
integer-count grids whose total stays below ~1e7 tuples — the stacked
solvers' float-division exactness envelope (see ``repro.core.fastpath``) —
both engines return bit-identical rectangles, which
``tests/extensions/test_two_dimensional.py`` asserts against a brute-force
enumeration oracle.

.. deprecated::
    :func:`optimized_rectangle` is a thin shim over
    :func:`mine_rectangle_rule` kept for the pre-pipeline call shape; new
    code should call :func:`mine_rectangle_rule`, which also accepts
    streaming sources and an ``engine`` parameter.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.bucketing.base import Bucketizer
from repro.bucketing.equidepth_sort import SortingEquiDepthBucketizer
from repro.core.fastpath import fast_maximize_ratio_many, fast_maximize_support_many
from repro.core.optimized_confidence import maximize_ratio
from repro.core.optimized_support import maximize_support
from repro.core.rules import RangeSelection, RuleKind
from repro.exceptions import OptimizationError
from repro.pipeline.grid import GridProfile, GridProfileBuilder
from repro.pipeline.sources import DataSource
from repro.relation.conditions import BooleanIs, Condition, NumericInRange
from repro.relation.relation import Relation

__all__ = [
    "GridProfile",
    "RectangleRule",
    "mine_rectangle_rule",
    "optimized_rectangle",
]

_ENGINES = ("fast", "reference")


@dataclass(frozen=True)
class RectangleRule:
    """An optimized rectangle rule ``(A, B) ∈ [lows..highs] ⇒ C``."""

    row_attribute: str
    column_attribute: str
    objective_label: str
    row_start: int
    row_end: int
    column_start: int
    column_end: int
    row_low: float
    row_high: float
    column_low: float
    column_high: float
    support: float
    confidence: float
    kind: RuleKind

    def region_condition(self) -> Condition:
        """The rectangle as a conjunction of two range conditions."""
        return NumericInRange(self.row_attribute, self.row_low, self.row_high) & NumericInRange(
            self.column_attribute, self.column_low, self.column_high
        )

    def __str__(self) -> str:
        return (
            f"({self.row_attribute} in [{self.row_low:g}, {self.row_high:g}]) and "
            f"({self.column_attribute} in [{self.column_low:g}, {self.column_high:g}]) "
            f"=> {self.objective_label}  "
            f"[support={self.support:.1%}, confidence={self.confidence:.1%}]"
        )


def mine_rectangle_rule(
    data: Relation | DataSource,
    row_attribute: str,
    column_attribute: str,
    objective: Condition | str,
    kind: RuleKind = RuleKind.OPTIMIZED_CONFIDENCE,
    min_support: float = 0.05,
    min_confidence: float = 0.5,
    grid: tuple[int, int] = (30, 30),
    bucketizer: Bucketizer | None = None,
    rng: np.random.Generator | None = None,
    engine: str = "fast",
    executor: str = "serial",
    builder: GridProfileBuilder | None = None,
    store: "object | None" = None,
    kernel_tier: str | None = None,
) -> RectangleRule | None:
    """Best axis-aligned rectangle on a 2-D bucket grid.

    Parameters
    ----------
    data:
        An in-memory :class:`Relation` or any
        :class:`~repro.pipeline.DataSource`.  In-memory data is bucketed
        with ``bucketizer`` (exact equi-depth by default) and counted in one
        kernel call; a source is routed through
        :class:`~repro.pipeline.GridProfileBuilder` — two scans, never
        materialized.
    kind:
        ``OPTIMIZED_CONFIDENCE`` maximizes confidence subject to
        ``support >= min_support``; ``OPTIMIZED_SUPPORT`` maximizes support
        subject to ``confidence >= min_confidence``.
    grid:
        Number of row and column buckets.
    bucketizer / rng:
        Bucketing strategy and boundary randomness for in-memory data
        (``rng`` also seeds the pipeline's reservoir pass for sources).
    engine:
        ``"fast"`` solves whole blocks of row bands with the stacked batched
        solvers (falling back to per-band scalar sweeps on very wide grids);
        ``"reference"`` runs the per-band object-based oracle.  Both return
        identical rectangles on grids within the batched solvers' exactness
        envelope (integer counts, totals below ~1e7 tuples).
    executor / builder:
        Counting executor for sources (``"serial"``, ``"streaming"``,
        ``"multiprocessing"``), or a pre-configured builder overriding it.
    store:
        Optional :class:`~repro.store.ProfileStore` for source-backed
        mining: a matching grid snapshot is served with zero physical
        scans, and an append-only grown source counts only its tail.
        Ignored for in-memory relations (they are counted directly).
    kernel_tier:
        Counting kernel tier for source-backed mining (``"auto"`` /
        ``"numpy"`` / ``"compiled"``; tiers are bit-identical).  Ignored
        when ``builder`` is supplied or for in-memory relations.
    """
    if grid[0] <= 0 or grid[1] <= 0:
        raise OptimizationError("grid dimensions must be positive")
    if row_attribute == column_attribute:
        raise OptimizationError(
            "the rectangle's row and column attributes must differ"
        )
    if engine not in _ENGINES:
        raise OptimizationError(
            f"unknown solver engine {engine!r}; use 'fast' or 'reference'"
        )
    if isinstance(objective, str):
        objective = BooleanIs(objective, True)
    if isinstance(data, Relation):
        bucketizer = bucketizer if bucketizer is not None else SortingEquiDepthBucketizer()
        row_bucketing = bucketizer.build(
            data.numeric_column(row_attribute), grid[0], rng=rng
        )
        column_bucketing = bucketizer.build(
            data.numeric_column(column_attribute), grid[1], rng=rng
        )
        profile = GridProfile.from_relation(
            data, row_attribute, column_attribute, objective,
            row_bucketing, column_bucketing,
        )
    else:
        if builder is None:
            seed = 0 if rng is None else int(rng.integers(0, 2**32))
            # The per-axis ``grid`` override below governs both bucket
            # counts, so the builder-wide default is irrelevant here.
            builder = GridProfileBuilder(
                executor=executor, seed=seed, kernel_tier=kernel_tier
            )
        profile = builder.build_grid_profile(
            data, row_attribute, column_attribute, objective, grid=grid,
            store=store,
        )
    return _best_rectangle(profile, kind, min_support, min_confidence, engine)


def optimized_rectangle(
    relation: Relation,
    row_attribute: str,
    column_attribute: str,
    objective: Condition,
    kind: RuleKind = RuleKind.OPTIMIZED_CONFIDENCE,
    min_support: float = 0.05,
    min_confidence: float = 0.5,
    grid: tuple[int, int] = (30, 30),
    bucketizer: Bucketizer | None = None,
    rng: np.random.Generator | None = None,
) -> RectangleRule | None:
    """Pre-pipeline name of :func:`mine_rectangle_rule`.

    .. deprecated::
        Call :func:`mine_rectangle_rule` instead — same arguments, plus
        streaming :class:`~repro.pipeline.DataSource` support and the
        ``engine`` / ``executor`` parameters.
    """
    warnings.warn(
        "optimized_rectangle is deprecated; use mine_rectangle_rule, which "
        "also accepts streaming DataSources and an engine parameter",
        DeprecationWarning,
        stacklevel=2,
    )
    return mine_rectangle_rule(
        relation,
        row_attribute,
        column_attribute,
        objective,
        kind=kind,
        min_support=min_support,
        min_confidence=min_confidence,
        grid=grid,
        bucketizer=bucketizer,
        rng=rng,
    )


# Upper bound on the number of elements of one stacked band-matrix block
# (~32 MB of float64 per matrix at 4e6 entries) — keeps the search's memory
# bounded however large a grid the caller requests, like the pre-refactor
# per-band loop was.
_BAND_BLOCK_ELEMENTS = 4_000_000


def _iter_band_blocks(
    profile: GridProfile,
) -> "Iterator[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]":
    """Yield row bands as stacked ``(block_bands, C)`` matrix blocks.

    One cumulative sum over the grid's rows, then one fancy-indexed
    difference per block — no per-band Python loop and no intermediate
    per-band arrays.  Bands are ordered row-major
    (``(0,0), (0,1), …, (1,1), …``), the order the band search scans, and
    each block holds at most ``_BAND_BLOCK_ELEMENTS`` matrix elements so
    even a huge requested grid never materializes all ``R(R+1)/2`` bands at
    once.
    """
    rows, columns = profile.shape
    prefix_sizes = np.concatenate(
        (np.zeros((1, columns)), np.cumsum(profile.sizes, axis=0)), axis=0
    )
    prefix_values = np.concatenate(
        (np.zeros((1, columns)), np.cumsum(profile.values, axis=0)), axis=0
    )
    row_starts, row_ends = np.triu_indices(rows)
    block = max(1, _BAND_BLOCK_ELEMENTS // columns)
    for begin in range(0, row_starts.shape[0], block):
        starts = row_starts[begin : begin + block]
        ends = row_ends[begin : begin + block]
        yield (
            starts,
            ends,
            prefix_sizes[ends + 1] - prefix_sizes[starts],
            prefix_values[ends + 1] - prefix_values[starts],
        )


# Column count beyond which the fast engine dispatches each band to the
# scalar O(C) sweeps instead of the O(C²) pair matrix: past a few hundred
# columns the stacked form does more element work than one Python-level
# solver call per band costs (both produce bit-identical selections).
_WIDE_BAND_COLUMNS = 192


def _scalar_band_selection(
    band_sizes: np.ndarray,
    band_values: np.ndarray,
    kind: RuleKind,
    min_support: float,
    min_confidence: float,
    total: float,
    engine: str,
) -> RangeSelection | None:
    """Per-band path: compact one band and run the scalar solvers on it.

    With ``engine="reference"`` this is the object-based oracle; with
    ``engine="fast"`` it is the O(C) scalar sweep the fast engine falls back
    to on very wide grids.  The winning compact indices are mapped back to
    full-grid column indices, so every path reports selections in the same
    coordinate system.
    """
    keep = band_sizes > 0
    if not np.any(keep):
        return None
    kept_columns = np.flatnonzero(keep)
    sizes = band_sizes[keep]
    values = band_values[keep]
    if kind is RuleKind.OPTIMIZED_CONFIDENCE:
        selection = maximize_ratio(
            sizes, values, min_support * total, total=total, engine=engine
        )
    else:
        selection = maximize_support(
            sizes, values, min_confidence, total=total, engine=engine
        )
    if selection is None:
        return None
    return RangeSelection(
        start=int(kept_columns[selection.start]),
        end=int(kept_columns[selection.end]),
        support_count=selection.support_count,
        objective_value=selection.objective_value,
        total_count=selection.total_count,
    )


def _best_rectangle(
    profile: GridProfile,
    kind: RuleKind,
    min_support: float,
    min_confidence: float,
    engine: str = "fast",
) -> RectangleRule | None:
    """Search every row band and optimize the column range inside it.

    Bands are processed in bounded-memory blocks (``_iter_band_blocks``);
    within each block the fast engine answers every band with one stacked
    batched-solver call, while the reference engine runs the per-band
    object-based oracle.  Blocks arrive in band order and ties keep the
    earliest band, so the block size never affects the result.
    """
    if kind not in (RuleKind.OPTIMIZED_CONFIDENCE, RuleKind.OPTIMIZED_SUPPORT):
        raise OptimizationError(
            f"rectangle mining supports confidence/support rules, got {kind}"
        )

    # The stacked batched solvers do O(C²) element work per band; on very
    # wide grids the scalar O(C) sweep per band is the cheaper fast path
    # (identical selections either way).  The reference engine always runs
    # the per-band object-based oracle.
    stacked = engine == "fast" and profile.shape[1] <= _WIDE_BAND_COLUMNS

    best: RectangleRule | None = None
    best_key: tuple[float, float] | None = None
    for row_starts, row_ends, band_sizes, band_values in _iter_band_blocks(profile):
        if stacked:
            # The whole block solved in one stacked call; zero-size cells
            # are ignored by the batched solvers exactly as the per-band
            # compaction ignores them, and the returned indices already
            # address the full grid.
            if kind is RuleKind.OPTIMIZED_CONFIDENCE:
                selections = fast_maximize_ratio_many(
                    band_sizes,
                    band_values,
                    min_support * profile.total,
                    total=profile.total,
                )
            else:
                selections = fast_maximize_support_many(
                    band_sizes, band_values, min_confidence, total=profile.total
                )
        else:
            selections = [
                _scalar_band_selection(
                    band_sizes[band],
                    band_values[band],
                    kind,
                    min_support,
                    min_confidence,
                    profile.total,
                    engine,
                )
                for band in range(band_sizes.shape[0])
            ]

        for band, selection in enumerate(selections):
            if selection is None:
                continue
            if kind is RuleKind.OPTIMIZED_CONFIDENCE:
                key = (selection.ratio, selection.support)
            else:
                key = (selection.support, selection.ratio)
            if best_key is None or key > best_key:
                best_key = key
                best = RectangleRule(
                    row_attribute=profile.row_attribute,
                    column_attribute=profile.column_attribute,
                    objective_label=profile.objective_label,
                    row_start=int(row_starts[band]),
                    row_end=int(row_ends[band]),
                    column_start=selection.start,
                    column_end=selection.end,
                    row_low=float(profile.row_lows[row_starts[band]]),
                    row_high=float(profile.row_highs[row_ends[band]]),
                    column_low=float(profile.column_lows[selection.start]),
                    column_high=float(profile.column_highs[selection.end]),
                    support=selection.support,
                    confidence=selection.ratio,
                    kind=kind,
                )
    return best
