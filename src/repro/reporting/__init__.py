"""Reporting: serialization, text rendering, and export of mined rules."""

from repro.reporting.export import catalog_to_csv, catalog_to_markdown
from repro.reporting.serialize import (
    catalog_to_dicts,
    rule_from_dict,
    rule_to_dict,
    rules_from_json,
    rules_to_json,
)
from repro.reporting.text import render_profile, render_rule, render_rule_list

__all__ = [
    "rule_to_dict",
    "rule_from_dict",
    "catalog_to_dicts",
    "rules_to_json",
    "rules_from_json",
    "catalog_to_csv",
    "catalog_to_markdown",
    "render_profile",
    "render_rule",
    "render_rule_list",
]
