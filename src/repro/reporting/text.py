"""Plain-text visualization of bucket profiles and mined rules.

The paper's system was interactive — an analyst looks at the mined ranges in
the context of the attribute's distribution.  Without a plotting dependency,
this module renders the same information as aligned ASCII: a histogram of the
bucket sizes, the per-bucket confidence track, and markers showing which
buckets the optimized rule selected.
"""

from __future__ import annotations

import numpy as np

from repro.core.profile import BucketProfile
from repro.core.rules import OptimizedAverageRule, OptimizedRangeRule, RangeSelection

__all__ = ["render_profile", "render_rule", "render_rule_list"]

_FULL_BLOCK = "#"
_EMPTY_BLOCK = "."


def _bar(value: float, maximum: float, width: int) -> str:
    """A left-aligned bar of ``width`` characters proportional to ``value``."""
    if maximum <= 0:
        return _EMPTY_BLOCK * width
    filled = int(round(width * min(max(value / maximum, 0.0), 1.0)))
    return _FULL_BLOCK * filled + _EMPTY_BLOCK * (width - filled)


def render_profile(
    profile: BucketProfile,
    selection: RangeSelection | None = None,
    max_rows: int = 40,
    bar_width: int = 30,
) -> str:
    """Render a bucket profile as an ASCII table with histogram bars.

    Parameters
    ----------
    profile:
        The profile to render.
    selection:
        Optional selected bucket range; selected buckets are marked with
        ``>`` in the first column.
    max_rows:
        When the profile has more buckets than this, it is re-aggregated into
        ``max_rows`` groups of consecutive buckets so the rendering stays
        readable.
    bar_width:
        Width of the histogram bars in characters.
    """
    sizes = profile.sizes
    values = profile.values
    lows = profile.lows
    highs = profile.highs
    num_buckets = profile.num_buckets

    selected = np.zeros(num_buckets, dtype=bool)
    if selection is not None:
        selected[selection.start : selection.end + 1] = True

    if num_buckets > max_rows:
        groups = np.array_split(np.arange(num_buckets), max_rows)
        sizes = np.array([profile.sizes[group].sum() for group in groups])
        values = np.array([profile.values[group].sum() for group in groups])
        lows = np.array([profile.lows[group[0]] for group in groups])
        highs = np.array([profile.highs[group[-1]] for group in groups])
        selected = np.array([bool(selected[group].any()) for group in groups])
        num_buckets = len(groups)

    max_size = float(sizes.max())
    lines = [
        f"profile of {profile.attribute!r} vs {profile.objective_label} "
        f"({profile.num_buckets} buckets, {int(profile.total)} tuples)",
        f"{'':>2} {'range':>24} {'count':>8} {'ratio':>7}  histogram",
    ]
    for index in range(num_buckets):
        ratio = values[index] / sizes[index] if sizes[index] else 0.0
        marker = ">" if selected[index] else " "
        lines.append(
            f"{marker:>2} "
            f"[{lows[index]:>10.4g}, {highs[index]:>10.4g}] "
            f"{int(sizes[index]):>8} "
            f"{ratio:>7.2%}  "
            f"{_bar(float(sizes[index]), max_size, bar_width)}"
        )
    return "\n".join(lines)


def render_rule(rule: OptimizedRangeRule | OptimizedAverageRule, profile: BucketProfile) -> str:
    """Render a mined rule together with its profile context."""
    header = str(rule)
    body = render_profile(profile, rule.selection)
    return f"{header}\n{body}"


def render_rule_list(
    rules: list[OptimizedRangeRule | OptimizedAverageRule], limit: int | None = None
) -> str:
    """Render a numbered list of rules (most interesting first as given)."""
    shown = rules if limit is None else rules[:limit]
    lines = [f"{index + 1:>3}. {rule}" for index, rule in enumerate(shown)]
    if limit is not None and len(rules) > limit:
        lines.append(f"     ... and {len(rules) - limit} more")
    return "\n".join(lines)
