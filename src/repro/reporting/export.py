"""Export mined catalogs to CSV and Markdown.

Complements :mod:`repro.reporting.serialize` (machine-readable JSON) with the
two formats analysts actually circulate: a flat CSV for spreadsheets and a
Markdown table for reports and pull requests.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.mining.catalog import RuleCatalog

__all__ = ["catalog_to_csv", "catalog_to_markdown"]

_COLUMNS = [
    "attribute",
    "objective",
    "kind",
    "low",
    "high",
    "support",
    "confidence",
    "base_rate",
    "lift",
]


def catalog_to_csv(catalog: RuleCatalog, path: str | Path) -> Path:
    """Write one row per catalog entry to ``path`` and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=_COLUMNS)
        writer.writeheader()
        for entry in catalog.entries:
            row = entry.as_row()
            writer.writerow({column: row[column] for column in _COLUMNS})
    return path


def catalog_to_markdown(
    catalog: RuleCatalog, limit: int | None = None, by: str = "lift"
) -> str:
    """Render the catalog (optionally only its top entries) as a Markdown table."""
    entries = catalog.top(limit, by=by) if limit is not None else list(catalog.entries)
    lines = [
        "| attribute | objective | kind | range | support | confidence | lift |",
        "|---|---|---|---|---:|---:|---:|",
    ]
    for entry in entries:
        rule = entry.rule
        lines.append(
            f"| {rule.attribute} "
            f"| {rule.objective} "
            f"| {rule.kind.value} "
            f"| [{rule.low:g}, {rule.high:g}] "
            f"| {rule.support:.1%} "
            f"| {rule.confidence:.1%} "
            f"| {entry.lift:.2f} |"
        )
    return "\n".join(lines)
