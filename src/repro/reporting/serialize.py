"""Serialization of mined rules and catalogs.

A mining system is only useful if its output can leave the process: this
module converts the rule objects of :mod:`repro.core` into plain dictionaries
(and JSON), and back again for the range-rule kinds, so catalogs can be
stored, diffed between runs, or post-processed by other tools.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.core.rules import (
    OptimizedAverageRule,
    OptimizedRangeRule,
    RangeSelection,
    RuleKind,
)
from repro.exceptions import ReproError
from repro.mining.catalog import CatalogEntry, RuleCatalog
from repro.relation.conditions import BooleanIs

__all__ = [
    "rule_to_dict",
    "rule_from_dict",
    "catalog_to_dicts",
    "rules_to_json",
    "rules_from_json",
]


def _selection_to_dict(selection: RangeSelection) -> dict[str, float]:
    return {
        "start": selection.start,
        "end": selection.end,
        "support_count": selection.support_count,
        "objective_value": selection.objective_value,
        "total_count": selection.total_count,
    }


def _selection_from_dict(payload: Mapping[str, Any]) -> RangeSelection:
    return RangeSelection(
        start=int(payload["start"]),
        end=int(payload["end"]),
        support_count=float(payload["support_count"]),
        objective_value=float(payload["objective_value"]),
        total_count=float(payload["total_count"]),
    )


def rule_to_dict(rule: OptimizedRangeRule | OptimizedAverageRule) -> dict[str, Any]:
    """Convert a mined rule into a JSON-serializable dictionary."""
    if isinstance(rule, OptimizedRangeRule):
        return {
            "type": "range-rule",
            "kind": rule.kind.value,
            "attribute": rule.attribute,
            "objective": str(rule.objective),
            "objective_attributes": sorted(rule.objective.attribute_names()),
            "presumptive": str(rule.presumptive) if rule.presumptive is not None else None,
            "low": rule.low,
            "high": rule.high,
            "threshold": rule.threshold,
            "support": rule.support,
            "confidence": rule.confidence,
            "selection": _selection_to_dict(rule.selection),
        }
    if isinstance(rule, OptimizedAverageRule):
        return {
            "type": "average-rule",
            "kind": rule.kind.value,
            "attribute": rule.attribute,
            "target": rule.target,
            "low": rule.low,
            "high": rule.high,
            "threshold": rule.threshold,
            "support": rule.support,
            "average": rule.average,
            "selection": _selection_to_dict(rule.selection),
        }
    raise ReproError(f"cannot serialize rule of type {type(rule).__name__}")


def rule_from_dict(payload: Mapping[str, Any]) -> OptimizedRangeRule | OptimizedAverageRule:
    """Rebuild a rule from :func:`rule_to_dict` output.

    Range rules are rebuilt with a Boolean objective when the original
    objective referenced a single Boolean attribute (the common case for
    catalogs); more complex objectives round-trip as average rules do not —
    the textual form is preserved in the dictionary either way.
    """
    rule_type = payload.get("type")
    if rule_type == "range-rule":
        attributes = payload.get("objective_attributes") or []
        if len(attributes) != 1:
            raise ReproError(
                "only single-attribute Boolean objectives can be deserialized; "
                f"got {attributes}"
            )
        return OptimizedRangeRule(
            attribute=str(payload["attribute"]),
            objective=BooleanIs(attributes[0], True),
            low=float(payload["low"]),
            high=float(payload["high"]),
            selection=_selection_from_dict(payload["selection"]),
            kind=RuleKind(payload["kind"]),
            threshold=float(payload["threshold"]),
        )
    if rule_type == "average-rule":
        return OptimizedAverageRule(
            attribute=str(payload["attribute"]),
            target=str(payload["target"]),
            low=float(payload["low"]),
            high=float(payload["high"]),
            selection=_selection_from_dict(payload["selection"]),
            kind=RuleKind(payload["kind"]),
            threshold=float(payload["threshold"]),
        )
    raise ReproError(f"unknown serialized rule type {rule_type!r}")


def catalog_to_dicts(catalog: RuleCatalog) -> list[dict[str, Any]]:
    """Convert a mined catalog into a list of flat dictionaries."""
    rows = []
    for entry in catalog.entries:
        row = rule_to_dict(entry.rule)
        row["base_rate"] = entry.base_rate
        row["lift"] = entry.lift
        rows.append(row)
    return rows


def rules_to_json(
    rules: list[OptimizedRangeRule | OptimizedAverageRule] | RuleCatalog,
    indent: int | None = 2,
) -> str:
    """Serialize rules (or a whole catalog) to a JSON string."""
    if isinstance(rules, RuleCatalog):
        payload: list[dict[str, Any]] = catalog_to_dicts(rules)
    else:
        payload = [rule_to_dict(rule) for rule in rules]
    return json.dumps(payload, indent=indent, sort_keys=True)


def rules_from_json(text: str) -> list[OptimizedRangeRule | OptimizedAverageRule]:
    """Deserialize rules previously produced by :func:`rules_to_json`."""
    payload = json.loads(text)
    if not isinstance(payload, list):
        raise ReproError("expected a JSON list of serialized rules")
    return [rule_from_dict(entry) for entry in payload]


def catalog_entry_from_rule(rule: OptimizedRangeRule, base_rate: float) -> CatalogEntry:
    """Convenience wrapper used when rebuilding catalogs from serialized rules."""
    return CatalogEntry(rule=rule, base_rate=base_rate)
