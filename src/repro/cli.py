"""Command-line interface.

Three groups of subcommands mirror how the paper's system would be used:

* ``dataset``    — materialize one of the bundled synthetic datasets as CSV;
* ``mine``       — mine optimized rules from a CSV file (confidence, support,
  or the §5 average-operator variants);
* ``experiment`` — run one of the figure/table reproductions and print its
  report.

Examples
--------
::

    python -m repro dataset bank --rows 50000 --out bank.csv
    python -m repro mine bank.csv --attribute balance --objective card_loan \
        --kind confidence --min-support 0.1
    python -m repro experiment figure10

``mine``, ``catalog``, and ``rules2d`` accept ``--source stream`` to scan
the CSV out-of-core through the unified pipeline instead of loading it, with
``--executor`` choosing where the counting kernel runs and ``--chunk-size``
bounding the resident memory::

    python -m repro catalog bank.csv --source stream --executor multiprocessing

``rules2d`` mines the §1.4 two-dimensional rectangle rules on a bucket grid
(streamed grids are built by the pipeline's 2-D kernel, never materializing
the relation)::

    python -m repro rules2d bank.csv --row-attribute age \\
        --column-attribute balance --objective card_loan \\
        --grid 30 30 --source stream
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core.miner import OptimizedRuleMiner
from repro.datasets.loaders import DATASET_NAMES, generate_named_dataset, load_dataset, save_dataset
from repro.exceptions import ReproError
from repro.experiments import (
    run_bucket_quality_sweep,
    run_catalog_experiment,
    run_figure1,
    run_figure9,
    run_figure10,
    run_figure11,
    run_table1,
)

__all__ = ["main", "build_parser"]

_EXPERIMENTS = {
    "figure1": lambda: run_figure1(),
    "table1": lambda: run_table1(),
    "figure9": lambda: run_figure9(),
    "figure10": lambda: run_figure10(),
    "figure11": lambda: run_figure11(),
    "catalog": lambda: run_catalog_experiment(),
    "bucket-quality": lambda: run_bucket_quality_sweep(),
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Mine optimized association rules for numeric attributes "
        "(Fukuda et al., PODS 1996).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    dataset_parser = subparsers.add_parser(
        "dataset", help="generate a bundled synthetic dataset as CSV"
    )
    dataset_parser.add_argument("name", choices=sorted(DATASET_NAMES))
    dataset_parser.add_argument("--rows", type=int, default=10_000)
    dataset_parser.add_argument("--seed", type=int, default=0)
    dataset_parser.add_argument("--out", required=True, help="output CSV path")

    mine_parser = subparsers.add_parser("mine", help="mine optimized rules from a CSV file")
    mine_parser.add_argument("csv", help="input CSV file with a header row")
    mine_parser.add_argument("--attribute", required=True, help="numeric attribute to range over")
    mine_parser.add_argument(
        "--objective",
        required=True,
        help="Boolean objective attribute (confidence/support rules) or numeric "
        "target attribute (average rules)",
    )
    mine_parser.add_argument(
        "--kind",
        choices=("confidence", "support", "max-average", "max-support-average"),
        default="confidence",
    )
    mine_parser.add_argument("--min-support", type=float, default=0.10)
    mine_parser.add_argument("--min-confidence", type=float, default=0.50)
    mine_parser.add_argument("--min-average", type=float, default=0.0)
    mine_parser.add_argument("--buckets", type=int, default=500)
    mine_parser.add_argument("--seed", type=int, default=0)
    mine_parser.add_argument(
        "--engine",
        choices=("fast", "reference"),
        default="fast",
        help="solver engine: array-native fast path (default) or the object-based reference",
    )
    _add_source_arguments(mine_parser)

    catalog_parser = subparsers.add_parser(
        "catalog", help="mine optimized rules for every numeric/Boolean attribute pair"
    )
    catalog_parser.add_argument("csv", help="input CSV file with a header row")
    catalog_parser.add_argument("--min-support", type=float, default=0.10)
    catalog_parser.add_argument("--min-confidence", type=float, default=0.50)
    catalog_parser.add_argument("--buckets", type=int, default=200)
    catalog_parser.add_argument("--top", type=int, default=10, help="rules to print")
    catalog_parser.add_argument("--rank-by", choices=("lift", "confidence", "support"), default="lift")
    catalog_parser.add_argument("--out-csv", default=None, help="also export the catalog as CSV")
    catalog_parser.add_argument(
        "--out-markdown", default=None, help="also export the top rules as a Markdown table"
    )
    catalog_parser.add_argument("--seed", type=int, default=0)
    catalog_parser.add_argument(
        "--engine",
        choices=("fast", "reference"),
        default="fast",
        help="solver engine: array-native fast path (default) or the object-based reference",
    )
    _add_source_arguments(catalog_parser)

    rules2d_parser = subparsers.add_parser(
        "rules2d",
        help="mine the optimal 2-D rectangle rule on a bucket grid (§1.4)",
    )
    rules2d_parser.add_argument("csv", help="input CSV file with a header row")
    rules2d_parser.add_argument(
        "--row-attribute", required=True, help="numeric attribute of the grid rows"
    )
    rules2d_parser.add_argument(
        "--column-attribute", required=True, help="numeric attribute of the grid columns"
    )
    rules2d_parser.add_argument(
        "--objective", required=True, help="Boolean objective attribute"
    )
    rules2d_parser.add_argument(
        "--kind", choices=("confidence", "support"), default="confidence"
    )
    rules2d_parser.add_argument("--min-support", type=float, default=0.05)
    rules2d_parser.add_argument("--min-confidence", type=float, default=0.50)
    rules2d_parser.add_argument(
        "--grid",
        type=int,
        nargs=2,
        default=(30, 30),
        metavar=("ROWS", "COLUMNS"),
        help="number of row and column buckets (default: 30 30)",
    )
    rules2d_parser.add_argument("--seed", type=int, default=0)
    rules2d_parser.add_argument(
        "--engine",
        choices=("fast", "reference"),
        default="fast",
        help="rectangle solver: stacked batched fast path (default) or the "
        "per-band object-based reference",
    )
    _add_source_arguments(rules2d_parser)

    experiment_parser = subparsers.add_parser(
        "experiment", help="run one of the paper-reproduction experiments"
    )
    experiment_parser.add_argument("name", choices=sorted(_EXPERIMENTS))
    return parser


def _add_source_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared DataSource flags of the ``mine`` and ``catalog`` commands."""
    parser.add_argument(
        "--source",
        choices=("memory", "stream"),
        default="memory",
        help="how the CSV is read: fully loaded into memory (default) or "
        "scanned out-of-core in chunks through the pipeline",
    )
    parser.add_argument(
        "--executor",
        choices=("serial", "streaming", "multiprocessing"),
        default="serial",
        help="where the counting kernel runs for --source stream "
        "(all executors produce identical results)",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="tuples per chunk for --source stream (default: 50000)",
    )


def _load_mining_data(args: argparse.Namespace):
    """The relation or streaming source selected by the CLI flags."""
    from repro.pipeline import CSVSource
    from repro.relation.io import DEFAULT_CHUNK_SIZE, infer_csv_schema

    if args.source == "stream":
        chunk_size = args.chunk_size or DEFAULT_CHUNK_SIZE
        # Whole-file (still bounded-memory) schema inference, so streamed
        # mining parses a file exactly as --source memory would even when
        # the leading rows are not representative of a column's type.
        schema = infer_csv_schema(args.csv, chunk_size=chunk_size)
        return CSVSource(args.csv, schema=schema, chunk_size=chunk_size)
    return load_dataset(args.csv)


def _run_dataset(args: argparse.Namespace) -> int:
    relation = generate_named_dataset(args.name, args.rows, seed=args.seed)
    path = save_dataset(relation, args.out)
    print(f"wrote {relation.num_tuples} tuples x {relation.num_attributes} attributes to {path}")
    return 0


def _run_mine(args: argparse.Namespace) -> int:
    import numpy as np

    data = _load_mining_data(args)
    miner = OptimizedRuleMiner(
        data,
        num_buckets=args.buckets,
        rng=np.random.default_rng(args.seed),
        engine=args.engine,
        executor=args.executor,
    )
    if args.kind == "confidence":
        rule = miner.optimized_confidence_rule(
            args.attribute, args.objective, min_support=args.min_support
        )
    elif args.kind == "support":
        rule = miner.optimized_support_rule(
            args.attribute, args.objective, min_confidence=args.min_confidence
        )
    elif args.kind == "max-average":
        rule = miner.maximum_average_rule(
            args.attribute, args.objective, min_support=args.min_support
        )
    else:
        rule = miner.maximum_support_average_rule(
            args.attribute, args.objective, min_average=args.min_average
        )
    if rule is None:
        print("no rule satisfies the requested thresholds")
        return 1
    print(rule)
    return 0


def _run_catalog(args: argparse.Namespace) -> int:
    from pathlib import Path

    import numpy as np

    from repro.mining import mine_rule_catalog
    from repro.reporting import catalog_to_csv, catalog_to_markdown

    data = _load_mining_data(args)
    catalog = mine_rule_catalog(
        data,
        min_support=args.min_support,
        min_confidence=args.min_confidence,
        num_buckets=args.buckets,
        rng=np.random.default_rng(args.seed),
        engine=args.engine,
        executor=args.executor,
    )
    print(
        f"mined {len(catalog)} rules over {catalog.num_pairs} attribute pairs "
        f"(support >= {args.min_support:.0%} / confidence >= {args.min_confidence:.0%})"
    )
    for entry in catalog.top(args.top, by=args.rank_by):
        print(f"  [{entry.lift:5.2f}x] {entry.rule}")
    if args.out_csv:
        path = catalog_to_csv(catalog, Path(args.out_csv))
        print(f"wrote full catalog to {path}")
    if args.out_markdown:
        Path(args.out_markdown).write_text(
            catalog_to_markdown(catalog, limit=args.top, by=args.rank_by), encoding="utf-8"
        )
        print(f"wrote Markdown summary to {args.out_markdown}")
    return 0


def _run_rules2d(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.core.rules import RuleKind
    from repro.extensions import mine_rectangle_rule

    data = _load_mining_data(args)
    rule = mine_rectangle_rule(
        data,
        args.row_attribute,
        args.column_attribute,
        args.objective,
        kind=(
            RuleKind.OPTIMIZED_CONFIDENCE
            if args.kind == "confidence"
            else RuleKind.OPTIMIZED_SUPPORT
        ),
        min_support=args.min_support,
        min_confidence=args.min_confidence,
        grid=tuple(args.grid),
        rng=np.random.default_rng(args.seed),
        engine=args.engine,
        executor=args.executor,
    )
    if rule is None:
        print("no rectangle satisfies the requested thresholds")
        return 1
    print(rule)
    return 0


def _run_experiment(args: argparse.Namespace) -> int:
    result = _EXPERIMENTS[args.name]()
    print(result.report())
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "dataset":
            return _run_dataset(args)
        if args.command == "mine":
            return _run_mine(args)
        if args.command == "catalog":
            return _run_catalog(args)
        if args.command == "rules2d":
            return _run_rules2d(args)
        if args.command == "experiment":
            return _run_experiment(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
