"""Command-line interface.

Three groups of subcommands mirror how the paper's system would be used:

* ``dataset``    — materialize one of the bundled synthetic datasets as CSV;
* ``mine``       — mine optimized rules from a CSV file (confidence, support,
  or the §5 average-operator variants);
* ``experiment`` — run one of the figure/table reproductions and print its
  report.

Examples
--------
::

    python -m repro dataset bank --rows 50000 --out bank.csv
    python -m repro mine bank.csv --attribute balance --objective card_loan \
        --kind confidence --min-support 0.1
    python -m repro experiment figure10

``mine``, ``catalog``, and ``rules2d`` accept ``--source stream`` to scan
the CSV out-of-core through the unified pipeline instead of loading it, with
``--executor`` choosing where the counting kernel runs and ``--chunk-size``
bounding the resident memory::

    python -m repro catalog bank.csv --source stream --executor multiprocessing

``--source npy`` / ``--source parquet`` scan zero-copy columnar data instead
of CSV: a memory-mapped ``.npy`` column directory (see ``repro.pipeline.
write_columnar``) or an Arrow/Parquet file (needs ``pyarrow``).  ``--path``
names the data directory/file when it differs from the positional argument.
``--kernel-tier auto|numpy|compiled`` (or ``REPRO_KERNEL_TIER``) selects the
counting/solver kernel tier; all tiers are bit-identical, so stores, shards,
and checkpoints interoperate freely across tiers::

    python -m repro catalog bank_columns/ --source npy --kernel-tier auto

``rules2d`` mines the §1.4 two-dimensional rectangle rules on a bucket grid
(streamed grids are built by the pipeline's 2-D kernel, never materializing
the relation)::

    python -m repro rules2d bank.csv --row-attribute age \\
        --column-attribute balance --objective card_loan \\
        --grid 30 30 --source stream

``store`` manages a persistent profile store, and ``--store DIR`` on
``catalog``/``rules2d`` (with ``--source stream``) serves repeated runs
from it — a warm store answers a whole catalog with **zero** physical
scans of the CSV, and a file grown at the tail counts only its new rows::

    python -m repro store build bank.csv --store profiles/
    python -m repro catalog bank.csv --source stream --store profiles/
    ...append rows to bank.csv...
    python -m repro store append bank.csv --store profiles/
    python -m repro store inspect --store profiles/

``store verify`` audits every snapshot (payload presence, embedded meta,
npz integrity) without serving anything, and exits 3 listing the
offending snapshots on corruption.

``ingest`` runs the crash-safe continuous-mining daemon against a growing
source: every cycle polls the file, folds only the appended tuples into
the store (journaled — ``kill -9`` at any byte is recoverable), tracks
per-attribute drift between the frozen bucket boundaries and the tail,
and re-freezes the boundaries when the policy says so::

    python -m repro store build bank.csv --store profiles/
    python -m repro ingest run bank.csv --store profiles/ --interval 5
    python -m repro ingest once bank.csv --store profiles/
    python -m repro ingest status bank.csv --store profiles/

``shard`` runs the catalog scan plan through the fault-tolerant sharded
mining plane: the CSV is partitioned into N line-aligned byte spans, each
counted with per-shard retries and timeouts, validated partials checkpoint
atomically, and a killed run resumes counting only its unfinished spans::

    python -m repro shard mine bank.csv --shards 8 --checkpoints ck/
    ...coordinator killed mid-run...
    python -m repro shard status bank.csv --shards 8 --checkpoints ck/
    python -m repro shard resume bank.csv --shards 8 --checkpoints ck/

``serve`` puts the mining stack behind an HTTP API fed from a warm profile
store: repeated requests over unchanged data are fingerprint-keyed cache
hits, concurrent identical requests coalesce into one solver batch, and
every library error maps to a typed JSON body::

    python -m repro store build bank.csv --store profiles/
    REPRO_TOKEN=secret python -m repro serve bank.csv --store profiles/ \\
        --token-env REPRO_TOKEN --port 8000
    curl -H 'Authorization: Bearer secret' \\
        'http://127.0.0.1:8000/v1/catalog?top=5'
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core.miner import OptimizedRuleMiner
from repro.datasets.loaders import DATASET_NAMES, generate_named_dataset, load_dataset, save_dataset
from repro.exceptions import ReproError
from repro.experiments import (
    run_bucket_quality_sweep,
    run_catalog_experiment,
    run_figure1,
    run_figure9,
    run_figure10,
    run_figure11,
    run_table1,
)

__all__ = ["main", "build_parser"]

_EXPERIMENTS = {
    "figure1": lambda: run_figure1(),
    "table1": lambda: run_table1(),
    "figure9": lambda: run_figure9(),
    "figure10": lambda: run_figure10(),
    "figure11": lambda: run_figure11(),
    "catalog": lambda: run_catalog_experiment(),
    "bucket-quality": lambda: run_bucket_quality_sweep(),
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Mine optimized association rules for numeric attributes "
        "(Fukuda et al., PODS 1996).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    dataset_parser = subparsers.add_parser(
        "dataset", help="generate a bundled synthetic dataset as CSV"
    )
    dataset_parser.add_argument("name", choices=sorted(DATASET_NAMES))
    dataset_parser.add_argument("--rows", type=int, default=10_000)
    dataset_parser.add_argument("--seed", type=int, default=0)
    dataset_parser.add_argument("--out", required=True, help="output CSV path")

    mine_parser = subparsers.add_parser("mine", help="mine optimized rules from a CSV file")
    mine_parser.add_argument("csv", help="input CSV file with a header row")
    mine_parser.add_argument("--attribute", required=True, help="numeric attribute to range over")
    mine_parser.add_argument(
        "--objective",
        required=True,
        help="Boolean objective attribute (confidence/support rules) or numeric "
        "target attribute (average rules)",
    )
    mine_parser.add_argument(
        "--kind",
        choices=("confidence", "support", "max-average", "max-support-average"),
        default="confidence",
    )
    mine_parser.add_argument("--min-support", type=float, default=0.10)
    mine_parser.add_argument("--min-confidence", type=float, default=0.50)
    mine_parser.add_argument("--min-average", type=float, default=0.0)
    mine_parser.add_argument("--buckets", type=int, default=500)
    mine_parser.add_argument("--seed", type=int, default=0)
    mine_parser.add_argument(
        "--engine",
        choices=("fast", "reference"),
        default="fast",
        help="solver engine: array-native fast path (default) or the object-based reference",
    )
    _add_source_arguments(mine_parser)

    catalog_parser = subparsers.add_parser(
        "catalog", help="mine optimized rules for every numeric/Boolean attribute pair"
    )
    catalog_parser.add_argument("csv", help="input CSV file with a header row")
    catalog_parser.add_argument("--min-support", type=float, default=0.10)
    catalog_parser.add_argument("--min-confidence", type=float, default=0.50)
    catalog_parser.add_argument("--buckets", type=int, default=200)
    catalog_parser.add_argument("--top", type=int, default=10, help="rules to print")
    catalog_parser.add_argument("--rank-by", choices=("lift", "confidence", "support"), default="lift")
    catalog_parser.add_argument("--out-csv", default=None, help="also export the catalog as CSV")
    catalog_parser.add_argument(
        "--out-markdown", default=None, help="also export the top rules as a Markdown table"
    )
    catalog_parser.add_argument("--seed", type=int, default=0)
    catalog_parser.add_argument(
        "--engine",
        choices=("fast", "reference"),
        default="fast",
        help="solver engine: array-native fast path (default) or the object-based reference",
    )
    _add_source_arguments(catalog_parser)
    _add_store_argument(catalog_parser)

    rules2d_parser = subparsers.add_parser(
        "rules2d",
        help="mine the optimal 2-D rectangle rule on a bucket grid (§1.4)",
    )
    rules2d_parser.add_argument("csv", help="input CSV file with a header row")
    rules2d_parser.add_argument(
        "--row-attribute", required=True, help="numeric attribute of the grid rows"
    )
    rules2d_parser.add_argument(
        "--column-attribute", required=True, help="numeric attribute of the grid columns"
    )
    rules2d_parser.add_argument(
        "--objective", required=True, help="Boolean objective attribute"
    )
    rules2d_parser.add_argument(
        "--kind", choices=("confidence", "support"), default="confidence"
    )
    rules2d_parser.add_argument("--min-support", type=float, default=0.05)
    rules2d_parser.add_argument("--min-confidence", type=float, default=0.50)
    rules2d_parser.add_argument(
        "--grid",
        type=int,
        nargs=2,
        default=(30, 30),
        metavar=("ROWS", "COLUMNS"),
        help="number of row and column buckets (default: 30 30)",
    )
    rules2d_parser.add_argument("--seed", type=int, default=0)
    rules2d_parser.add_argument(
        "--engine",
        choices=("fast", "reference"),
        default="fast",
        help="rectangle solver: stacked batched fast path (default) or the "
        "per-band object-based reference",
    )
    _add_source_arguments(rules2d_parser)
    _add_store_argument(rules2d_parser)

    store_parser = subparsers.add_parser(
        "store",
        help="manage a persistent profile store (zero-scan repeated mining)",
    )
    store_subparsers = store_parser.add_subparsers(
        dest="store_command", required=True
    )
    for name, description in (
        (
            "build",
            "execute and persist the catalog scan plan of a CSV file "
            "(subsequent catalog runs against the store need zero scans)",
        ),
        (
            "append",
            "fold a CSV file's appended tail into its stored snapshot "
            "(counts only the new rows; boundaries stay frozen)",
        ),
    ):
        sub = store_subparsers.add_parser(name, help=description)
        sub.add_argument(
            "csv",
            help="input CSV file with a header row (or the columnar data "
            "path when --source npy/parquet)",
        )
        sub.add_argument("--store", required=True, help="store directory")
        sub.add_argument(
            "--source",
            choices=("stream", "npy", "parquet"),
            default="stream",
            help="scan a CSV out-of-core (default), a memory-mapped .npy "
            "column directory, or an Arrow/Parquet file",
        )
        sub.add_argument(
            "--path",
            default=None,
            metavar="DIR",
            help="data path for --source npy/parquet (defaults to the "
            "positional file argument)",
        )
        sub.add_argument("--buckets", type=int, default=200)
        sub.add_argument("--seed", type=int, default=0)
        sub.add_argument(
            "--rebuild-threshold",
            type=float,
            default=None,
            help="staleness fraction that triggers a full boundary refresh "
            "(default: 0.25)",
        )
        sub.add_argument(
            "--executor",
            choices=("serial", "streaming", "multiprocessing"),
            default="serial",
        )
        sub.add_argument("--chunk-size", type=int, default=None)
        _add_kernel_tier_argument(sub)
    inspect_parser = store_subparsers.add_parser(
        "inspect", help="print the store manifest (snapshots and staleness)"
    )
    inspect_parser.add_argument("--store", required=True, help="store directory")
    verify_parser = store_subparsers.add_parser(
        "verify",
        help="audit every snapshot (payload presence, embedded meta, npz "
        "integrity) without serving; exit 3 listing corrupt snapshots",
    )
    verify_parser.add_argument("--store", required=True, help="store directory")

    ingest_parser = subparsers.add_parser(
        "ingest",
        help="crash-safe continuous mining: poll a growing source, fold "
        "only its tail, re-freeze boundaries on drift",
    )
    ingest_subparsers = ingest_parser.add_subparsers(
        dest="ingest_command", required=True
    )
    for name, description in (
        (
            "run",
            "poll the source every --interval seconds, folding appended "
            "tuples into the store and re-freezing on the policy's say-so",
        ),
        (
            "once",
            "run exactly one ingest cycle (poll, fold, drift check) and "
            "print its report",
        ),
        (
            "status",
            "report the daemon's persisted state and drift readings "
            "without scanning the source",
        ),
    ):
        sub = ingest_subparsers.add_parser(name, help=description)
        sub.add_argument(
            "csv",
            help="input CSV file with a header row (or the columnar data "
            "path when --source npy/parquet)",
        )
        sub.add_argument("--store", required=True, help="store directory")
        sub.add_argument(
            "--source",
            choices=("stream", "npy", "parquet"),
            default="stream",
            help="scan a CSV out-of-core (default), a memory-mapped .npy "
            "column directory, or an Arrow/Parquet file",
        )
        sub.add_argument(
            "--path",
            default=None,
            metavar="DIR",
            help="data path for --source npy/parquet (defaults to the "
            "positional file argument)",
        )
        sub.add_argument("--buckets", type=int, default=200)
        sub.add_argument("--seed", type=int, default=0)
        sub.add_argument("--chunk-size", type=int, default=None)
        _add_kernel_tier_argument(sub)
        if name == "status":
            continue
        sub.add_argument(
            "--policy",
            choices=("threshold", "scheduled", "manual"),
            default="threshold",
            help="re-freeze policy: drift thresholds (default), every "
            "--every-cycles folds, or only on explicit request",
        )
        sub.add_argument(
            "--max-staleness",
            type=float,
            default=0.25,
            help="threshold policy: staleness ratio that re-freezes "
            "(default: 0.25)",
        )
        sub.add_argument(
            "--max-occupancy-shift",
            type=float,
            default=0.25,
            help="threshold policy: total-variation distance between frozen "
            "and tail bucket occupancy that re-freezes (default: 0.25)",
        )
        sub.add_argument(
            "--max-kl",
            type=float,
            default=0.5,
            help="threshold policy: KL divergence (nats) of the tail from "
            "the frozen occupancy that re-freezes (default: 0.5)",
        )
        sub.add_argument(
            "--max-out-of-range",
            type=float,
            default=0.25,
            help="threshold policy: fraction of appended values outside the "
            "frozen cut range that re-freezes (default: 0.25)",
        )
        sub.add_argument(
            "--every-cycles",
            type=int,
            default=10,
            help="scheduled policy: re-freeze every N fold cycles "
            "(default: 10)",
        )
        sub.add_argument(
            "--on-source-changed",
            choices=("raise", "serve-stale"),
            default="raise",
            help="when the source was rewritten (not appended): fail the "
            "cycle (default) or degrade and keep serving the stored "
            "snapshot",
        )
        sub.add_argument(
            "--max-failures",
            type=int,
            default=3,
            help="consecutive degraded cycles before the daemon gives up "
            "with a typed error (default: 3)",
        )
        if name == "run":
            sub.add_argument(
                "--interval",
                type=float,
                default=5.0,
                help="seconds between polls (default: 5)",
            )
            sub.add_argument(
                "--cycles",
                type=int,
                default=None,
                help="stop after N cycles (default: run until killed)",
            )

    shard_parser = subparsers.add_parser(
        "shard",
        help="fault-tolerant sharded mining (retries, checkpoint/resume)",
    )
    shard_subparsers = shard_parser.add_subparsers(
        dest="shard_command", required=True
    )
    for name, description in (
        (
            "mine",
            "execute the catalog scan plan of a CSV file across N shards "
            "with per-shard retries, timeouts, and optional checkpoints",
        ),
        (
            "resume",
            "finish an interrupted sharded run: reload every checkpointed "
            "shard partial and count only the unfinished spans",
        ),
        (
            "status",
            "report which shards of a run are checkpointed and which "
            "spans still need counting",
        ),
    ):
        sub = shard_subparsers.add_parser(name, help=description)
        sub.add_argument(
            "csv",
            help="input CSV file with a header row (or the columnar data "
            "path when --source npy/parquet)",
        )
        sub.add_argument(
            "--source",
            choices=("stream", "npy", "parquet"),
            default="stream",
            help="shard a CSV by byte spans (default) or a columnar "
            "source by tuple spans",
        )
        sub.add_argument(
            "--path",
            default=None,
            metavar="DIR",
            help="data path for --source npy/parquet (defaults to the "
            "positional file argument)",
        )
        sub.add_argument(
            "--shards", type=int, default=4, help="partition width (default: 4)"
        )
        sub.add_argument("--buckets", type=int, default=200)
        sub.add_argument("--seed", type=int, default=0)
        sub.add_argument("--chunk-size", type=int, default=None)
        _add_kernel_tier_argument(sub)
        sub.add_argument(
            "--checkpoints",
            default=None,
            metavar="DIR",
            help="checkpoint directory root (required for resume/status); "
            "each run checkpoints under its own run-key namespace",
        )
        if name == "status":
            sub.add_argument(
                "--gc",
                action="store_true",
                help="remove orphaned checkpoint run directories (every run "
                "key except this run's) after reporting",
            )
        if name != "status":
            sub.add_argument(
                "--max-retries",
                type=int,
                default=2,
                help="retries per shard before it counts as failed (default: 2)",
            )
            sub.add_argument(
                "--shard-timeout",
                type=float,
                default=None,
                help="seconds one shard attempt may run before it is "
                "declared hung and retried (default: no timeout)",
            )
            sub.add_argument(
                "--on-exhausted",
                choices=("raise", "partial"),
                default="raise",
                help="when a shard exhausts its retries: fail the run "
                "(default) or fold the surviving shards and report coverage",
            )
            sub.add_argument(
                "--transport",
                choices=("thread", "inline"),
                default="thread",
            )

    serve_parser = subparsers.add_parser(
        "serve",
        help="serve mining over HTTP from a warm profile store",
    )
    serve_parser.add_argument(
        "csv",
        help="input CSV file with a header row (or the columnar data path "
        "when --source npy/parquet)",
    )
    serve_parser.add_argument(
        "--source",
        choices=("stream", "npy", "parquet"),
        default="stream",
        help="how the data is read per request (in-memory loading is not "
        "served; the service relies on fingerprintable sources)",
    )
    serve_parser.add_argument(
        "--path",
        default=None,
        metavar="DIR",
        help="data path for --source npy/parquet (defaults to the "
        "positional file argument)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port", type=int, default=8000, help="listen port (0 = ephemeral)"
    )
    serve_parser.add_argument(
        "--token",
        default=None,
        help="require this bearer token on every /v1 and /metrics request "
        "(prefer --token-env; argv leaks into process listings)",
    )
    serve_parser.add_argument(
        "--token-env",
        default=None,
        metavar="NAME",
        help="read the bearer token from this environment variable",
    )
    serve_parser.add_argument("--buckets", type=int, default=200)
    serve_parser.add_argument("--seed", type=int, default=0)
    serve_parser.add_argument("--min-support", type=float, default=0.10)
    serve_parser.add_argument("--min-confidence", type=float, default=0.50)
    serve_parser.add_argument("--top", type=int, default=20)
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=8,
        help="request worker threads of the stdlib tier (default: 8)",
    )
    serve_parser.add_argument(
        "--tier",
        choices=("auto", "stdlib", "fastapi"),
        default=None,
        help="HTTP front-end tier (default: REPRO_SERVICE_TIER or auto; "
        "both tiers run the identical request handler)",
    )
    serve_parser.add_argument(
        "--executor",
        choices=("serial", "streaming", "multiprocessing"),
        default="serial",
    )
    serve_parser.add_argument("--chunk-size", type=int, default=None)
    _add_kernel_tier_argument(serve_parser)
    _add_store_argument(serve_parser)

    experiment_parser = subparsers.add_parser(
        "experiment", help="run one of the paper-reproduction experiments"
    )
    experiment_parser.add_argument("name", choices=sorted(_EXPERIMENTS))
    return parser


def _add_source_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared DataSource flags of the ``mine`` and ``catalog`` commands."""
    parser.add_argument(
        "--source",
        choices=("memory", "stream", "npy", "parquet"),
        default="memory",
        help="how the data is read: CSV fully loaded into memory (default), "
        "CSV scanned out-of-core in chunks, a memory-mapped .npy column "
        "directory, or an Arrow/Parquet file (needs pyarrow)",
    )
    parser.add_argument(
        "--path",
        default=None,
        metavar="DIR",
        help="data path for --source npy/parquet (defaults to the "
        "positional file argument)",
    )
    parser.add_argument(
        "--executor",
        choices=("serial", "streaming", "multiprocessing"),
        default="serial",
        help="where the counting kernel runs for source-backed scans "
        "(all executors produce identical results)",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="tuples per chunk for source-backed scans (default: 50000)",
    )
    _add_kernel_tier_argument(parser)


def _add_kernel_tier_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--kernel-tier",
        choices=("auto", "numpy", "compiled"),
        default=None,
        help="counting/solver kernel tier: compiled (numba) when available "
        "under auto, pure numpy otherwise; all tiers are bit-identical "
        "(default: REPRO_KERNEL_TIER or auto)",
    )


def _add_store_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="persistent profile store directory (requires --source stream); "
        "a warm store serves repeated runs with zero physical scans of the "
        "CSV, and an appended-to CSV counts only its new rows",
    )


def _open_store(args: argparse.Namespace):
    """The ProfileStore selected by ``--store`` (``None`` when absent)."""
    if getattr(args, "store", None) is None:
        return None
    from repro.exceptions import StoreError
    from repro.store import ProfileStore

    if getattr(args, "source", "stream") not in ("stream", "npy", "parquet"):
        raise StoreError(
            "--store caches source-backed scans; pass --source "
            "stream/npy/parquet"
        )
    return ProfileStore(args.store)


def _load_mining_data(args: argparse.Namespace, store=None):
    """The relation or streaming source selected by the CLI flags."""
    from repro.pipeline import CSVSource
    from repro.relation.io import DEFAULT_CHUNK_SIZE, infer_csv_schema

    if args.source in ("npy", "parquet"):
        return _open_columnar_source(args)
    if args.source == "stream":
        chunk_size = args.chunk_size or DEFAULT_CHUNK_SIZE
        schema = None
        if store is not None:
            # A warm store remembers the schema its snapshot was built
            # under (verified by fingerprint), so repeated runs skip the
            # inference parse entirely — the file is never opened beyond
            # the fingerprint digest.
            schema = store.cached_schema(
                CSVSource(args.csv, chunk_size=chunk_size)
            )
        if schema is None:
            # Whole-file (still bounded-memory) schema inference, so
            # streamed mining parses a file exactly as --source memory
            # would even when the leading rows are not representative of a
            # column's type.
            schema = infer_csv_schema(args.csv, chunk_size=chunk_size)
        return CSVSource(args.csv, schema=schema, chunk_size=chunk_size)
    return load_dataset(args.csv)


def _open_columnar_source(args: argparse.Namespace):
    """The zero-copy columnar source selected by ``--source npy/parquet``.

    ``--path`` names the column directory / Parquet file; without it the
    positional file argument doubles as the data path, so
    ``repro catalog profiles.npy/ --source npy`` reads naturally.
    """
    from repro.pipeline import NpyDirectorySource, ParquetSource
    from repro.relation.io import DEFAULT_CHUNK_SIZE

    path = args.path or args.csv
    chunk_size = args.chunk_size or DEFAULT_CHUNK_SIZE
    if args.source == "npy":
        return NpyDirectorySource(path, chunk_size=chunk_size)
    return ParquetSource(path, chunk_size=chunk_size)


def _run_dataset(args: argparse.Namespace) -> int:
    relation = generate_named_dataset(args.name, args.rows, seed=args.seed)
    path = save_dataset(relation, args.out)
    print(f"wrote {relation.num_tuples} tuples x {relation.num_attributes} attributes to {path}")
    return 0


def _run_mine(args: argparse.Namespace) -> int:
    import numpy as np

    data = _load_mining_data(args)
    miner = OptimizedRuleMiner(
        data,
        num_buckets=args.buckets,
        rng=np.random.default_rng(args.seed),
        engine=args.engine,
        executor=args.executor,
        kernel_tier=args.kernel_tier,
    )
    if args.kind == "confidence":
        rule = miner.optimized_confidence_rule(
            args.attribute, args.objective, min_support=args.min_support
        )
    elif args.kind == "support":
        rule = miner.optimized_support_rule(
            args.attribute, args.objective, min_confidence=args.min_confidence
        )
    elif args.kind == "max-average":
        rule = miner.maximum_average_rule(
            args.attribute, args.objective, min_support=args.min_support
        )
    else:
        rule = miner.maximum_support_average_rule(
            args.attribute, args.objective, min_average=args.min_average
        )
    if rule is None:
        print("no rule satisfies the requested thresholds")
        return 1
    print(rule)
    return 0


def _run_catalog(args: argparse.Namespace) -> int:
    from pathlib import Path

    import numpy as np

    from repro.mining import mine_rule_catalog
    from repro.reporting import catalog_to_csv, catalog_to_markdown

    store = _open_store(args)
    data = _load_mining_data(args, store=store)
    catalog = mine_rule_catalog(
        data,
        min_support=args.min_support,
        min_confidence=args.min_confidence,
        num_buckets=args.buckets,
        rng=np.random.default_rng(args.seed),
        engine=args.engine,
        executor=args.executor,
        store=store,
        kernel_tier=args.kernel_tier,
    )
    if store is not None:
        print(f"profile store: {store.last_status} ({store.directory})")
    print(
        f"mined {len(catalog)} rules over {catalog.num_pairs} attribute pairs "
        f"(support >= {args.min_support:.0%} / confidence >= {args.min_confidence:.0%})"
    )
    for entry in catalog.top(args.top, by=args.rank_by):
        print(f"  [{entry.lift:5.2f}x] {entry.rule}")
    if args.out_csv:
        path = catalog_to_csv(catalog, Path(args.out_csv))
        print(f"wrote full catalog to {path}")
    if args.out_markdown:
        Path(args.out_markdown).write_text(
            catalog_to_markdown(catalog, limit=args.top, by=args.rank_by), encoding="utf-8"
        )
        print(f"wrote Markdown summary to {args.out_markdown}")
    return 0


def _run_rules2d(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.core.rules import RuleKind
    from repro.extensions import mine_rectangle_rule

    store = _open_store(args)
    data = _load_mining_data(args, store=store)
    rule = mine_rectangle_rule(
        data,
        args.row_attribute,
        args.column_attribute,
        args.objective,
        kind=(
            RuleKind.OPTIMIZED_CONFIDENCE
            if args.kind == "confidence"
            else RuleKind.OPTIMIZED_SUPPORT
        ),
        min_support=args.min_support,
        min_confidence=args.min_confidence,
        grid=tuple(args.grid),
        rng=np.random.default_rng(args.seed),
        engine=args.engine,
        executor=args.executor,
        store=store,
        kernel_tier=args.kernel_tier,
    )
    if store is not None:
        print(f"profile store: {store.last_status} ({store.directory})")
    if rule is None:
        print("no rectangle satisfies the requested thresholds")
        return 1
    print(rule)
    return 0


def _run_store(args: argparse.Namespace) -> int:
    from repro.store import ProfileStore

    if args.store_command == "verify":
        store = ProfileStore(args.store)
        findings = store.verify()
        entries = store.inspect()
        if not findings:
            print(
                f"store {store.directory} is sound "
                f"({len(entries)} snapshot(s) verified)"
            )
            return 0
        print(
            f"store {store.directory} is corrupt: "
            f"{len(findings)} problem(s)",
            file=sys.stderr,
        )
        for finding in findings:
            payload = finding.get("payload") or "<manifest>"
            print(f"  {payload}: {finding['problem']}", file=sys.stderr)
        return 3

    if args.store_command == "inspect":
        store = ProfileStore(args.store)
        entries = store.inspect()
        if not entries:
            print(f"store {store.directory} is empty")
            return 0
        print(f"store {store.directory}: {len(entries)} snapshot(s)")
        for entry in entries:
            kinds = ", ".join(
                f"{entry['requests'].count(kind)} {kind}"
                for kind in dict.fromkeys(entry["requests"])
            )
            print(
                f"  {entry['payload']}: plan {entry['plan_signature'][:12]} "
                f"seed {entry['seed']} | {entry['num_tuples']} tuples "
                f"({entry['appended_tuples']} appended, "
                f"staleness {entry['staleness']:.1%}) | {kinds}"
            )
        return 0

    import numpy as np

    from repro.mining import mine_rule_catalog

    if args.rebuild_threshold is not None:
        store = ProfileStore(args.store, rebuild_threshold=args.rebuild_threshold)
    else:
        store = ProfileStore(args.store)
    # The stored plan is the catalog plan (every numeric x Boolean pair at
    # --buckets/--seed), produced by the same code path `catalog --store`
    # runs — so the signatures match by construction and warm catalog runs
    # are zero-scan hits.
    data = _load_mining_data(
        argparse.Namespace(
            csv=args.csv,
            source=args.source,
            path=args.path,
            chunk_size=args.chunk_size,
        ),
        store=store,
    )
    catalog = mine_rule_catalog(
        data,
        num_buckets=args.buckets,
        rng=np.random.default_rng(args.seed),
        executor=args.executor,
        store=store,
        kernel_tier=args.kernel_tier,
    )
    status = store.last_status
    print(
        f"{status}: {catalog.num_pairs} attribute pairs over "
        f"{catalog.num_tuples} tuples -> {store.directory}"
    )
    if args.store_command == "append" and status == "build":
        print(
            "note: no matching snapshot existed; a fresh one was built "
            "(check --buckets/--seed match the original build)"
        )
    return 0


def _catalog_scan_plan(schema, num_buckets: int):
    """The catalog plan shared with every snapshot-compatible surface.

    Delegates to :func:`repro.mining.catalog_scan_plan` (the service plane
    uses the same helper, so its snapshots interoperate with ``store
    build`` / ``catalog --store`` / ``shard`` / ``ingest``).  ``num_buckets``
    is accepted for the call sites' readability but intentionally not baked
    into the requests — the bucket count rides on the builder.
    """
    from repro.mining import catalog_scan_plan

    return catalog_scan_plan(schema)


def _run_shard(args: argparse.Namespace) -> int:
    from repro.exceptions import ShardError
    from repro.pipeline import CSVSource
    from repro.pipeline.builder import ProfileBuilder
    from repro.relation.io import DEFAULT_CHUNK_SIZE, infer_csv_schema
    from repro.shard import (
        RetryPolicy,
        ShardCoordinator,
        checkpoint_status,
        partition_source,
        run_key,
    )
    from repro.store.profile_store import plan_signature

    chunk_size = args.chunk_size or DEFAULT_CHUNK_SIZE
    if args.source in ("npy", "parquet"):
        source = _open_columnar_source(args)
        schema = source.schema
    else:
        schema = infer_csv_schema(args.csv, chunk_size=chunk_size)
        source = CSVSource(args.csv, schema=schema, chunk_size=chunk_size)
    builder = ProfileBuilder(
        num_buckets=args.buckets, seed=args.seed, kernel_tier=args.kernel_tier
    )
    plan = _catalog_scan_plan(schema, args.buckets)
    if len(plan) == 0:
        raise ShardError(
            f"{args.csv} has no numeric x Boolean attribute pairs to profile"
        )

    if args.shard_command == "status":
        if args.checkpoints is None:
            raise ShardError("shard status needs --checkpoints")
        # Columnar sources partition by tuple spans, which need the (cheap,
        # metadata-only) row count; CSV byte spans need nothing.
        total = None if args.source == "stream" else source.num_rows
        descriptors = partition_source(source, args.shards, total)
        key = run_key(plan_signature(builder, plan), builder.seed, descriptors)
        info = checkpoint_status(args.checkpoints, key)
        done = set(info["completed_shards"])
        print(f"run {key}: checkpoints in {info['directory']}")
        print(
            f"  boundaries checkpointed: "
            f"{'yes' if info['has_bucketings'] else 'no'}"
        )
        print(f"  shards: {len(done)}/{len(descriptors)} checkpointed")
        for descriptor in descriptors:
            state = "done" if descriptor.index in done else "pending"
            print(
                f"    shard {descriptor.index}: "
                f"[{descriptor.start}, {descriptor.stop}) "
                f"{descriptor.unit} {state}"
            )
        if args.gc:
            from repro.shard import gc_checkpoints

            removed = gc_checkpoints(args.checkpoints, [key])
            if removed:
                print(f"  gc: removed {len(removed)} orphaned run(s):")
                for name in removed:
                    print(f"    {name}")
            else:
                print("  gc: no orphaned checkpoint runs")
        return 0

    if args.shard_command == "resume" and args.checkpoints is None:
        raise ShardError("shard resume needs --checkpoints")
    coordinator = ShardCoordinator(
        builder,
        num_shards=args.shards,
        transport=args.transport,
        retry=RetryPolicy(max_retries=args.max_retries),
        shard_timeout=args.shard_timeout,
        on_exhausted=args.on_exhausted,
        checkpoints=args.checkpoints,
    )
    run = coordinator.mine(source, plan)
    coverage = run.coverage
    print(
        f"run {run.run_key}: {len(run.descriptors)} shards over "
        f"{coverage['total_units']} {coverage['unit']} "
        f"({len(plan)} profile requests)"
    )
    for report in run.reports:
        detail = f"{report.attempts} attempt(s), {report.tuples} tuples"
        if report.status == "checkpointed":
            detail = f"resumed from checkpoint, {report.tuples} tuples"
        if report.error:
            detail += f" | {report.error}"
        print(f"  shard {report.index}: {report.status} ({detail})")
    print(
        f"coverage: {coverage['coverage']:.1%} "
        f"({coverage['covered_tuples']} tuples from "
        f"{len(coverage['completed_shards'])}/{coverage['total_shards']} shards)"
    )
    if not run.complete:
        print(
            "degraded result: shards "
            f"{coverage['failed_shards']} are missing from the fold"
        )
        return 3
    return 0


def _run_ingest(args: argparse.Namespace) -> int:
    from repro.exceptions import IngestError
    from repro.ingest import (
        IngestDaemon,
        IngestReport,
        ManualRefreezePolicy,
        ScheduledRefreezePolicy,
        ThresholdRefreezePolicy,
    )
    from repro.pipeline import CSVSource
    from repro.pipeline.builder import ProfileBuilder
    from repro.relation.io import DEFAULT_CHUNK_SIZE, infer_csv_schema
    from repro.store import ProfileStore

    store = ProfileStore(args.store)
    chunk_size = args.chunk_size or DEFAULT_CHUNK_SIZE
    if args.source in ("npy", "parquet"):
        def source_factory():
            return _open_columnar_source(args)

        schema = source_factory().schema
    else:
        schema = store.cached_schema(CSVSource(args.csv, chunk_size=chunk_size))
        if schema is None:
            schema = infer_csv_schema(args.csv, chunk_size=chunk_size)
        csv_schema = schema

        def source_factory():
            return CSVSource(args.csv, schema=csv_schema, chunk_size=chunk_size)

    import numpy as np

    # Derive the boundary-sampling seed exactly as OptimizedRuleMiner does
    # from its rng, so the daemon folds into the same store entry that
    # `store build` / `catalog --store` created for this --seed.
    seed = int(np.random.default_rng(args.seed).integers(0, 2**32))
    builder = ProfileBuilder(
        num_buckets=args.buckets, seed=seed, kernel_tier=args.kernel_tier
    )
    plan = _catalog_scan_plan(schema, args.buckets)
    if len(plan) == 0:
        raise IngestError(
            f"{args.csv} has no numeric x Boolean attribute pairs to profile"
        )

    if args.ingest_command == "status":
        daemon = IngestDaemon(builder, source_factory, plan, store)
        info = daemon.status()
        print(f"ingest into {store.directory}:")
        print(f"  cycles: {info['cycle']} ({info['cycles_since_refreeze']} since re-freeze)")
        print(f"  stored tuples: {info['stored_tuples']} (staleness {info['staleness']:.1%})")
        print(f"  observed length: {info['observed_length']}")
        for attribute, reading in sorted(info["drift"].items()):
            print(
                f"  drift {attribute!r}: {reading['appended']} appended, "
                f"shift {reading['occupancy_shift']:.3f}, "
                f"KL {reading['kl_divergence']:.3f}, "
                f"out-of-range {reading['out_of_range_mass']:.3f}"
            )
        return 0

    if args.policy == "scheduled":
        policy = ScheduledRefreezePolicy(args.every_cycles)
    elif args.policy == "manual":
        policy = ManualRefreezePolicy()
    else:
        policy = ThresholdRefreezePolicy(
            max_staleness=args.max_staleness,
            max_occupancy_shift=args.max_occupancy_shift,
            max_kl=args.max_kl,
            max_out_of_range=args.max_out_of_range,
        )
    daemon = IngestDaemon(
        builder,
        source_factory,
        plan,
        store,
        policy=policy,
        max_failures=args.max_failures,
        on_source_changed=args.on_source_changed,
    )

    def describe(report: IngestReport) -> None:
        line = (
            f"cycle {report.cycle}: {report.status} | "
            f"length {report.observed_length}, "
            f"{report.appended} appended since freeze, "
            f"staleness {report.staleness:.1%}"
        )
        if report.refreeze_reason:
            line += f" | re-freeze: {report.refreeze_reason}"
        if report.error:
            line += f" | {report.error}"
        print(line)

    if args.ingest_command == "once":
        report = daemon.once()
        describe(report)
        return 3 if report.degraded else 0

    reports = daemon.run(
        cycles=args.cycles, interval=args.interval, on_report=describe
    )
    return 3 if any(report.degraded for report in reports) else 0


def _run_serve(args: argparse.Namespace) -> int:
    import os

    from repro.exceptions import ServiceError
    from repro.service import (
        RuleService,
        ServiceConfig,
        resolve_service_tier,
        serve_forever,
    )

    token = args.token
    if args.token_env is not None:
        token = os.environ.get(args.token_env)
        if not token:
            raise ServiceError(
                f"--token-env {args.token_env} is not set in the environment",
                status=500,
            )
    config = ServiceConfig(
        data=args.path or args.csv,
        source=args.source,
        store=args.store,
        num_buckets=args.buckets,
        seed=args.seed,
        min_support=args.min_support,
        min_confidence=args.min_confidence,
        engine="fast",
        executor=args.executor,
        kernel_tier=args.kernel_tier,
        chunk_size=args.chunk_size,
        token=token,
        top=args.top,
    )
    service = RuleService(config)
    tier = resolve_service_tier(args.tier)
    auth = "bearer-token auth" if token else "no auth (pass --token/--token-env)"
    print(
        f"serving {config.data} ({config.source}) on "
        f"http://{args.host}:{args.port} [{tier} tier, {auth}, "
        f"store: {config.store or 'disabled'}]",
        flush=True,
    )
    if tier == "fastapi":  # pragma: no cover - needs fastapi + uvicorn
        import json as _json

        import uvicorn

        from repro.service.fastapi_app import CONFIG_ENV, build_fastapi_app

        # Stamp the config for any worker re-exec (uvicorn reload/workers).
        os.environ.setdefault(
            CONFIG_ENV,
            _json.dumps({k: getattr(config, k) for k in ServiceConfig.__dataclass_fields__ if k != "extra"}),
        )
        uvicorn.run(build_fastapi_app(service), host=args.host, port=args.port)
        return 0
    serve_forever(service, host=args.host, port=args.port, workers=args.workers)
    return 0


def _run_experiment(args: argparse.Namespace) -> int:
    result = _EXPERIMENTS[args.name]()
    print(result.report())
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "dataset":
            return _run_dataset(args)
        if args.command == "mine":
            return _run_mine(args)
        if args.command == "catalog":
            return _run_catalog(args)
        if args.command == "rules2d":
            return _run_rules2d(args)
        if args.command == "store":
            return _run_store(args)
        if args.command == "shard":
            return _run_shard(args)
        if args.command == "ingest":
            return _run_ingest(args)
        if args.command == "serve":
            return _run_serve(args)
        if args.command == "experiment":
            return _run_experiment(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
