"""Bucket model shared by every bucketizer.

The paper (Definition 2.5) describes buckets of the domain of a numeric
attribute ``A`` as a sequence of disjoint ranges ``B_1, ..., B_M`` that cover
every value of ``A``.  In this implementation a bucketing is represented by
its *cut points*: a sorted array ``cuts`` of ``M - 1`` values such that

* bucket ``0`` holds values ``x`` with ``x <= cuts[0]``,
* bucket ``i`` (``0 < i < M-1``) holds values with ``cuts[i-1] < x <= cuts[i]``,
* bucket ``M-1`` holds values with ``x > cuts[M-2]``.

i.e. half-open intervals ``(p_{i-1}, p_i]`` with ``p_0 = -∞`` and
``p_M = +∞``, exactly the convention of Algorithm 3.1.  The closed data
ranges ``[x_i, y_i]`` used when *reporting* rules are recovered from actual
data via :meth:`Bucketing.data_bounds`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import BucketingError

__all__ = ["Bucket", "Bucketing", "Bucketizer"]


@dataclass(frozen=True)
class Bucket:
    """A single bucket with its assignment interval and observed statistics.

    Attributes
    ----------
    index:
        Zero-based bucket position.
    lower:
        Exclusive lower assignment boundary (``-inf`` for the first bucket).
    upper:
        Inclusive upper assignment boundary (``+inf`` for the last bucket).
    count:
        Number of tuples assigned to the bucket (``u_i`` in the paper).
    data_low:
        Smallest attribute value observed in the bucket (``x_i``), ``nan``
        when the bucket is empty.
    data_high:
        Largest attribute value observed in the bucket (``y_i``), ``nan``
        when the bucket is empty.
    """

    index: int
    lower: float
    upper: float
    count: int = 0
    data_low: float = float("nan")
    data_high: float = float("nan")

    @property
    def is_empty(self) -> bool:
        """Whether no tuple was assigned to this bucket."""
        return self.count == 0


class Bucketing:
    """An immutable bucketing of a numeric domain defined by its cut points."""

    def __init__(self, cuts: Sequence[float] | np.ndarray) -> None:
        array = np.asarray(cuts, dtype=np.float64)
        if array.ndim != 1:
            raise BucketingError("cut points must form a one-dimensional array")
        if array.size and not np.all(np.isfinite(array)):
            raise BucketingError("cut points must be finite")
        if array.size > 1 and not np.all(np.diff(array) >= 0):
            raise BucketingError("cut points must be sorted in non-decreasing order")
        self._cuts = array
        self._cuts.flags.writeable = False

    # -- construction ----------------------------------------------------------

    @staticmethod
    def single_bucket() -> "Bucketing":
        """The trivial bucketing that places every value in one bucket."""
        return Bucketing(np.empty(0, dtype=np.float64))

    @staticmethod
    def from_cuts(cuts: Sequence[float] | np.ndarray) -> "Bucketing":
        """Build a bucketing from explicit cut points."""
        return Bucketing(cuts)

    def deduplicated(self) -> "Bucketing":
        """Return a bucketing with duplicate cut points removed.

        Duplicate cuts produce buckets that can never receive a value; the
        paper assumes ``u_i >= 1`` so solvers prefer deduplicated cuts.
        """
        if self._cuts.size == 0:
            return self
        return Bucketing(np.unique(self._cuts))

    # -- basic properties --------------------------------------------------------

    @property
    def cuts(self) -> np.ndarray:
        """The sorted inner cut points (length ``num_buckets - 1``)."""
        return self._cuts

    @property
    def num_buckets(self) -> int:
        """Number of buckets ``M``."""
        return int(self._cuts.size) + 1

    def __len__(self) -> int:
        return self.num_buckets

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bucketing):
            return NotImplemented
        return np.array_equal(self._cuts, other._cuts)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Bucketing(num_buckets={self.num_buckets})"

    # -- assignment ---------------------------------------------------------------

    def assign(self, values: Sequence[float] | np.ndarray) -> np.ndarray:
        """Return the bucket index of every value.

        Equivalent to the binary-search step of Algorithm 3.1 step 4: find
        ``i`` such that ``p_{i-1} < x <= p_i``.
        """
        array = np.asarray(values, dtype=np.float64)
        return np.searchsorted(self._cuts, array, side="left")

    def counts(self, values: Sequence[float] | np.ndarray) -> np.ndarray:
        """Per-bucket tuple counts ``u_i`` for ``values``."""
        indices = self.assign(values)
        return np.bincount(indices, minlength=self.num_buckets).astype(np.int64)

    def conditional_counts(
        self,
        values: Sequence[float] | np.ndarray,
        mask: Sequence[bool] | np.ndarray,
    ) -> np.ndarray:
        """Per-bucket counts ``v_i`` of values whose ``mask`` entry is true."""
        array = np.asarray(values, dtype=np.float64)
        flags = np.asarray(mask, dtype=bool)
        if flags.shape != array.shape:
            raise BucketingError(
                f"mask shape {flags.shape} does not match values shape {array.shape}"
            )
        indices = self.assign(array[flags])
        return np.bincount(indices, minlength=self.num_buckets).astype(np.int64)

    def weighted_sums(
        self,
        values: Sequence[float] | np.ndarray,
        weights: Sequence[float] | np.ndarray,
    ) -> np.ndarray:
        """Per-bucket sums of ``weights`` grouped by the bucket of ``values``.

        Used by the §5 average-operator ranges where ``v_i`` is the sum of a
        target attribute ``B`` over the tuples falling in bucket ``i``.
        """
        array = np.asarray(values, dtype=np.float64)
        weight_array = np.asarray(weights, dtype=np.float64)
        if weight_array.shape != array.shape:
            raise BucketingError(
                f"weights shape {weight_array.shape} does not match values shape "
                f"{array.shape}"
            )
        indices = self.assign(array)
        return np.bincount(
            indices, weights=weight_array, minlength=self.num_buckets
        ).astype(np.float64)

    # -- reporting ----------------------------------------------------------------

    def assignment_bounds(self, index: int) -> tuple[float, float]:
        """``(lower, upper)`` assignment interval of bucket ``index``.

        The interval is exclusive below and inclusive above; the first and
        last buckets extend to ``-inf`` / ``+inf``.
        """
        self._check_index(index)
        lower = float("-inf") if index == 0 else float(self._cuts[index - 1])
        upper = float("inf") if index == self.num_buckets - 1 else float(self._cuts[index])
        return lower, upper

    def range_bounds(self, start: int, end: int) -> tuple[float, float]:
        """Assignment interval covered by consecutive buckets ``start..end``."""
        self._check_index(start)
        self._check_index(end)
        if start > end:
            raise BucketingError(f"invalid bucket range: start {start} > end {end}")
        return self.assignment_bounds(start)[0], self.assignment_bounds(end)[1]

    def data_bounds(
        self, values: Sequence[float] | np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-bucket observed minimum (``x_i``) and maximum (``y_i``) values.

        Empty buckets receive ``nan`` for both bounds.

        Bucket assignment is monotone in the value, so after one sort the
        buckets are contiguous runs and the per-bucket minimum / maximum are
        simply the first / last element of each run — no per-bucket Python
        loop is needed.
        """
        array = np.asarray(values, dtype=np.float64)
        lows = np.full(self.num_buckets, np.nan)
        highs = np.full(self.num_buckets, np.nan)
        if array.size:
            sorted_values = np.sort(array)
            sorted_indices = self.assign(sorted_values)
            boundaries = np.searchsorted(
                sorted_indices, np.arange(self.num_buckets + 1), side="left"
            )
            starts = boundaries[:-1]
            stops = boundaries[1:]
            nonempty = stops > starts
            lows[nonempty] = sorted_values[starts[nonempty]]
            highs[nonempty] = sorted_values[stops[nonempty] - 1]
        return lows, highs

    def buckets(self, values: Sequence[float] | np.ndarray) -> list[Bucket]:
        """Materialize :class:`Bucket` descriptors with counts and data bounds."""
        counts = self.counts(values)
        lows, highs = self.data_bounds(values)
        result = []
        for index in range(self.num_buckets):
            lower, upper = self.assignment_bounds(index)
            result.append(
                Bucket(
                    index=index,
                    lower=lower,
                    upper=upper,
                    count=int(counts[index]),
                    data_low=float(lows[index]),
                    data_high=float(highs[index]),
                )
            )
        return result

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.num_buckets:
            raise BucketingError(
                f"bucket index {index} out of range for {self.num_buckets} buckets"
            )


class Bucketizer(ABC):
    """Strategy interface: build a :class:`Bucketing` for a value array."""

    @abstractmethod
    def build(
        self,
        values: Sequence[float] | np.ndarray,
        num_buckets: int,
        rng: np.random.Generator | None = None,
    ) -> Bucketing:
        """Construct a bucketing of ``values`` with (at most) ``num_buckets`` buckets."""

    @staticmethod
    def _validate(values: np.ndarray, num_buckets: int) -> np.ndarray:
        """Shared argument validation for concrete bucketizers."""
        array = np.asarray(values, dtype=np.float64)
        if array.ndim != 1:
            raise BucketingError("values must form a one-dimensional array")
        if array.size == 0:
            raise BucketingError("cannot bucket an empty value array")
        if not np.all(np.isfinite(array)):
            raise BucketingError("values must be finite")
        if num_buckets <= 0:
            raise BucketingError("num_buckets must be positive")
        return array
