"""Exact equi-depth bucketing by sorting.

These are the two baselines of the Figure 9 experiment (§6.1):

* **Naive Sort** — sort the *entire relation* by the numeric attribute (an
  expensive operation because every column is permuted) and place cut points
  at the ``i·N/M``-th positions of the sorted order.
* **Vertical Split Sort** — first project the relation to a narrow temporary
  table ``(tuple_id, attribute)``, sort that, and derive the same cuts.  The
  sort moves far less data, which is why the paper reports it 2–4× faster
  than Naive Sort but still slower than the sampling algorithm.

Both produce *exact* equi-depth buckets (sizes differ by at most one), unlike
Algorithm 3.1 which produces *almost* equi-depth buckets from a sample.  The
value-level :class:`SortingEquiDepthBucketizer` is what the rest of the
library uses when exact quantiles are wanted.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.bucketing.base import Bucketing, Bucketizer
from repro.exceptions import BucketingError
from repro.relation.relation import Relation

__all__ = [
    "SortingEquiDepthBucketizer",
    "equidepth_cuts_from_sorted",
    "naive_sort_bucketing",
    "vertical_split_sort_bucketing",
]


def equidepth_cuts_from_sorted(sorted_values: np.ndarray, num_buckets: int) -> Bucketing:
    """Derive equi-depth cut points from an ascending-sorted value array.

    Cut ``i`` (1-based, ``i = 1 .. M-1``) is placed at the ``⌈i·N/M⌉``-th
    smallest value, mirroring step 3 of Algorithm 3.1 applied to the full
    data instead of a sample.  Values equal to a cut point fall into the
    lower bucket (intervals are ``(p_{i-1}, p_i]``).
    """
    n = sorted_values.shape[0]
    if n == 0:
        raise BucketingError("cannot derive cuts from an empty array")
    if num_buckets <= 0:
        raise BucketingError("num_buckets must be positive")
    if num_buckets == 1:
        return Bucketing.single_bucket()
    positions = np.ceil(np.arange(1, num_buckets) * n / num_buckets).astype(np.int64)
    positions = np.clip(positions - 1, 0, n - 1)
    return Bucketing(sorted_values[positions])


class SortingEquiDepthBucketizer(Bucketizer):
    """Exact equi-depth buckets obtained by fully sorting the value array."""

    def build(
        self,
        values: Sequence[float] | np.ndarray,
        num_buckets: int,
        rng: np.random.Generator | None = None,
    ) -> Bucketing:
        array = self._validate(values, num_buckets)
        sorted_values = np.sort(array, kind="stable")
        return equidepth_cuts_from_sorted(sorted_values, num_buckets)


def naive_sort_bucketing(
    relation: Relation, attribute: str, num_buckets: int
) -> Bucketing:
    """The "Naive Sort" baseline: sort the whole relation, then cut.

    Every column of the relation is permuted by the sort, which is what makes
    this method slow on wide relations; the resulting cut points are the same
    as :func:`vertical_split_sort_bucketing`.
    """
    sorted_relation = relation.sort_by(attribute)
    sorted_values = sorted_relation.numeric_column(attribute)
    return equidepth_cuts_from_sorted(np.asarray(sorted_values), num_buckets)


def vertical_split_sort_bucketing(
    relation: Relation, attribute: str, num_buckets: int
) -> Bucketing:
    """The "Vertical Split Sort" baseline: sort a narrow projection, then cut."""
    narrow = relation.vertical_split(attribute)
    sorted_narrow = narrow.sort_by(attribute)
    sorted_values = sorted_narrow.numeric_column(attribute)
    return equidepth_cuts_from_sorted(np.asarray(sorted_values), num_buckets)
