"""Randomized almost-equi-depth bucketing (Algorithm 3.1).

The key observation of §3 is that exact equi-depth buckets require sorting
the whole relation, which is prohibitively slow when the data is much larger
than main memory.  Algorithm 3.1 instead:

1. draws an ``S``-sized random sample (with replacement) of the attribute,
2. sorts the sample in ``O(S log S)`` time,
3. uses the ``i·(S/M)``-th smallest sample values as bucket boundaries
   ``p_1 < ... < p_{M-1}`` (with ``p_0 = -∞`` and ``p_M = +∞``),
4. assigns every original tuple to its bucket with a binary search.

§3.2 shows the per-bucket count concentrates around ``N/M`` once ``S/M`` is
about 40, independent of ``N``; :data:`DEFAULT_SAMPLE_FACTOR` records that
choice, and :mod:`repro.bucketing.sample_size` reproduces the analysis
(Figure 1).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.bucketing.base import Bucketing, Bucketizer
from repro.bucketing.equidepth_sort import equidepth_cuts_from_sorted
from repro.exceptions import BucketingError

__all__ = ["SampledEquiDepthBucketizer", "DEFAULT_SAMPLE_FACTOR"]

#: The paper's recommended sample size per bucket (S = 40 · M), chosen in §3.2
#: because the probability of a bucket deviating from N/M by more than 50%
#: drops below 0.3% at that point and barely improves beyond it.
DEFAULT_SAMPLE_FACTOR = 40


class SampledEquiDepthBucketizer(Bucketizer):
    """Algorithm 3.1: almost equi-depth buckets from a sorted random sample.

    Parameters
    ----------
    sample_factor:
        Number of sample points drawn per requested bucket; the sample size
        is ``sample_factor * num_buckets`` (capped at the data size is *not*
        applied because sampling is with replacement, matching the paper's
        analysis).
    deduplicate:
        When true (the default) duplicate cut points arising from repeated
        sample values are merged, so every bucket can receive at least one
        tuple (the paper assumes ``u_i >= 1``).  The resulting number of
        buckets can then be smaller than requested on heavily tied data.
    """

    def __init__(self, sample_factor: int = DEFAULT_SAMPLE_FACTOR,
                 deduplicate: bool = True) -> None:
        if sample_factor <= 0:
            raise BucketingError("sample_factor must be positive")
        self._sample_factor = int(sample_factor)
        self._deduplicate = bool(deduplicate)

    @property
    def sample_factor(self) -> int:
        """Sample points drawn per bucket (the paper uses 40)."""
        return self._sample_factor

    def sample_size(self, num_buckets: int) -> int:
        """Total sample size ``S`` used for ``num_buckets`` buckets."""
        return self._sample_factor * int(num_buckets)

    def build(
        self,
        values: Sequence[float] | np.ndarray,
        num_buckets: int,
        rng: np.random.Generator | None = None,
    ) -> Bucketing:
        array = self._validate(values, num_buckets)
        if num_buckets == 1:
            return Bucketing.single_bucket()
        rng = rng if rng is not None else np.random.default_rng()

        # Step 1: S-sized random sample with replacement.
        sample_size = self.sample_size(num_buckets)
        sample = rng.choice(array, size=sample_size, replace=True)

        # Step 2: sort the sample (O(S log S)).
        sample.sort(kind="stable")

        # Step 3: boundaries at the i*(S/M)-th smallest sample values.
        bucketing = equidepth_cuts_from_sorted(sample, num_buckets)
        if self._deduplicate:
            bucketing = bucketing.deduplicated()
        return bucketing
