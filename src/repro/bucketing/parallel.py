"""Parallel bucket counting (Algorithm 3.2).

The dominant cost of Algorithm 3.1 is step 4 — scanning the whole relation
to count how many tuples land in each bucket.  Because only per-bucket counts
are needed, the scan parallelizes trivially:

1. randomly distribute the tuples across processing elements (PEs),
2. have a coordinator compute the bucket boundaries from a sample,
3. let every PE count its own tuples into the shared boundaries,
4. sum the per-PE count vectors at the coordinator.

The paper ran this on a multi-processor; here the "PEs" are simulated either
sequentially (default, deterministic, no platform dependence) or with a
``multiprocessing`` pool.  Either way the partition → count → merge structure
is identical, which is the property the algorithm demonstrates: counting
requires no communication between PEs.

.. deprecated::
    :class:`ParallelBucketCounter` is retained as a thin shim over the shared
    counting kernel (:func:`repro.bucketing.counting.count_value_chunk`); the
    production multi-process path is ``repro.pipeline.ProfileBuilder`` with
    ``executor="multiprocessing"``, which parallelizes the full profile
    construction (sizes, objectives, bounds) rather than bare counts.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.bucketing.base import Bucketing
from repro.bucketing.counting import count_value_chunk
from repro.exceptions import BucketingError

__all__ = ["ParallelBucketCounter", "ParallelCountResult"]

#: Seed of the partition RNG used when :meth:`ParallelBucketCounter.count` is
#: not handed an explicit generator.  A *fixed* default (rather than a fresh
#: OS-entropy generator) makes the tuple → PE distribution — and therefore the
#: ``per_partition`` vectors of a ``ProcessPoolExecutor`` run — reproducible
#: across invocations; the merged totals never depend on the partitioning.
DEFAULT_PARTITION_SEED = 0


def _count_partition(arguments: tuple[np.ndarray, np.ndarray]) -> np.ndarray:
    """Count one PE's partition via the shared kernel (module-level for pickling).

    Only the bucket counts are needed, so the kernel's data-bounds sort is
    skipped.
    """
    values, cuts = arguments
    return count_value_chunk(values, cuts, with_bounds=False).sizes


@dataclass(frozen=True)
class ParallelCountResult:
    """Outcome of a parallel counting run.

    Attributes
    ----------
    counts:
        Total per-bucket counts (the element-wise sum of ``per_partition``).
    per_partition:
        The count vector produced by each simulated processing element.
    """

    counts: np.ndarray
    per_partition: tuple[np.ndarray, ...]

    @property
    def num_partitions(self) -> int:
        """Number of processing elements that participated."""
        return len(self.per_partition)


class ParallelBucketCounter:
    """Algorithm 3.2: partition the data, count per partition, merge by summing.

    Each partition is counted by the same shared kernel as every other
    counting path in the repository; this class only contributes the
    partition/merge choreography.

    Parameters
    ----------
    num_partitions:
        Number of simulated processing elements.
    use_processes:
        When true, partitions are counted in a ``ProcessPoolExecutor``;
        otherwise they are counted sequentially (the default — the merge
        semantics are identical and tests stay deterministic and portable).
    seed:
        Seed of the partition RNG used when :meth:`count` receives no
        explicit generator (fixed by default so process-pool runs are
        reproducible; see :data:`DEFAULT_PARTITION_SEED`).
    """

    def __init__(
        self,
        num_partitions: int,
        use_processes: bool = False,
        seed: int = DEFAULT_PARTITION_SEED,
    ) -> None:
        if num_partitions <= 0:
            raise BucketingError("num_partitions must be positive")
        self._num_partitions = int(num_partitions)
        self._use_processes = bool(use_processes)
        self._seed = int(seed)

    @property
    def num_partitions(self) -> int:
        """Number of simulated processing elements."""
        return self._num_partitions

    def count(
        self,
        values: Sequence[float] | np.ndarray,
        bucketing: Bucketing,
        rng: np.random.Generator | None = None,
    ) -> ParallelCountResult:
        """Count ``values`` into ``bucketing`` using the partition/merge scheme."""
        array = np.asarray(values, dtype=np.float64)
        if array.ndim != 1:
            raise BucketingError("values must form a one-dimensional array")
        rng = rng if rng is not None else np.random.default_rng(self._seed)

        # Step 1: randomly distribute tuples across the PEs almost evenly.
        permutation = rng.permutation(array.shape[0])
        partitions = [array[chunk] for chunk in np.array_split(permutation, self._num_partitions)]

        # Step 3: every PE counts its own tuples (no communication needed).
        tasks = [(partition, bucketing.cuts) for partition in partitions]
        if self._use_processes:
            with ProcessPoolExecutor(max_workers=self._num_partitions) as pool:
                per_partition = tuple(pool.map(_count_partition, tasks))
        else:
            per_partition = tuple(_count_partition(task) for task in tasks)

        # Step 4: gather and sum at the coordinator.
        totals = np.sum(np.vstack(per_partition), axis=0).astype(np.int64)
        return ParallelCountResult(counts=totals, per_partition=per_partition)
