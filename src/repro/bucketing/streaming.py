"""Out-of-core flavoured bucketing: reservoir sampling and chunked counting.

The whole point of Algorithm 3.1 is that the relation is too large to sort —
in the paper it lives on disk and is only ever *scanned*.  This module
provides the streaming counterpart of the in-memory bucketizer so the same
pipeline can run over data that arrives in chunks (an iterator of numpy
arrays, e.g. produced by reading a CSV in blocks):

* :class:`ReservoirSampler` — a classic reservoir sampler that maintains a
  uniform random sample of a stream without knowing its length; it replaces
  the "S-sized random sample" step when the data cannot be indexed.
* :class:`StreamingBucketCounter` — accumulates per-bucket tuple counts and
  per-objective conditional counts chunk by chunk (the same merge-by-summing
  structure as the parallel Algorithm 3.2).
* :func:`build_streaming_profile` — two passes over a chunk iterator factory:
  pass 1 draws the sample and derives the bucket boundaries, pass 2 counts;
  the result is a regular :class:`~repro.core.BucketProfile`, so every solver
  works unchanged on out-of-core data.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

import numpy as np

from repro.bucketing.base import Bucketing
from repro.bucketing.equidepth_sort import equidepth_cuts_from_sorted
from repro.core.profile import BucketProfile
from repro.exceptions import BucketingError

__all__ = [
    "ReservoirSampler",
    "StreamingBucketCounter",
    "streaming_equidepth_bucketing",
    "build_streaming_profile",
]


class ReservoirSampler:
    """Uniform random sample of a stream of unknown length (Algorithm R).

    Every element seen so far has the same probability ``k / n`` of being in
    the reservoir of size ``k`` after ``n`` elements, which is exactly the
    uniformity Algorithm 3.1's analysis needs.  Feeding numpy chunks is
    vectorized: the acceptance test for a whole chunk is drawn at once.
    """

    def __init__(self, capacity: int, rng: np.random.Generator | None = None) -> None:
        if capacity <= 0:
            raise BucketingError("reservoir capacity must be positive")
        self._capacity = int(capacity)
        self._rng = rng if rng is not None else np.random.default_rng()
        self._reservoir = np.empty(self._capacity, dtype=np.float64)
        self._seen = 0

    @property
    def capacity(self) -> int:
        """Maximum number of retained sample points."""
        return self._capacity

    @property
    def seen(self) -> int:
        """Number of stream elements observed so far."""
        return self._seen

    def extend(self, values: Iterable[float] | np.ndarray) -> None:
        """Feed a chunk of values into the reservoir."""
        chunk = np.asarray(values, dtype=np.float64).ravel()
        if chunk.size == 0:
            return
        position = 0
        # Fill the reservoir first.
        if self._seen < self._capacity:
            take = min(self._capacity - self._seen, chunk.size)
            self._reservoir[self._seen : self._seen + take] = chunk[:take]
            self._seen += take
            position = take
        if position >= chunk.size:
            return
        # Vectorized Algorithm R for the remainder of the chunk: element i of
        # the stream (1-based index) replaces a random reservoir slot with
        # probability capacity / i.
        remainder = chunk[position:]
        indices = self._seen + 1 + np.arange(remainder.size)
        accept = self._rng.random(remainder.size) < (self._capacity / indices)
        slots = self._rng.integers(0, self._capacity, size=remainder.size)
        for value, keep, slot in zip(remainder, accept, slots):
            if keep:
                self._reservoir[slot] = value
        self._seen += remainder.size

    def sample(self) -> np.ndarray:
        """The current sample (a copy; at most ``capacity`` values)."""
        return self._reservoir[: min(self._seen, self._capacity)].copy()


class StreamingBucketCounter:
    """Accumulate bucket counts over a stream of (values, masks) chunks."""

    def __init__(self, bucketing: Bucketing, objective_labels: list[str] | None = None) -> None:
        self._bucketing = bucketing
        self._labels = list(objective_labels or [])
        self._sizes = np.zeros(bucketing.num_buckets, dtype=np.int64)
        self._conditional = {
            label: np.zeros(bucketing.num_buckets, dtype=np.int64) for label in self._labels
        }
        self._lows = np.full(bucketing.num_buckets, np.inf)
        self._highs = np.full(bucketing.num_buckets, -np.inf)
        self._total = 0

    @property
    def bucketing(self) -> Bucketing:
        """The bucket boundaries being counted against."""
        return self._bucketing

    @property
    def total(self) -> int:
        """Number of tuples counted so far."""
        return self._total

    def update(
        self,
        values: np.ndarray,
        masks: dict[str, np.ndarray] | None = None,
    ) -> None:
        """Add one chunk of attribute values (and objective masks) to the counts."""
        chunk = np.asarray(values, dtype=np.float64).ravel()
        if chunk.size == 0:
            return
        self._sizes += self._bucketing.counts(chunk)
        lows, highs = self._bucketing.data_bounds(chunk)
        observed = ~np.isnan(lows)
        self._lows[observed] = np.minimum(self._lows[observed], lows[observed])
        self._highs[observed] = np.maximum(self._highs[observed], highs[observed])
        for label in self._labels:
            if masks is None or label not in masks:
                raise BucketingError(f"chunk is missing the mask for objective {label!r}")
            mask = np.asarray(masks[label], dtype=bool).ravel()
            if mask.shape != chunk.shape:
                raise BucketingError(
                    f"mask for {label!r} has shape {mask.shape}, expected {chunk.shape}"
                )
            self._conditional[label] += self._bucketing.conditional_counts(chunk, mask)
        self._total += chunk.size

    def sizes(self) -> np.ndarray:
        """Accumulated per-bucket tuple counts."""
        return self._sizes.copy()

    def conditional(self, label: str) -> np.ndarray:
        """Accumulated per-bucket counts for one objective."""
        if label not in self._conditional:
            raise BucketingError(f"unknown objective label {label!r}")
        return self._conditional[label].copy()

    def to_profile(self, label: str, attribute: str = "A") -> BucketProfile:
        """Materialize a :class:`BucketProfile` for one objective.

        Empty buckets are dropped (as the in-memory profile builder does), so
        the result feeds straight into the solvers.
        """
        sizes = self._sizes.astype(np.float64)
        values = self.conditional(label).astype(np.float64)
        keep = sizes > 0
        if not np.any(keep):
            raise BucketingError("no tuples have been counted yet")
        return BucketProfile(
            attribute=attribute,
            objective_label=label,
            sizes=sizes[keep],
            values=values[keep],
            lows=self._lows[keep],
            highs=self._highs[keep],
            total=float(self._total),
        )


def streaming_equidepth_bucketing(
    chunks: Iterable[np.ndarray],
    num_buckets: int,
    sample_factor: int = 40,
    rng: np.random.Generator | None = None,
    deduplicate: bool = True,
) -> Bucketing:
    """Algorithm 3.1 step 1–3 over a stream: reservoir sample, sort, cut."""
    if num_buckets <= 0:
        raise BucketingError("num_buckets must be positive")
    if num_buckets == 1:
        # Still consume the stream so callers can reuse exhausted iterators safely.
        for _ in chunks:
            pass
        return Bucketing.single_bucket()
    sampler = ReservoirSampler(sample_factor * num_buckets, rng=rng)
    for chunk in chunks:
        sampler.extend(chunk)
    sample = sampler.sample()
    if sample.size == 0:
        raise BucketingError("the stream contained no values")
    sample.sort(kind="stable")
    bucketing = equidepth_cuts_from_sorted(sample, num_buckets)
    return bucketing.deduplicated() if deduplicate else bucketing


def build_streaming_profile(
    chunk_factory: Callable[[], Iterator[tuple[np.ndarray, np.ndarray]]],
    num_buckets: int,
    attribute: str = "A",
    objective_label: str = "C",
    sample_factor: int = 40,
    rng: np.random.Generator | None = None,
) -> BucketProfile:
    """Two-pass profile construction over chunked ``(values, objective_mask)`` data.

    ``chunk_factory`` must return a *fresh* iterator each time it is called
    (the first pass draws the sample, the second pass counts) — exactly the
    two sequential scans the paper's system performs over the database file.
    """
    first_pass = (values for values, _ in chunk_factory())
    bucketing = streaming_equidepth_bucketing(
        first_pass, num_buckets, sample_factor=sample_factor, rng=rng
    )
    counter = StreamingBucketCounter(bucketing, objective_labels=[objective_label])
    for values, mask in chunk_factory():
        counter.update(values, {objective_label: mask})
    return counter.to_profile(objective_label, attribute=attribute)
