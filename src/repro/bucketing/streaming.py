"""Out-of-core flavoured bucketing: reservoir sampling and chunked counting.

The whole point of Algorithm 3.1 is that the relation is too large to sort —
in the paper it lives on disk and is only ever *scanned*.  This module
provides the streaming building blocks the unified pipeline
(:mod:`repro.pipeline`) composes:

* :class:`ReservoirSampler` — a classic reservoir sampler that maintains a
  uniform random sample of a stream without knowing its length; it replaces
  the "S-sized random sample" step when the data cannot be indexed.  The
  sample it produces is invariant to how the stream is chunked, so every
  :class:`~repro.pipeline.DataSource` over the same tuples yields the same
  bucket boundaries.
* :class:`StreamingBucketCounter` — accumulates per-bucket tuple counts and
  per-objective conditional counts chunk by chunk (the same merge-by-summing
  structure as the parallel Algorithm 3.2); counting delegates to the shared
  kernel :func:`repro.bucketing.counting.count_value_chunk`.
* :func:`streaming_equidepth_bucketing` — Algorithm 3.1 steps 1–3 over a
  chunk stream; this is the boundary-sampling strategy
  :class:`~repro.pipeline.ProfileBuilder` runs in its first pass.
* :func:`build_streaming_profile` — **deprecated** thin shim over
  ``ProfileBuilder`` kept for the pre-pipeline API; new code should build a
  :class:`~repro.pipeline.ChunkedSource` and use the pipeline directly.
"""

from __future__ import annotations

import warnings
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.bucketing.base import Bucketing
from repro.bucketing.counting import ChunkCounts, count_value_chunk
from repro.bucketing.equidepth_sort import equidepth_cuts_from_sorted
from repro.core.profile import BucketProfile
from repro.exceptions import BucketingError

__all__ = [
    "ReservoirSampler",
    "StreamingBucketCounter",
    "streaming_equidepth_bucketing",
    "build_streaming_profile",
]


class ReservoirSampler:
    """Uniform random sample of a stream of unknown length (Algorithm R).

    Every element seen so far has the same probability ``k / n`` of being in
    the reservoir of size ``k`` after ``n`` elements, which is exactly the
    uniformity Algorithm 3.1's analysis needs.  Feeding numpy chunks is
    vectorized, and each post-fill element consumes exactly two uniform
    draws (acceptance, then replacement slot) in element order — so for a
    fixed ``rng`` seed the final sample depends only on the element sequence,
    never on the chunk boundaries it arrived in.  That chunk invariance is
    what lets the pipeline produce bit-identical bucket boundaries across
    in-memory, chunked, and CSV sources.
    """

    def __init__(self, capacity: int, rng: np.random.Generator | None = None) -> None:
        if capacity <= 0:
            raise BucketingError("reservoir capacity must be positive")
        self._capacity = int(capacity)
        self._rng = rng if rng is not None else np.random.default_rng()
        self._reservoir = np.empty(self._capacity, dtype=np.float64)
        self._seen = 0

    @property
    def capacity(self) -> int:
        """Maximum number of retained sample points."""
        return self._capacity

    @property
    def seen(self) -> int:
        """Number of stream elements observed so far."""
        return self._seen

    def extend(self, values: Iterable[float] | np.ndarray) -> None:
        """Feed a chunk of values into the reservoir."""
        chunk = np.asarray(values, dtype=np.float64).ravel()
        if chunk.size == 0:
            return
        position = 0
        # Fill the reservoir first (consumes no randomness).
        if self._seen < self._capacity:
            take = min(self._capacity - self._seen, chunk.size)
            self._reservoir[self._seen : self._seen + take] = chunk[:take]
            self._seen += take
            position = take
        if position >= chunk.size:
            return
        # Vectorized Algorithm R for the remainder of the chunk: element i of
        # the stream (1-based index) replaces a random reservoir slot with
        # probability capacity / i.  Drawing a (size, 2) row-major block gives
        # each element its (acceptance, slot) pair in element order, keeping
        # the sample independent of chunk boundaries.
        remainder = chunk[position:]
        draws = self._rng.random((remainder.size, 2))
        indices = self._seen + 1 + np.arange(remainder.size)
        accepted = np.nonzero(draws[:, 0] < (self._capacity / indices))[0]
        slots = (draws[accepted, 1] * self._capacity).astype(np.int64)
        # Sequential semantics: later acceptances overwrite earlier ones when
        # they land on the same slot; `accepted` is ascending, so assigning in
        # order reproduces the one-element-at-a-time algorithm.
        for index, slot in zip(accepted, slots):
            self._reservoir[slot] = remainder[index]
        self._seen += remainder.size

    def sample(self) -> np.ndarray:
        """The current sample (a copy; at most ``capacity`` values)."""
        return self._reservoir[: min(self._seen, self._capacity)].copy()


class StreamingBucketCounter:
    """Accumulate bucket counts over a stream of (values, masks) chunks.

    Each chunk runs through the shared counting kernel
    :func:`~repro.bucketing.counting.count_value_chunk` and the resulting
    :class:`~repro.bucketing.counting.ChunkCounts` partial merges into the
    running totals — the same structure the pipeline executors use.
    """

    def __init__(self, bucketing: Bucketing, objective_labels: list[str] | None = None) -> None:
        self._bucketing = bucketing
        self._labels = list(objective_labels or [])
        self._totals = ChunkCounts.zeros(
            bucketing.num_buckets, num_masks=len(self._labels)
        )

    @property
    def bucketing(self) -> Bucketing:
        """The bucket boundaries being counted against."""
        return self._bucketing

    @property
    def total(self) -> int:
        """Number of tuples counted so far."""
        return self._totals.num_tuples

    def update(
        self,
        values: np.ndarray,
        masks: dict[str, np.ndarray] | None = None,
    ) -> None:
        """Add one chunk of attribute values (and objective masks) to the counts."""
        chunk = np.asarray(values, dtype=np.float64).ravel()
        if chunk.size == 0:
            return
        mask_matrix = np.empty((len(self._labels), chunk.size), dtype=bool)
        for row, label in enumerate(self._labels):
            if masks is None or label not in masks:
                raise BucketingError(f"chunk is missing the mask for objective {label!r}")
            mask = np.asarray(masks[label], dtype=bool).ravel()
            if mask.shape != chunk.shape:
                raise BucketingError(
                    f"mask for {label!r} has shape {mask.shape}, expected {chunk.shape}"
                )
            mask_matrix[row] = mask
        self._totals.merge(
            count_value_chunk(
                chunk,
                self._bucketing.cuts,
                masks=mask_matrix if self._labels else None,
            )
        )

    def sizes(self) -> np.ndarray:
        """Accumulated per-bucket tuple counts."""
        return self._totals.sizes.copy()

    def conditional(self, label: str) -> np.ndarray:
        """Accumulated per-bucket counts for one objective."""
        if label not in self._labels:
            raise BucketingError(f"unknown objective label {label!r}")
        return self._totals.conditional[self._labels.index(label)].copy()

    def to_profile(self, label: str, attribute: str = "A") -> BucketProfile:
        """Materialize a :class:`BucketProfile` for one objective.

        Empty buckets are dropped (as the in-memory profile builder does), so
        the result feeds straight into the solvers.
        """
        sizes = self._totals.sizes.astype(np.float64)
        values = self.conditional(label).astype(np.float64)
        keep = sizes > 0
        if not np.any(keep):
            raise BucketingError("no tuples have been counted yet")
        return BucketProfile(
            attribute=attribute,
            objective_label=label,
            sizes=sizes[keep],
            values=values[keep],
            lows=self._totals.lows[keep],
            highs=self._totals.highs[keep],
            total=float(self.total),
        )


def streaming_equidepth_bucketing(
    chunks: Iterable[np.ndarray],
    num_buckets: int,
    sample_factor: int = 40,
    rng: np.random.Generator | None = None,
    deduplicate: bool = True,
) -> Bucketing:
    """Algorithm 3.1 step 1–3 over a stream: reservoir sample, sort, cut."""
    if num_buckets <= 0:
        raise BucketingError("num_buckets must be positive")
    if num_buckets == 1:
        # Still consume the stream so callers can reuse exhausted iterators safely.
        for _ in chunks:
            pass
        return Bucketing.single_bucket()
    sampler = ReservoirSampler(sample_factor * num_buckets, rng=rng)
    for chunk in chunks:
        sampler.extend(chunk)
    sample = sampler.sample()
    if sample.size == 0:
        raise BucketingError("the stream contained no values")
    sample.sort(kind="stable")
    bucketing = equidepth_cuts_from_sorted(sample, num_buckets)
    return bucketing.deduplicated() if deduplicate else bucketing


def build_streaming_profile(
    chunk_factory: Callable[[], Iterator[tuple[np.ndarray, np.ndarray]]],
    num_buckets: int,
    attribute: str = "A",
    objective_label: str = "C",
    sample_factor: int = 40,
    rng: np.random.Generator | None = None,
) -> BucketProfile:
    """Two-pass profile construction over chunked ``(values, objective_mask)`` data.

    .. deprecated::
        This is a thin compatibility shim over the unified pipeline; build a
        :class:`repro.pipeline.ChunkedSource` (or ``CSVSource``) and a
        :class:`repro.pipeline.ProfileBuilder` instead — they also give you
        multiple objectives per scan and a choice of executors.

    ``chunk_factory`` must return a *fresh* iterator each time it is called
    (the first pass draws the sample, the second pass counts) — exactly the
    two sequential scans the paper's system performs over the database file.
    """
    warnings.warn(
        "build_streaming_profile is deprecated; use repro.pipeline.ProfileBuilder "
        "with a ChunkedSource or CSVSource",
        DeprecationWarning,
        stacklevel=2,
    )
    # Imported here: repro.pipeline itself builds on this module.
    from repro.pipeline.builder import ProfileBuilder
    from repro.pipeline.sources import ChunkedSource
    from repro.relation.conditions import BooleanIs

    first_pass = (values for values, _ in chunk_factory())
    bucketing = streaming_equidepth_bucketing(
        first_pass, num_buckets, sample_factor=sample_factor, rng=rng
    )
    source = ChunkedSource.from_arrays(
        chunk_factory, attribute=attribute, objective="objective"
    )
    builder = ProfileBuilder(
        num_buckets=num_buckets, sample_factor=sample_factor, executor="streaming"
    )
    return builder.build_profile(
        source,
        attribute,
        BooleanIs("objective", True),
        bucketing=bucketing,
        label=objective_label,
    )
