"""Equi-width bucketing.

Not a contribution of the paper, but the natural strawman against which
equi-depth bucketing is motivated: §3.4 (footnote 3) notes that equi-depth
buckets minimize the worst-case approximation error for a fixed number of
buckets, because any other bucketing contains a bucket holding more than a
``1/M`` fraction of the tuples.  The ablation benchmarks use this class to
demonstrate that claim empirically.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.bucketing.base import Bucketing, Bucketizer

__all__ = ["EquiWidthBucketizer"]


class EquiWidthBucketizer(Bucketizer):
    """Split the observed value range into ``num_buckets`` equal-length pieces."""

    def build(
        self,
        values: Sequence[float] | np.ndarray,
        num_buckets: int,
        rng: np.random.Generator | None = None,
    ) -> Bucketing:
        array = self._validate(values, num_buckets)
        low = float(array.min())
        high = float(array.max())
        if num_buckets == 1 or low == high:
            return Bucketing.single_bucket()
        cuts = np.linspace(low, high, num_buckets + 1)[1:-1]
        return Bucketing(cuts)
