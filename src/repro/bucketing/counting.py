"""Relation-level bucket counting.

The experiments of §6.1 bucket a relation on each numeric attribute and, in
the same scan, count for every Boolean attribute how many tuples of each
bucket satisfy it (these are the ``u_i`` / ``v_i`` inputs of the rule
optimizers).  This module provides that combined counting step on top of the
value-level :class:`repro.bucketing.Bucketing` primitives.

Batched counting
----------------
The catalog workload of §1.3 evaluates *many* objective conditions against
the same numeric attribute.  Re-scanning the relation per condition (one
``searchsorted`` assignment pass each) wastes almost all of its time
repeating identical work, so the batched entry points here perform the
bucket assignment exactly once and answer every condition from it:

* :func:`count_many` — one assignment pass, one sort for the data bounds,
  then one ``np.bincount`` per condition over the pre-assigned indices;
* :func:`masked_bucket_counts` — the underlying mask-matrix kernel: stacks
  the condition masks into a ``(num_conditions, num_tuples)`` Boolean
  matrix, offsets each row's bucket indices into its own ``num_buckets``
  window, and counts all conditions with a single flat ``np.bincount``
  (chunked so the temporary index matrix stays bounded).

Parity guarantee: the batched counts are produced by the same
``searchsorted`` + ``bincount`` primitives as the per-condition path, so
``count_many`` returns arrays equal to calling :func:`count_relation_buckets`
once per condition — the tests in ``tests/bucketing/test_counting.py``
assert exact equality.

Chunk kernel
------------
:func:`count_value_chunk` packages the same primitives as a picklable,
chunk-at-a-time kernel returning :class:`ChunkCounts` partials that merge by
summing.  It is the single counting implementation behind the
``repro.pipeline`` executors, the streaming counter, and the Algorithm 3.2
parallel counter.

Grid kernel
-----------
:func:`count_grid_chunk` is the two-dimensional analogue for the §1.4
rectangle extension: both attributes are assigned in one pass each, the cell
index ``row * C + column`` flattens the ``R × C`` grid, and a single
``bincount`` (plus the mask-matrix kernel for objectives) produces the
per-cell ``u_ij`` / ``v_ij`` counts as :class:`GridChunkCounts` partials —
merged by the same executors that drive the 1-D pipeline.

Fused plan kernel
-----------------
:func:`count_plan_chunk` generalizes both chunk kernels to a whole
:class:`KernelPlan` — every (attribute, bucketing) axis of a scan plan
assigned exactly once per chunk, all 1-D *and* flattened 2-D
``(segment × condition)`` cells answered through offset-encoded flat
``bincount``\\ s, and all §5 bucket sums through one flat weighted
``bincount``.  :func:`count_value_chunk` and :func:`count_grid_chunk` are
now one-segment plans over this kernel, which is what makes fused scans
bit-identical to per-request scans by construction.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.bucketing.base import Bucketing
from repro.exceptions import BucketingError, KernelError
from repro.kernels import load_compiled
from repro.relation.conditions import Condition
from repro.relation.relation import Relation

__all__ = [
    "BucketCounts",
    "ChunkCounts",
    "GridChunkCounts",
    "PlanChunkCounts",
    "AxisSpec",
    "ValueSegment",
    "GridSegment",
    "KernelPlan",
    "count_relation_buckets",
    "count_conditions",
    "count_many",
    "count_value_chunk",
    "count_grid_chunk",
    "count_plan_chunk",
    "masked_bucket_counts",
    "plan_state_checksum",
]

#: Default upper bound on the number of elements of the temporary offset-index
#: matrix built per chunk by the mask-matrix kernel (~64 MB of int64 at 8e6
#: entries, half that when the int32 window applies).  Tunable per call via
#: the ``chunk_elements`` keyword or process-wide via the
#: ``REPRO_MASK_MATRIX_CHUNK_ELEMENTS`` environment variable.
_MASK_MATRIX_CHUNK_ELEMENTS = 8_000_000


def _mask_matrix_chunk_elements(chunk_elements: int | None = None) -> int:
    """Resolve the mask-matrix temporary budget (keyword > env > default)."""
    if chunk_elements is None:
        raw = os.environ.get("REPRO_MASK_MATRIX_CHUNK_ELEMENTS", "")
        chunk_elements = int(raw) if raw else _MASK_MATRIX_CHUNK_ELEMENTS
    if chunk_elements <= 0:
        raise BucketingError("mask-matrix chunk elements budget must be positive")
    return int(chunk_elements)


def _offset_dtype(total_cells: int) -> type:
    """Smallest index dtype for offset-encoded windows spanning ``total_cells``."""
    return np.int32 if total_cells <= np.iinfo(np.int32).max else np.int64


@dataclass(frozen=True)
class BucketCounts:
    """Counts of a relation over one numeric attribute's bucketing.

    Attributes
    ----------
    attribute:
        The numeric attribute that was bucketed.
    bucketing:
        The bucketing used for assignment.
    sizes:
        Per-bucket tuple counts ``u_i``.
    conditional:
        For every counted objective (keyed by label), the per-bucket counts
        ``v_i`` of tuples that also satisfy the objective.
    data_low / data_high:
        Observed minimum / maximum attribute value per bucket (``x_i`` and
        ``y_i``), ``nan`` for empty buckets.
    """

    attribute: str
    bucketing: Bucketing
    sizes: np.ndarray
    conditional: Mapping[str, np.ndarray]
    data_low: np.ndarray
    data_high: np.ndarray

    @property
    def num_buckets(self) -> int:
        """Number of buckets counted."""
        return self.bucketing.num_buckets

    @property
    def total(self) -> int:
        """Total number of tuples counted."""
        return int(self.sizes.sum())

    def evenness(self) -> float:
        """Max bucket size divided by the ideal ``N/M`` size.

        A value of 1.0 means perfectly equi-depth buckets; the sampling
        bucketizer targets values close to 1 with high probability.
        """
        if self.total == 0 or self.num_buckets == 0:
            return 0.0
        ideal = self.total / self.num_buckets
        return float(self.sizes.max() / ideal)


def masked_bucket_counts(
    indices: np.ndarray,
    masks: np.ndarray,
    num_buckets: int,
    chunk_elements: int | None = None,
) -> np.ndarray:
    """Per-bucket counts for several Boolean masks over pre-assigned indices.

    Parameters
    ----------
    indices:
        Bucket index of every tuple (one assignment pass, shared by all
        masks).
    masks:
        Boolean matrix of shape ``(num_masks, num_tuples)``.
    num_buckets:
        Number of buckets ``M``.
    chunk_elements:
        Upper bound on the elements of the temporary offset-index matrix
        (default: the ``REPRO_MASK_MATRIX_CHUNK_ELEMENTS`` environment
        variable, falling back to 8e6).

    Returns
    -------
    np.ndarray
        Int64 matrix of shape ``(num_masks, num_buckets)`` where row ``c``
        equals ``np.bincount(indices[masks[c]], minlength=num_buckets)``.

    Each chunk of rows is counted with a *single* ``np.bincount`` by
    offsetting row ``c``'s indices into the window
    ``[c * num_buckets, (c + 1) * num_buckets)``; when every offset index of
    a row chunk fits ``int32`` the temporaries are built in ``int32``,
    halving the kernel's memory traffic.
    """
    masks = np.asarray(masks, dtype=bool)
    if masks.ndim != 2:
        raise BucketingError("masks must form a (num_masks, num_tuples) matrix")
    num_masks, num_tuples = masks.shape
    if indices.shape != (num_tuples,):
        raise BucketingError(
            f"indices shape {indices.shape} does not match masks row length {num_tuples}"
        )
    counts = np.empty((num_masks, num_buckets), dtype=np.int64)
    if num_masks == 0:
        return counts
    budget = _mask_matrix_chunk_elements(chunk_elements)
    chunk_rows = max(1, budget // max(1, num_tuples))
    dtype = _offset_dtype(min(num_masks, chunk_rows) * num_buckets)
    narrow = indices.astype(dtype, copy=False)
    # One offset table for the whole call, sized to the widest window and
    # sliced per window — every window shares the same row offsets, so
    # rebuilding the table inside the loop was pure allocation churn.
    offsets = (
        np.arange(min(num_masks, chunk_rows), dtype=dtype) * dtype(num_buckets)
    )[:, None]
    for begin in range(0, num_masks, chunk_rows):
        stop = min(begin + chunk_rows, num_masks)
        rows = stop - begin
        flat = (narrow[None, :] + offsets[:rows])[masks[begin:stop]]
        counts[begin:stop] = np.bincount(
            flat, minlength=rows * num_buckets
        ).reshape(rows, num_buckets)
    return counts


@dataclass
class ChunkCounts:
    """Partial bucket counts of one value chunk (or one PE's partition).

    This is the unit of work of the shared counting kernel
    :func:`count_value_chunk`: everything Algorithm 3.1 step 4 needs from a
    scan — per-bucket tuple counts, per-mask conditional counts, per-weight
    bucket sums, and observed data bounds — for one slice of the data.
    Partials merge by element-wise summing (and min/max for the bounds),
    which is exactly the no-communication merge of Algorithm 3.2; the
    pipeline executors (serial, streaming, multiprocessing) differ only in
    *where* the partials are produced, never in what they contain.

    Attributes
    ----------
    sizes:
        Per-bucket tuple counts ``u_i`` of the chunk, shape ``(M,)``.
    conditional:
        Per-mask conditional counts, shape ``(num_masks, M)``.
    sums:
        Per-weight-row bucket sums (the §5 average numerators), shape
        ``(num_weights, M)``.
    lows / highs:
        Observed per-bucket minimum / maximum values, ``nan`` where the
        chunk put nothing in a bucket.
    mask_lows / mask_highs:
        Observed per-bucket bounds of the values selected by each *bound
        mask* (shape ``(num_bound_masks, M)``) — the restricted data bounds
        a §4.3 presumptive profile reports its value range from.
    num_tuples:
        Number of values counted in this chunk.
    """

    sizes: np.ndarray
    conditional: np.ndarray
    sums: np.ndarray
    lows: np.ndarray
    highs: np.ndarray
    num_tuples: int = 0
    mask_lows: np.ndarray | None = None
    mask_highs: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.mask_lows is None:
            self.mask_lows = np.zeros((0, self.sizes.shape[0]))
        if self.mask_highs is None:
            self.mask_highs = np.zeros((0, self.sizes.shape[0]))

    @staticmethod
    def zeros(
        num_buckets: int,
        num_masks: int = 0,
        num_weights: int = 0,
        num_bound_masks: int = 0,
    ) -> "ChunkCounts":
        """An identity element for :meth:`merge`."""
        return ChunkCounts(
            sizes=np.zeros(num_buckets, dtype=np.int64),
            conditional=np.zeros((num_masks, num_buckets), dtype=np.int64),
            sums=np.zeros((num_weights, num_buckets), dtype=np.float64),
            lows=np.full(num_buckets, np.nan),
            highs=np.full(num_buckets, np.nan),
            num_tuples=0,
            mask_lows=np.full((num_bound_masks, num_buckets), np.nan),
            mask_highs=np.full((num_bound_masks, num_buckets), np.nan),
        )

    def to_state(self) -> dict[str, np.ndarray]:
        """Flat array mapping capturing this partial exactly (``npz``-ready).

        Together with :meth:`from_state` this is the persistence contract of
        the profile store: every field round-trips bit for bit (dtypes
        included), so a deserialized partial merges and instantiates
        profiles exactly like the original.
        """
        assert self.mask_lows is not None and self.mask_highs is not None
        return {
            "sizes": self.sizes,
            "conditional": self.conditional,
            "sums": self.sums,
            "lows": self.lows,
            "highs": self.highs,
            "mask_lows": self.mask_lows,
            "mask_highs": self.mask_highs,
            "num_tuples": np.int64(self.num_tuples),
        }

    @classmethod
    def from_state(cls, state: Mapping[str, np.ndarray]) -> "ChunkCounts":
        """Rebuild a partial from :meth:`to_state` arrays (fresh copies)."""
        try:
            return cls(
                sizes=np.array(state["sizes"], dtype=np.int64),
                conditional=np.array(state["conditional"], dtype=np.int64),
                sums=np.array(state["sums"], dtype=np.float64),
                lows=np.array(state["lows"], dtype=np.float64),
                highs=np.array(state["highs"], dtype=np.float64),
                mask_lows=np.array(state["mask_lows"], dtype=np.float64),
                mask_highs=np.array(state["mask_highs"], dtype=np.float64),
                num_tuples=int(state["num_tuples"]),
            )
        except KeyError as exc:
            raise BucketingError(
                f"chunk-counts state is missing field {exc.args[0]!r}"
            ) from exc

    def merge(self, other: "ChunkCounts") -> "ChunkCounts":
        """Accumulate another partial into this one (in place; returns self).

        Counts add exactly (int64); bucket sums add in merge order, so any
        executor that merges partials in chunk order reproduces the serial
        float result bit for bit; bounds combine with nan-aware min/max.
        """
        if (
            self.sizes.shape != other.sizes.shape
            or self.conditional.shape != other.conditional.shape
            or self.sums.shape != other.sums.shape
            or self.mask_lows.shape != other.mask_lows.shape
        ):
            raise BucketingError("cannot merge chunk counts of different shapes")
        self.sizes += other.sizes
        self.conditional += other.conditional
        self.sums += other.sums
        self.lows = np.fmin(self.lows, other.lows)
        self.highs = np.fmax(self.highs, other.highs)
        self.mask_lows = np.fmin(self.mask_lows, other.mask_lows)
        self.mask_highs = np.fmax(self.mask_highs, other.mask_highs)
        self.num_tuples += other.num_tuples
        return self


def count_value_chunk(
    values: np.ndarray,
    cuts: np.ndarray,
    masks: np.ndarray | None = None,
    weights: np.ndarray | None = None,
    with_bounds: bool = True,
    bound_masks: np.ndarray | None = None,
) -> ChunkCounts:
    """The shared counting kernel: bucket one value chunk against ``cuts``.

    One ``searchsorted`` assignment pass over the chunk feeds every output:
    ``sizes`` from a plain ``bincount``, all ``masks`` rows from the
    mask-matrix kernel :func:`masked_bucket_counts`, all ``weights`` rows
    from weighted bincounts, and the data bounds from one sort.  Module
    level (and numpy-only in its arguments) so a ``ProcessPoolExecutor``
    can run it in worker processes unchanged — every counting path in the
    repository (in-memory, streaming, parallel, pipeline executors) reduces
    to this function plus :meth:`ChunkCounts.merge`.

    ``with_bounds=False`` skips the sort behind the per-bucket data bounds
    (``lows``/``highs`` stay ``nan``) for callers that only need counts —
    the bounds sort would otherwise dominate a bare counting scan.

    ``bound_masks`` (a ``(num_bound_masks, num_tuples)`` Boolean matrix)
    additionally produces per-bucket data bounds *restricted* to the tuples
    each mask selects — what a §4.3 presumptive profile instantiates its
    value range from.  One sort per bound mask, so callers should reserve it
    for the conjuncts that actually need restricted bounds.
    """
    array = np.asarray(values, dtype=np.float64).ravel()

    if masks is None:
        mask_matrix = np.zeros((0, array.shape[0]), dtype=bool)
    else:
        mask_matrix = np.asarray(masks, dtype=bool)
        if mask_matrix.ndim != 2 or mask_matrix.shape[1] != array.shape[0]:
            raise BucketingError("masks must form a (num_masks, num_tuples) matrix")
    num_masks = mask_matrix.shape[0]
    if bound_masks is not None:
        bound_matrix = np.asarray(bound_masks, dtype=bool)
        if bound_matrix.ndim != 2 or bound_matrix.shape[1] != array.shape[0]:
            raise BucketingError(
                "bound_masks must form a (num_bound_masks, num_tuples) matrix"
            )
        mask_matrix = np.vstack([mask_matrix, bound_matrix])
        bound_slots = tuple(range(num_masks, mask_matrix.shape[0]))
    else:
        bound_slots = ()
    if weights is not None:
        weight_matrix = np.asarray(weights, dtype=np.float64)
        if weight_matrix.ndim != 2 or weight_matrix.shape[1] != array.shape[0]:
            raise BucketingError(
                "weights must form a (num_weights, num_tuples) matrix"
            )
    else:
        weight_matrix = np.zeros((0, array.shape[0]), dtype=np.float64)

    plan = KernelPlan(
        axes=(AxisSpec(column=0, cuts=np.asarray(cuts), with_bounds=with_bounds),),
        segments=(
            ValueSegment(
                axis=0,
                mask_slots=tuple(range(num_masks)),
                weight_slots=tuple(range(weight_matrix.shape[0])),
                bound_mask_slots=bound_slots,
                with_bounds=with_bounds,
            ),
        ),
    )
    part = count_plan_chunk(plan, ((array,), mask_matrix, weight_matrix)).parts[0]
    assert isinstance(part, ChunkCounts)
    return part


@dataclass
class GridChunkCounts:
    """Partial 2-D grid counts of one chunk (the §1.4 rectangle inputs).

    The two-dimensional analogue of :class:`ChunkCounts`: per-cell tuple
    counts ``u_ij`` over an ``R × C`` bucket grid, per-mask conditional cell
    counts ``v_ij``, and the per-axis observed data bounds.  Partials merge
    by element-wise summing (min/max for the bounds), so the grid builds
    under exactly the same serial / streaming / multiprocessing executors as
    the one-dimensional profiles — with bit-identical results, since cell
    counts are integers and bounds are order-free reductions.

    Attributes
    ----------
    sizes:
        Per-cell tuple counts, shape ``(R, C)``.
    conditional:
        Per-mask conditional cell counts, shape ``(num_masks, R, C)``.
    row_lows / row_highs:
        Observed per-row-bucket bounds of the row attribute, shape ``(R,)``.
    column_lows / column_highs:
        Observed per-column-bucket bounds of the column attribute, ``(C,)``.
    num_tuples:
        Number of tuples counted in this chunk.
    """

    sizes: np.ndarray
    conditional: np.ndarray
    row_lows: np.ndarray
    row_highs: np.ndarray
    column_lows: np.ndarray
    column_highs: np.ndarray
    num_tuples: int = 0

    @staticmethod
    def zeros(rows: int, columns: int, num_masks: int = 0) -> "GridChunkCounts":
        """An identity element for :meth:`merge`."""
        return GridChunkCounts(
            sizes=np.zeros((rows, columns), dtype=np.int64),
            conditional=np.zeros((num_masks, rows, columns), dtype=np.int64),
            row_lows=np.full(rows, np.nan),
            row_highs=np.full(rows, np.nan),
            column_lows=np.full(columns, np.nan),
            column_highs=np.full(columns, np.nan),
            num_tuples=0,
        )

    def to_state(self) -> dict[str, np.ndarray]:
        """Flat array mapping capturing this partial exactly (``npz``-ready)."""
        return {
            "sizes": self.sizes,
            "conditional": self.conditional,
            "row_lows": self.row_lows,
            "row_highs": self.row_highs,
            "column_lows": self.column_lows,
            "column_highs": self.column_highs,
            "num_tuples": np.int64(self.num_tuples),
        }

    @classmethod
    def from_state(cls, state: Mapping[str, np.ndarray]) -> "GridChunkCounts":
        """Rebuild a partial from :meth:`to_state` arrays (fresh copies)."""
        try:
            return cls(
                sizes=np.array(state["sizes"], dtype=np.int64),
                conditional=np.array(state["conditional"], dtype=np.int64),
                row_lows=np.array(state["row_lows"], dtype=np.float64),
                row_highs=np.array(state["row_highs"], dtype=np.float64),
                column_lows=np.array(state["column_lows"], dtype=np.float64),
                column_highs=np.array(state["column_highs"], dtype=np.float64),
                num_tuples=int(state["num_tuples"]),
            )
        except KeyError as exc:
            raise BucketingError(
                f"grid-counts state is missing field {exc.args[0]!r}"
            ) from exc

    def merge(self, other: "GridChunkCounts") -> "GridChunkCounts":
        """Accumulate another partial into this one (in place; returns self)."""
        if (
            self.sizes.shape != other.sizes.shape
            or self.conditional.shape != other.conditional.shape
        ):
            raise BucketingError("cannot merge grid counts of different shapes")
        self.sizes += other.sizes
        self.conditional += other.conditional
        self.row_lows = np.fmin(self.row_lows, other.row_lows)
        self.row_highs = np.fmax(self.row_highs, other.row_highs)
        self.column_lows = np.fmin(self.column_lows, other.column_lows)
        self.column_highs = np.fmax(self.column_highs, other.column_highs)
        self.num_tuples += other.num_tuples
        return self


def count_grid_chunk(
    row_values: np.ndarray,
    column_values: np.ndarray,
    row_cuts: np.ndarray,
    column_cuts: np.ndarray,
    masks: np.ndarray | None = None,
) -> GridChunkCounts:
    """The 2-D counting kernel: bucket one chunk into an ``R × C`` cell grid.

    One ``searchsorted`` assignment pass per axis, then the cell index
    ``row * C + column`` flattens the grid so the per-cell tuple counts come
    from a single ``np.bincount`` — and every objective mask's conditional
    cell counts from the same mask-matrix kernel
    (:func:`masked_bucket_counts`) the 1-D paths use, treating the ``R·C``
    cells as one flat bucket axis.  Module-level and numpy-only in its
    arguments (picklable), so the pipeline's multiprocessing executor runs
    it in worker processes unchanged.
    """
    rows_array = np.asarray(row_values, dtype=np.float64).ravel()
    columns_array = np.asarray(column_values, dtype=np.float64).ravel()
    if rows_array.shape != columns_array.shape:
        raise BucketingError(
            "row and column value chunks must have the same length"
        )
    if masks is None:
        mask_matrix = np.zeros((0, rows_array.shape[0]), dtype=bool)
    else:
        mask_matrix = np.asarray(masks, dtype=bool)
        if mask_matrix.ndim != 2 or mask_matrix.shape[1] != rows_array.shape[0]:
            raise BucketingError("masks must form a (num_masks, num_tuples) matrix")
    plan = KernelPlan(
        axes=(
            AxisSpec(column=0, cuts=np.asarray(row_cuts)),
            AxisSpec(column=1, cuts=np.asarray(column_cuts)),
        ),
        segments=(
            GridSegment(
                row_axis=0,
                column_axis=1,
                mask_slots=tuple(range(mask_matrix.shape[0])),
            ),
        ),
    )
    part = count_plan_chunk(
        plan, ((rows_array, columns_array), mask_matrix, None)
    ).parts[0]
    assert isinstance(part, GridChunkCounts)
    return part


# -- fused scan-plan kernel -----------------------------------------------------


@dataclass(frozen=True)
class AxisSpec:
    """One bucketed axis of a :class:`KernelPlan`.

    ``column`` names the slot of the chunk payload's column list holding the
    axis values; however many segments reference the axis, its values are
    assigned to buckets (and its data bounds sorted) exactly once per chunk.
    """

    column: int
    cuts: np.ndarray
    with_bounds: bool = True


@dataclass(frozen=True)
class ValueSegment:
    """A 1-D counting request of a :class:`KernelPlan`.

    ``mask_slots`` / ``weight_slots`` / ``bound_mask_slots`` index rows of
    the payload's stacked mask and weight matrices; the segment produces one
    :class:`ChunkCounts` with one conditional row per mask slot, one bucket
    sum per weight slot, and restricted data bounds per bound-mask slot.
    """

    axis: int
    mask_slots: tuple[int, ...] = ()
    weight_slots: tuple[int, ...] = ()
    bound_mask_slots: tuple[int, ...] = ()
    with_bounds: bool = True


@dataclass(frozen=True)
class GridSegment:
    """A 2-D cell-grid counting request of a :class:`KernelPlan` (§1.4)."""

    row_axis: int
    column_axis: int
    mask_slots: tuple[int, ...] = ()


@dataclass(frozen=True)
class KernelPlan:
    """Everything the fused chunk kernel needs to count one chunk.

    The plan is chunk-independent (axis cuts plus segment wiring), so a
    process-pool executor ships it to each worker **once** and then streams
    only the per-chunk payloads.  A payload is the triple
    ``(columns, masks, weights)``: the parsed column arrays the axes index
    into, one stacked Boolean matrix holding every distinct condition row of
    the whole plan, and one stacked float matrix of the §5 target weights.
    """

    axes: tuple[AxisSpec, ...]
    segments: tuple[ValueSegment | GridSegment, ...]

    def zeros(self) -> "PlanChunkCounts":
        """An identity element for :meth:`PlanChunkCounts.merge`."""
        cells = [Bucketing(axis.cuts).num_buckets for axis in self.axes]
        parts: list[ChunkCounts | GridChunkCounts] = []
        for segment in self.segments:
            if isinstance(segment, GridSegment):
                parts.append(
                    GridChunkCounts.zeros(
                        cells[segment.row_axis],
                        cells[segment.column_axis],
                        num_masks=len(segment.mask_slots),
                    )
                )
            else:
                parts.append(
                    ChunkCounts.zeros(
                        cells[segment.axis],
                        num_masks=len(segment.mask_slots),
                        num_weights=len(segment.weight_slots),
                        num_bound_masks=len(segment.bound_mask_slots),
                    )
                )
        return PlanChunkCounts(parts)


def plan_state_checksum(state: Mapping[str, np.ndarray]) -> str:
    """Content digest of a :meth:`PlanChunkCounts.to_state` mapping.

    Covers exactly the plan-counts namespace — ``num_parts`` plus every
    ``part{i}.*`` entry — hashing each array's name, dtype, shape, and raw
    bytes in sorted key order, so any caller (shard workers, the profile
    store, checkpoint files) computes the same digest for the same counts.
    Keys outside the namespace (``meta.*`` headers, bucketing cuts, the
    ``checksum`` entry itself) are deliberately excluded: they are validated
    by their own mechanisms and may be added after the partial is sealed.
    """
    digest = hashlib.sha256()
    for key in sorted(state):
        if key != "num_parts" and not key.startswith("part"):
            continue
        array = np.ascontiguousarray(np.asarray(state[key]))
        digest.update(key.encode("utf-8"))
        digest.update(str(array.dtype).encode("utf-8"))
        digest.update(repr(array.shape).encode("utf-8"))
        digest.update(array.tobytes())
    return digest.hexdigest()


@dataclass
class PlanChunkCounts:
    """Partial counts of one chunk for every segment of a :class:`KernelPlan`.

    This is the unit a plan-executing worker returns: one
    :class:`ChunkCounts` or :class:`GridChunkCounts` per plan segment,
    merged part-wise in chunk order exactly like the single-request
    partials.
    """

    parts: list[ChunkCounts | GridChunkCounts] = field(default_factory=list)

    def merge(self, other: "PlanChunkCounts") -> "PlanChunkCounts":
        """Accumulate another plan partial into this one (in place)."""
        if len(self.parts) != len(other.parts):
            raise BucketingError("cannot merge plan counts of different shapes")
        for mine, theirs in zip(self.parts, other.parts):
            mine.merge(theirs)
        return self

    def to_state(self) -> dict[str, np.ndarray]:
        """One flat array mapping for the whole plan (``np.savez``-ready).

        Part ``i``'s fields are prefixed ``part{i}.`` and tagged with a
        ``part{i}.kind`` marker (``"value"`` or ``"grid"``), so the mapping
        round-trips through an ``.npz`` archive with nothing but arrays —
        the on-disk payload format of :class:`~repro.store.ProfileStore`.

        The mapping also carries a ``checksum`` digest over every count
        array (see :func:`plan_state_checksum`); :meth:`from_state` verifies
        it when present, so a partial that crossed a process boundary, a
        disk, or a network cannot be folded after a bit flip or truncation.
        """
        state: dict[str, np.ndarray] = {"num_parts": np.int64(len(self.parts))}
        for index, part in enumerate(self.parts):
            kind = "grid" if isinstance(part, GridChunkCounts) else "value"
            state[f"part{index}.kind"] = np.asarray(kind)
            for field_name, array in part.to_state().items():
                state[f"part{index}.{field_name}"] = array
        state["checksum"] = np.asarray(plan_state_checksum(state))
        return state

    @classmethod
    def from_state(cls, state: Mapping[str, np.ndarray]) -> "PlanChunkCounts":
        """Rebuild every part from :meth:`to_state` arrays (fresh copies).

        A ``checksum`` entry, when present, is verified against the count
        arrays before anything is deserialized; payloads written before the
        checksum existed simply skip the check.
        """
        if "checksum" in state:
            expected = str(np.asarray(state["checksum"]).item())
            if plan_state_checksum(state) != expected:
                raise BucketingError(
                    "plan-counts state failed its checksum; the partial was "
                    "corrupted in transit or on disk"
                )
        if "num_parts" not in state:
            raise BucketingError("plan-counts state is missing field 'num_parts'")
        num_parts = int(state["num_parts"])
        parts: list[ChunkCounts | GridChunkCounts] = []
        for index in range(num_parts):
            prefix = f"part{index}."
            kind_key = prefix + "kind"
            if kind_key not in state:
                raise BucketingError(
                    f"plan-counts state is missing field {kind_key!r}"
                )
            kind = str(np.asarray(state[kind_key]).item())
            fields = {
                key[len(prefix):]: value
                for key, value in state.items()
                if key.startswith(prefix)
            }
            if kind == "grid":
                parts.append(GridChunkCounts.from_state(fields))
            elif kind == "value":
                parts.append(ChunkCounts.from_state(fields))
            else:
                raise BucketingError(
                    f"plan-counts state part {index} has unknown kind {kind!r}"
                )
        return cls(parts)


def _fused_window_counts(
    entries: Sequence[tuple[np.ndarray, np.ndarray | None, int]],
    chunk_elements: int | None = None,
) -> list[np.ndarray]:
    """Offset-encoded flat bincounts over heterogeneous index windows.

    Each entry is ``(indices, mask, cells)``; the result list holds
    ``np.bincount(indices[mask], minlength=cells)`` per entry (mask ``None``
    counts every tuple).  Entries are batched so each batch's temporaries —
    the selected indices *and* the combined bincount window of
    ``sum(cells)`` — respect the mask-matrix element budget, every batch
    offsets each entry into its own ``cells``-sized window, and a
    **single** flat ``np.bincount`` answers the whole batch — the
    cross-attribute generalization of :func:`masked_bucket_counts`, with
    the same ``int32`` narrowing when the combined window fits.
    """
    results: list[np.ndarray] = [None] * len(entries)  # type: ignore[list-item]
    if not entries:
        return results
    budget = _mask_matrix_chunk_elements(chunk_elements)
    batch: list[tuple[int, np.ndarray, int]] = []
    batch_elements = 0

    def flush() -> None:
        nonlocal batch, batch_elements
        if not batch:
            return
        if len(batch) == 1:
            position, selected, cells = batch[0]
            results[position] = np.bincount(selected, minlength=cells).astype(
                np.int64
            )
        else:
            total = sum(cells for _, _, cells in batch)
            dtype = _offset_dtype(total)
            offset = 0
            parts = []
            for _, selected, cells in batch:
                parts.append(selected.astype(dtype, copy=False) + dtype(offset))
                offset += cells
            flat_counts = np.bincount(np.concatenate(parts), minlength=total)
            offset = 0
            for position, _, cells in batch:
                results[position] = flat_counts[offset : offset + cells].astype(
                    np.int64, copy=False
                )
                offset += cells
        batch = []
        batch_elements = 0

    for position, (indices, mask, cells) in enumerate(entries):
        selected = indices if mask is None else indices[mask]
        if batch and batch_elements + selected.size + cells > budget:
            flush()
        batch.append((position, selected, cells))
        batch_elements += selected.size + cells
    flush()
    return results


def _fused_weighted_sums(
    entries: Sequence[tuple[np.ndarray, np.ndarray, int]],
    chunk_elements: int | None = None,
) -> list[np.ndarray]:
    """Offset-encoded flat *weighted* bincounts (the §5 bucket sums).

    Each entry is ``(indices, weights, cells)``.  Windows never interleave
    tuples of different entries, so the per-bucket float accumulation order
    of every entry is exactly that of its standalone weighted ``bincount`` —
    which is what keeps fused §5 sums bit-identical to the single-request
    kernel.
    """
    results: list[np.ndarray] = [None] * len(entries)  # type: ignore[list-item]
    if not entries:
        return results
    budget = _mask_matrix_chunk_elements(chunk_elements)
    batch: list[tuple[int, np.ndarray, np.ndarray, int]] = []
    batch_elements = 0

    def flush() -> None:
        nonlocal batch, batch_elements
        if not batch:
            return
        if len(batch) == 1:
            position, indices, weights, cells = batch[0]
            results[position] = np.bincount(
                indices, weights=weights, minlength=cells
            ).astype(np.float64)
        else:
            total = sum(cells for _, _, _, cells in batch)
            dtype = _offset_dtype(total)
            offset = 0
            flat_parts = []
            weight_parts = []
            for _, indices, weights, cells in batch:
                flat_parts.append(indices.astype(dtype, copy=False) + dtype(offset))
                weight_parts.append(weights)
                offset += cells
            sums = np.bincount(
                np.concatenate(flat_parts),
                weights=np.concatenate(weight_parts),
                minlength=total,
            )
            offset = 0
            for position, _, _, cells in batch:
                results[position] = sums[offset : offset + cells].astype(np.float64)
                offset += cells
        batch = []
        batch_elements = 0

    for position, (indices, weights, cells) in enumerate(entries):
        if batch and batch_elements + indices.size + cells > budget:
            flush()
        batch.append((position, indices, weights, cells))
        batch_elements += indices.size + cells
    flush()
    return results


def count_plan_chunk(
    plan: KernelPlan,
    payload: tuple[
        Sequence[np.ndarray], np.ndarray | None, np.ndarray | None
    ],
    tier: str = "numpy",
) -> PlanChunkCounts:
    """The fused counting kernel: one chunk answers every plan segment.

    Per chunk, each axis is assigned to buckets exactly **once** (and its
    data bounds sorted once) however many segments share it; every
    ``(segment, condition)`` cell — 1-D buckets and flattened 2-D grids
    alike — is answered through offset-encoded flat ``bincount``\\ s; and
    all §5 bucket sums go through one flat weighted ``bincount``.  The
    single-request kernels :func:`count_value_chunk` and
    :func:`count_grid_chunk` are this function applied to a one-segment
    plan, so fused and per-request scans are bit-identical by construction.

    ``tier`` selects the already-resolved kernel tier: ``"numpy"`` runs the
    vectorized path above; ``"compiled"`` routes assignment, bounds, and
    every (conditional) count through the fused Numba loops of
    :mod:`repro.kernels.compiled` — no offset-index or mask-gather
    temporaries at all — and is bit-identical by the kernel parity oracles.
    """
    if tier not in ("numpy", "compiled"):
        raise KernelError(
            f"count_plan_chunk expects a resolved kernel tier "
            f"('numpy' or 'compiled'), got {tier!r}"
        )
    kernels = load_compiled() if tier == "compiled" else None
    columns, masks, weights = payload
    if not plan.axes:
        raise BucketingError("a kernel plan needs at least one axis")

    axis_values: list[np.ndarray] = []
    axis_indices: list[np.ndarray] = []
    axis_cells: list[int] = []
    axis_bounds: list[tuple[np.ndarray, np.ndarray] | None] = []
    axis_bucketings: list[Bucketing] = []
    for axis in plan.axes:
        values = np.asarray(columns[axis.column], dtype=np.float64).ravel()
        bucketing = Bucketing(axis.cuts)
        axis_values.append(values)
        axis_bucketings.append(bucketing)
        if kernels is not None:
            indices = kernels.assign_buckets(values, bucketing.cuts)
            bounds = (
                kernels.bucket_value_bounds(values, indices, bucketing.num_buckets)
                if axis.with_bounds
                else None
            )
        else:
            indices = bucketing.assign(values)
            bounds = bucketing.data_bounds(values) if axis.with_bounds else None
        axis_indices.append(indices)
        axis_cells.append(bucketing.num_buckets)
        axis_bounds.append(bounds)
    num_tuples = int(axis_values[0].shape[0])

    segment_indices: list[np.ndarray] = []
    segment_cells: list[int] = []
    for segment in plan.segments:
        if isinstance(segment, GridSegment):
            if not (
                plan.axes[segment.row_axis].with_bounds
                and plan.axes[segment.column_axis].with_bounds
            ):
                raise BucketingError(
                    "grid segments need both axes built with with_bounds=True "
                    "(their per-axis data bounds instantiate the rectangle)"
                )
            columns_cells = axis_cells[segment.column_axis]
            segment_indices.append(
                axis_indices[segment.row_axis] * columns_cells
                + axis_indices[segment.column_axis]
            )
            segment_cells.append(axis_cells[segment.row_axis] * columns_cells)
        else:
            segment_indices.append(axis_indices[segment.axis])
            segment_cells.append(axis_cells[segment.axis])

    if kernels is not None:
        size_rows = [
            kernels.bucket_counts(indices, cells)
            for indices, cells in zip(segment_indices, segment_cells)
        ]
        conditional_rows = []
        for position, segment in enumerate(plan.segments):
            if not segment.mask_slots:
                continue
            slot_rows = kernels.masked_counts_slots(
                segment_indices[position],
                masks,
                np.asarray(segment.mask_slots, dtype=np.int64),
                segment_cells[position],
            )
            conditional_rows.extend(slot_rows)
        sum_rows = []
        for position, segment in enumerate(plan.segments):
            if isinstance(segment, GridSegment):
                continue
            for slot in segment.weight_slots:
                sum_rows.append(
                    kernels.weighted_bucket_sums(
                        segment_indices[position],
                        weights[slot],
                        segment_cells[position],
                    )
                )
    else:
        size_rows = _fused_window_counts(
            [
                (indices, None, cells)
                for indices, cells in zip(segment_indices, segment_cells)
            ]
        )
        conditional_entries: list[tuple[np.ndarray, np.ndarray | None, int]] = []
        for position, segment in enumerate(plan.segments):
            for slot in segment.mask_slots:
                conditional_entries.append(
                    (segment_indices[position], masks[slot], segment_cells[position])
                )
        conditional_rows = _fused_window_counts(conditional_entries)

        weight_entries: list[tuple[np.ndarray, np.ndarray, int]] = []
        for position, segment in enumerate(plan.segments):
            if isinstance(segment, GridSegment):
                continue
            for slot in segment.weight_slots:
                weight_entries.append(
                    (segment_indices[position], weights[slot], segment_cells[position])
                )
        sum_rows = _fused_weighted_sums(weight_entries)

    parts: list[ChunkCounts | GridChunkCounts] = []
    conditional_cursor = 0
    sum_cursor = 0
    for position, segment in enumerate(plan.segments):
        cells = segment_cells[position]
        taken = len(segment.mask_slots)
        conditional = np.empty((taken, cells), dtype=np.int64)
        for row in range(taken):
            conditional[row] = conditional_rows[conditional_cursor + row]
        conditional_cursor += taken
        if isinstance(segment, GridSegment):
            rows_cells = axis_cells[segment.row_axis]
            columns_cells = axis_cells[segment.column_axis]
            row_lows, row_highs = axis_bounds[segment.row_axis]
            column_lows, column_highs = axis_bounds[segment.column_axis]
            parts.append(
                GridChunkCounts(
                    sizes=size_rows[position].reshape(rows_cells, columns_cells),
                    conditional=conditional.reshape(-1, rows_cells, columns_cells),
                    row_lows=row_lows,
                    row_highs=row_highs,
                    column_lows=column_lows,
                    column_highs=column_highs,
                    num_tuples=num_tuples,
                )
            )
            continue
        sums = np.empty((len(segment.weight_slots), cells), dtype=np.float64)
        for row in range(len(segment.weight_slots)):
            sums[row] = sum_rows[sum_cursor + row]
        sum_cursor += len(segment.weight_slots)
        if segment.with_bounds and axis_bounds[segment.axis] is not None:
            lows, highs = axis_bounds[segment.axis]
        else:
            lows = np.full(cells, np.nan)
            highs = np.full(cells, np.nan)
        mask_lows = np.full((len(segment.bound_mask_slots), cells), np.nan)
        mask_highs = np.full((len(segment.bound_mask_slots), cells), np.nan)
        for row, slot in enumerate(segment.bound_mask_slots):
            if kernels is not None:
                mask_lows[row], mask_highs[row] = kernels.masked_bucket_value_bounds(
                    axis_values[segment.axis],
                    segment_indices[position],
                    masks[slot],
                    cells,
                )
            else:
                mask_lows[row], mask_highs[row] = axis_bucketings[
                    segment.axis
                ].data_bounds(axis_values[segment.axis][masks[slot]])
        parts.append(
            ChunkCounts(
                sizes=size_rows[position],
                conditional=conditional,
                sums=sums,
                lows=lows,
                highs=highs,
                num_tuples=num_tuples,
                mask_lows=mask_lows,
                mask_highs=mask_highs,
            )
        )
    return PlanChunkCounts(parts)


def count_relation_buckets(
    relation: Relation,
    attribute: str,
    bucketing: Bucketing,
    objectives: Mapping[str, Condition] | None = None,
) -> BucketCounts:
    """Count ``relation``'s tuples per bucket of ``attribute``.

    Parameters
    ----------
    relation:
        The relation to scan.
    attribute:
        Numeric attribute whose values choose the bucket.
    bucketing:
        Bucket boundaries (typically from a bucketizer).
    objectives:
        Optional mapping from a label to an objective condition; for every
        entry the per-bucket conditional counts ``v_i`` are produced.
    """
    return count_many(relation, attribute, bucketing, objectives or {})


def count_many(
    relation: Relation,
    attribute: str,
    bucketing: Bucketing,
    objectives: Mapping[str, Condition],
) -> BucketCounts:
    """Count ``attribute``'s buckets once and every objective from that pass.

    Functionally identical to :func:`count_relation_buckets` but explicit
    about its batched contract: the relation column is assigned to buckets
    exactly once, the data bounds are computed from one sort, and the
    conditional counts of all ``objectives`` come from the mask-matrix
    kernel, so ``k`` conditions cost one scan plus ``k`` cheap bincounts
    instead of ``k`` full scans.
    """
    values = np.asarray(relation.numeric_column(attribute), dtype=np.float64)
    indices = bucketing.assign(values)
    sizes = np.bincount(indices, minlength=bucketing.num_buckets).astype(np.int64)

    conditional: dict[str, np.ndarray] = {}
    labels = list(objectives)
    if labels:
        masks = np.empty((len(labels), values.shape[0]), dtype=bool)
        for row, label in enumerate(labels):
            mask = np.asarray(objectives[label].mask(relation), dtype=bool)
            if mask.shape != values.shape:
                raise BucketingError(
                    "condition mask length does not match relation size"
                )
            masks[row] = mask
        counted = masked_bucket_counts(indices, masks, bucketing.num_buckets)
        for row, label in enumerate(labels):
            conditional[label] = counted[row]

    low, high = bucketing.data_bounds(values)
    return BucketCounts(
        attribute=attribute,
        bucketing=bucketing,
        sizes=sizes,
        conditional=conditional,
        data_low=low,
        data_high=high,
    )


def count_conditions(
    relation: Relation,
    attribute: str,
    bucketing: Bucketing,
    conditions: Sequence[Condition],
) -> list[np.ndarray]:
    """Per-bucket conditional counts for several objective conditions.

    Convenience wrapper used by the all-combinations catalog miner: the
    bucket assignment of the numeric attribute is computed once and every
    condition is counted from it with the mask-matrix kernel.
    """
    values = relation.numeric_column(attribute)
    indices = bucketing.assign(values)
    if not conditions:
        return []
    masks = np.empty((len(conditions), values.shape[0]), dtype=bool)
    for row, condition in enumerate(conditions):
        mask = np.asarray(condition.mask(relation), dtype=bool)
        if mask.shape != values.shape:
            raise BucketingError("condition mask length does not match relation size")
        masks[row] = mask
    counted = masked_bucket_counts(indices, masks, bucketing.num_buckets)
    return [counted[row] for row in range(len(conditions))]
