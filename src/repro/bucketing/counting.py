"""Relation-level bucket counting.

The experiments of §6.1 bucket a relation on each numeric attribute and, in
the same scan, count for every Boolean attribute how many tuples of each
bucket satisfy it (these are the ``u_i`` / ``v_i`` inputs of the rule
optimizers).  This module provides that combined counting step on top of the
value-level :class:`repro.bucketing.Bucketing` primitives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.bucketing.base import Bucketing
from repro.exceptions import BucketingError
from repro.relation.conditions import Condition
from repro.relation.relation import Relation

__all__ = ["BucketCounts", "count_relation_buckets", "count_conditions"]


@dataclass(frozen=True)
class BucketCounts:
    """Counts of a relation over one numeric attribute's bucketing.

    Attributes
    ----------
    attribute:
        The numeric attribute that was bucketed.
    bucketing:
        The bucketing used for assignment.
    sizes:
        Per-bucket tuple counts ``u_i``.
    conditional:
        For every counted objective (keyed by label), the per-bucket counts
        ``v_i`` of tuples that also satisfy the objective.
    data_low / data_high:
        Observed minimum / maximum attribute value per bucket (``x_i`` and
        ``y_i``), ``nan`` for empty buckets.
    """

    attribute: str
    bucketing: Bucketing
    sizes: np.ndarray
    conditional: Mapping[str, np.ndarray]
    data_low: np.ndarray
    data_high: np.ndarray

    @property
    def num_buckets(self) -> int:
        """Number of buckets counted."""
        return self.bucketing.num_buckets

    @property
    def total(self) -> int:
        """Total number of tuples counted."""
        return int(self.sizes.sum())

    def evenness(self) -> float:
        """Max bucket size divided by the ideal ``N/M`` size.

        A value of 1.0 means perfectly equi-depth buckets; the sampling
        bucketizer targets values close to 1 with high probability.
        """
        if self.total == 0 or self.num_buckets == 0:
            return 0.0
        ideal = self.total / self.num_buckets
        return float(self.sizes.max() / ideal)


def count_relation_buckets(
    relation: Relation,
    attribute: str,
    bucketing: Bucketing,
    objectives: Mapping[str, Condition] | None = None,
) -> BucketCounts:
    """Count ``relation``'s tuples per bucket of ``attribute``.

    Parameters
    ----------
    relation:
        The relation to scan.
    attribute:
        Numeric attribute whose values choose the bucket.
    bucketing:
        Bucket boundaries (typically from a bucketizer).
    objectives:
        Optional mapping from a label to an objective condition; for every
        entry the per-bucket conditional counts ``v_i`` are produced.
    """
    values = relation.numeric_column(attribute)
    sizes = bucketing.counts(values)
    conditional: dict[str, np.ndarray] = {}
    for label, condition in (objectives or {}).items():
        mask = condition.mask(relation)
        conditional[label] = bucketing.conditional_counts(values, mask)
    low, high = bucketing.data_bounds(values)
    return BucketCounts(
        attribute=attribute,
        bucketing=bucketing,
        sizes=sizes,
        conditional=conditional,
        data_low=low,
        data_high=high,
    )


def count_conditions(
    relation: Relation,
    attribute: str,
    bucketing: Bucketing,
    conditions: Sequence[Condition],
) -> list[np.ndarray]:
    """Per-bucket conditional counts for several objective conditions.

    Convenience wrapper used by the all-combinations catalog miner: the
    bucket assignment of the numeric attribute is computed once and reused
    for every objective condition.
    """
    values = relation.numeric_column(attribute)
    indices = bucketing.assign(values)
    results = []
    for condition in conditions:
        mask = np.asarray(condition.mask(relation), dtype=bool)
        if mask.shape != values.shape:
            raise BucketingError("condition mask length does not match relation size")
        counts = np.bincount(indices[mask], minlength=bucketing.num_buckets)
        results.append(counts.astype(np.int64))
    return results
