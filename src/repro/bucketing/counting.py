"""Relation-level bucket counting.

The experiments of §6.1 bucket a relation on each numeric attribute and, in
the same scan, count for every Boolean attribute how many tuples of each
bucket satisfy it (these are the ``u_i`` / ``v_i`` inputs of the rule
optimizers).  This module provides that combined counting step on top of the
value-level :class:`repro.bucketing.Bucketing` primitives.

Batched counting
----------------
The catalog workload of §1.3 evaluates *many* objective conditions against
the same numeric attribute.  Re-scanning the relation per condition (one
``searchsorted`` assignment pass each) wastes almost all of its time
repeating identical work, so the batched entry points here perform the
bucket assignment exactly once and answer every condition from it:

* :func:`count_many` — one assignment pass, one sort for the data bounds,
  then one ``np.bincount`` per condition over the pre-assigned indices;
* :func:`masked_bucket_counts` — the underlying mask-matrix kernel: stacks
  the condition masks into a ``(num_conditions, num_tuples)`` Boolean
  matrix, offsets each row's bucket indices into its own ``num_buckets``
  window, and counts all conditions with a single flat ``np.bincount``
  (chunked so the temporary index matrix stays bounded).

Parity guarantee: the batched counts are produced by the same
``searchsorted`` + ``bincount`` primitives as the per-condition path, so
``count_many`` returns arrays equal to calling :func:`count_relation_buckets`
once per condition — the tests in ``tests/bucketing/test_counting.py``
assert exact equality.

Chunk kernel
------------
:func:`count_value_chunk` packages the same primitives as a picklable,
chunk-at-a-time kernel returning :class:`ChunkCounts` partials that merge by
summing.  It is the single counting implementation behind the
``repro.pipeline`` executors, the streaming counter, and the Algorithm 3.2
parallel counter.

Grid kernel
-----------
:func:`count_grid_chunk` is the two-dimensional analogue for the §1.4
rectangle extension: both attributes are assigned in one pass each, the cell
index ``row * C + column`` flattens the ``R × C`` grid, and a single
``bincount`` (plus the mask-matrix kernel for objectives) produces the
per-cell ``u_ij`` / ``v_ij`` counts as :class:`GridChunkCounts` partials —
merged by the same executors that drive the 1-D pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.bucketing.base import Bucketing
from repro.exceptions import BucketingError
from repro.relation.conditions import Condition
from repro.relation.relation import Relation

__all__ = [
    "BucketCounts",
    "ChunkCounts",
    "GridChunkCounts",
    "count_relation_buckets",
    "count_conditions",
    "count_many",
    "count_value_chunk",
    "count_grid_chunk",
    "masked_bucket_counts",
]

# Upper bound on the number of elements of the temporary offset-index matrix
# built per chunk by the mask-matrix kernel (~64 MB of int64 at 8e6 entries).
_MASK_MATRIX_CHUNK_ELEMENTS = 8_000_000


@dataclass(frozen=True)
class BucketCounts:
    """Counts of a relation over one numeric attribute's bucketing.

    Attributes
    ----------
    attribute:
        The numeric attribute that was bucketed.
    bucketing:
        The bucketing used for assignment.
    sizes:
        Per-bucket tuple counts ``u_i``.
    conditional:
        For every counted objective (keyed by label), the per-bucket counts
        ``v_i`` of tuples that also satisfy the objective.
    data_low / data_high:
        Observed minimum / maximum attribute value per bucket (``x_i`` and
        ``y_i``), ``nan`` for empty buckets.
    """

    attribute: str
    bucketing: Bucketing
    sizes: np.ndarray
    conditional: Mapping[str, np.ndarray]
    data_low: np.ndarray
    data_high: np.ndarray

    @property
    def num_buckets(self) -> int:
        """Number of buckets counted."""
        return self.bucketing.num_buckets

    @property
    def total(self) -> int:
        """Total number of tuples counted."""
        return int(self.sizes.sum())

    def evenness(self) -> float:
        """Max bucket size divided by the ideal ``N/M`` size.

        A value of 1.0 means perfectly equi-depth buckets; the sampling
        bucketizer targets values close to 1 with high probability.
        """
        if self.total == 0 or self.num_buckets == 0:
            return 0.0
        ideal = self.total / self.num_buckets
        return float(self.sizes.max() / ideal)


def masked_bucket_counts(
    indices: np.ndarray,
    masks: np.ndarray,
    num_buckets: int,
) -> np.ndarray:
    """Per-bucket counts for several Boolean masks over pre-assigned indices.

    Parameters
    ----------
    indices:
        Bucket index of every tuple (one assignment pass, shared by all
        masks).
    masks:
        Boolean matrix of shape ``(num_masks, num_tuples)``.
    num_buckets:
        Number of buckets ``M``.

    Returns
    -------
    np.ndarray
        Int64 matrix of shape ``(num_masks, num_buckets)`` where row ``c``
        equals ``np.bincount(indices[masks[c]], minlength=num_buckets)``.

    Each chunk of rows is counted with a *single* ``np.bincount`` by
    offsetting row ``c``'s indices into the window
    ``[c * num_buckets, (c + 1) * num_buckets)``.
    """
    masks = np.asarray(masks, dtype=bool)
    if masks.ndim != 2:
        raise BucketingError("masks must form a (num_masks, num_tuples) matrix")
    num_masks, num_tuples = masks.shape
    if indices.shape != (num_tuples,):
        raise BucketingError(
            f"indices shape {indices.shape} does not match masks row length {num_tuples}"
        )
    counts = np.empty((num_masks, num_buckets), dtype=np.int64)
    if num_masks == 0:
        return counts
    chunk_rows = max(1, _MASK_MATRIX_CHUNK_ELEMENTS // max(1, num_tuples))
    for begin in range(0, num_masks, chunk_rows):
        stop = min(begin + chunk_rows, num_masks)
        rows = stop - begin
        offsets = (np.arange(rows, dtype=np.int64) * num_buckets)[:, None]
        flat = (indices[None, :] + offsets)[masks[begin:stop]]
        counts[begin:stop] = np.bincount(
            flat, minlength=rows * num_buckets
        ).reshape(rows, num_buckets)
    return counts


@dataclass
class ChunkCounts:
    """Partial bucket counts of one value chunk (or one PE's partition).

    This is the unit of work of the shared counting kernel
    :func:`count_value_chunk`: everything Algorithm 3.1 step 4 needs from a
    scan — per-bucket tuple counts, per-mask conditional counts, per-weight
    bucket sums, and observed data bounds — for one slice of the data.
    Partials merge by element-wise summing (and min/max for the bounds),
    which is exactly the no-communication merge of Algorithm 3.2; the
    pipeline executors (serial, streaming, multiprocessing) differ only in
    *where* the partials are produced, never in what they contain.

    Attributes
    ----------
    sizes:
        Per-bucket tuple counts ``u_i`` of the chunk, shape ``(M,)``.
    conditional:
        Per-mask conditional counts, shape ``(num_masks, M)``.
    sums:
        Per-weight-row bucket sums (the §5 average numerators), shape
        ``(num_weights, M)``.
    lows / highs:
        Observed per-bucket minimum / maximum values, ``nan`` where the
        chunk put nothing in a bucket.
    mask_lows / mask_highs:
        Observed per-bucket bounds of the values selected by each *bound
        mask* (shape ``(num_bound_masks, M)``) — the restricted data bounds
        a §4.3 presumptive profile reports its value range from.
    num_tuples:
        Number of values counted in this chunk.
    """

    sizes: np.ndarray
    conditional: np.ndarray
    sums: np.ndarray
    lows: np.ndarray
    highs: np.ndarray
    num_tuples: int = 0
    mask_lows: np.ndarray | None = None
    mask_highs: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.mask_lows is None:
            self.mask_lows = np.zeros((0, self.sizes.shape[0]))
        if self.mask_highs is None:
            self.mask_highs = np.zeros((0, self.sizes.shape[0]))

    @staticmethod
    def zeros(
        num_buckets: int,
        num_masks: int = 0,
        num_weights: int = 0,
        num_bound_masks: int = 0,
    ) -> "ChunkCounts":
        """An identity element for :meth:`merge`."""
        return ChunkCounts(
            sizes=np.zeros(num_buckets, dtype=np.int64),
            conditional=np.zeros((num_masks, num_buckets), dtype=np.int64),
            sums=np.zeros((num_weights, num_buckets), dtype=np.float64),
            lows=np.full(num_buckets, np.nan),
            highs=np.full(num_buckets, np.nan),
            num_tuples=0,
            mask_lows=np.full((num_bound_masks, num_buckets), np.nan),
            mask_highs=np.full((num_bound_masks, num_buckets), np.nan),
        )

    def merge(self, other: "ChunkCounts") -> "ChunkCounts":
        """Accumulate another partial into this one (in place; returns self).

        Counts add exactly (int64); bucket sums add in merge order, so any
        executor that merges partials in chunk order reproduces the serial
        float result bit for bit; bounds combine with nan-aware min/max.
        """
        if (
            self.sizes.shape != other.sizes.shape
            or self.conditional.shape != other.conditional.shape
            or self.sums.shape != other.sums.shape
            or self.mask_lows.shape != other.mask_lows.shape
        ):
            raise BucketingError("cannot merge chunk counts of different shapes")
        self.sizes += other.sizes
        self.conditional += other.conditional
        self.sums += other.sums
        self.lows = np.fmin(self.lows, other.lows)
        self.highs = np.fmax(self.highs, other.highs)
        self.mask_lows = np.fmin(self.mask_lows, other.mask_lows)
        self.mask_highs = np.fmax(self.mask_highs, other.mask_highs)
        self.num_tuples += other.num_tuples
        return self


def count_value_chunk(
    values: np.ndarray,
    cuts: np.ndarray,
    masks: np.ndarray | None = None,
    weights: np.ndarray | None = None,
    with_bounds: bool = True,
    bound_masks: np.ndarray | None = None,
) -> ChunkCounts:
    """The shared counting kernel: bucket one value chunk against ``cuts``.

    One ``searchsorted`` assignment pass over the chunk feeds every output:
    ``sizes`` from a plain ``bincount``, all ``masks`` rows from the
    mask-matrix kernel :func:`masked_bucket_counts`, all ``weights`` rows
    from weighted bincounts, and the data bounds from one sort.  Module
    level (and numpy-only in its arguments) so a ``ProcessPoolExecutor``
    can run it in worker processes unchanged — every counting path in the
    repository (in-memory, streaming, parallel, pipeline executors) reduces
    to this function plus :meth:`ChunkCounts.merge`.

    ``with_bounds=False`` skips the sort behind the per-bucket data bounds
    (``lows``/``highs`` stay ``nan``) for callers that only need counts —
    the bounds sort would otherwise dominate a bare counting scan.

    ``bound_masks`` (a ``(num_bound_masks, num_tuples)`` Boolean matrix)
    additionally produces per-bucket data bounds *restricted* to the tuples
    each mask selects — what a §4.3 presumptive profile instantiates its
    value range from.  One sort per bound mask, so callers should reserve it
    for the conjuncts that actually need restricted bounds.
    """
    array = np.asarray(values, dtype=np.float64).ravel()
    bucketing = Bucketing(cuts)
    num_buckets = bucketing.num_buckets
    indices = bucketing.assign(array)
    sizes = np.bincount(indices, minlength=num_buckets).astype(np.int64)

    if masks is None:
        conditional = np.zeros((0, num_buckets), dtype=np.int64)
    else:
        conditional = masked_bucket_counts(indices, masks, num_buckets)

    if weights is None:
        sums = np.zeros((0, num_buckets), dtype=np.float64)
    else:
        weight_matrix = np.asarray(weights, dtype=np.float64)
        if weight_matrix.ndim != 2 or weight_matrix.shape[1] != array.shape[0]:
            raise BucketingError(
                "weights must form a (num_weights, num_tuples) matrix"
            )
        sums = np.empty((weight_matrix.shape[0], num_buckets), dtype=np.float64)
        for row in range(weight_matrix.shape[0]):
            sums[row] = np.bincount(
                indices, weights=weight_matrix[row], minlength=num_buckets
            )

    if with_bounds:
        lows, highs = bucketing.data_bounds(array)
    else:
        lows = np.full(num_buckets, np.nan)
        highs = np.full(num_buckets, np.nan)

    if bound_masks is None:
        mask_lows = np.full((0, num_buckets), np.nan)
        mask_highs = np.full((0, num_buckets), np.nan)
    else:
        bound_matrix = np.asarray(bound_masks, dtype=bool)
        if bound_matrix.ndim != 2 or bound_matrix.shape[1] != array.shape[0]:
            raise BucketingError(
                "bound_masks must form a (num_bound_masks, num_tuples) matrix"
            )
        mask_lows = np.full((bound_matrix.shape[0], num_buckets), np.nan)
        mask_highs = np.full((bound_matrix.shape[0], num_buckets), np.nan)
        for row in range(bound_matrix.shape[0]):
            mask_lows[row], mask_highs[row] = bucketing.data_bounds(
                array[bound_matrix[row]]
            )
    return ChunkCounts(
        sizes=sizes,
        conditional=conditional,
        sums=sums,
        lows=lows,
        highs=highs,
        num_tuples=int(array.shape[0]),
        mask_lows=mask_lows,
        mask_highs=mask_highs,
    )


@dataclass
class GridChunkCounts:
    """Partial 2-D grid counts of one chunk (the §1.4 rectangle inputs).

    The two-dimensional analogue of :class:`ChunkCounts`: per-cell tuple
    counts ``u_ij`` over an ``R × C`` bucket grid, per-mask conditional cell
    counts ``v_ij``, and the per-axis observed data bounds.  Partials merge
    by element-wise summing (min/max for the bounds), so the grid builds
    under exactly the same serial / streaming / multiprocessing executors as
    the one-dimensional profiles — with bit-identical results, since cell
    counts are integers and bounds are order-free reductions.

    Attributes
    ----------
    sizes:
        Per-cell tuple counts, shape ``(R, C)``.
    conditional:
        Per-mask conditional cell counts, shape ``(num_masks, R, C)``.
    row_lows / row_highs:
        Observed per-row-bucket bounds of the row attribute, shape ``(R,)``.
    column_lows / column_highs:
        Observed per-column-bucket bounds of the column attribute, ``(C,)``.
    num_tuples:
        Number of tuples counted in this chunk.
    """

    sizes: np.ndarray
    conditional: np.ndarray
    row_lows: np.ndarray
    row_highs: np.ndarray
    column_lows: np.ndarray
    column_highs: np.ndarray
    num_tuples: int = 0

    @staticmethod
    def zeros(rows: int, columns: int, num_masks: int = 0) -> "GridChunkCounts":
        """An identity element for :meth:`merge`."""
        return GridChunkCounts(
            sizes=np.zeros((rows, columns), dtype=np.int64),
            conditional=np.zeros((num_masks, rows, columns), dtype=np.int64),
            row_lows=np.full(rows, np.nan),
            row_highs=np.full(rows, np.nan),
            column_lows=np.full(columns, np.nan),
            column_highs=np.full(columns, np.nan),
            num_tuples=0,
        )

    def merge(self, other: "GridChunkCounts") -> "GridChunkCounts":
        """Accumulate another partial into this one (in place; returns self)."""
        if (
            self.sizes.shape != other.sizes.shape
            or self.conditional.shape != other.conditional.shape
        ):
            raise BucketingError("cannot merge grid counts of different shapes")
        self.sizes += other.sizes
        self.conditional += other.conditional
        self.row_lows = np.fmin(self.row_lows, other.row_lows)
        self.row_highs = np.fmax(self.row_highs, other.row_highs)
        self.column_lows = np.fmin(self.column_lows, other.column_lows)
        self.column_highs = np.fmax(self.column_highs, other.column_highs)
        self.num_tuples += other.num_tuples
        return self


def count_grid_chunk(
    row_values: np.ndarray,
    column_values: np.ndarray,
    row_cuts: np.ndarray,
    column_cuts: np.ndarray,
    masks: np.ndarray | None = None,
) -> GridChunkCounts:
    """The 2-D counting kernel: bucket one chunk into an ``R × C`` cell grid.

    One ``searchsorted`` assignment pass per axis, then the cell index
    ``row * C + column`` flattens the grid so the per-cell tuple counts come
    from a single ``np.bincount`` — and every objective mask's conditional
    cell counts from the same mask-matrix kernel
    (:func:`masked_bucket_counts`) the 1-D paths use, treating the ``R·C``
    cells as one flat bucket axis.  Module-level and numpy-only in its
    arguments (picklable), so the pipeline's multiprocessing executor runs
    it in worker processes unchanged.
    """
    rows_array = np.asarray(row_values, dtype=np.float64).ravel()
    columns_array = np.asarray(column_values, dtype=np.float64).ravel()
    if rows_array.shape != columns_array.shape:
        raise BucketingError(
            "row and column value chunks must have the same length"
        )
    row_bucketing = Bucketing(row_cuts)
    column_bucketing = Bucketing(column_cuts)
    rows = row_bucketing.num_buckets
    columns = column_bucketing.num_buckets

    flat = row_bucketing.assign(rows_array) * columns + column_bucketing.assign(
        columns_array
    )
    sizes = np.bincount(flat, minlength=rows * columns).astype(np.int64)
    if masks is None:
        conditional = np.zeros((0, rows, columns), dtype=np.int64)
    else:
        conditional = masked_bucket_counts(flat, masks, rows * columns).reshape(
            -1, rows, columns
        )

    row_lows, row_highs = row_bucketing.data_bounds(rows_array)
    column_lows, column_highs = column_bucketing.data_bounds(columns_array)
    return GridChunkCounts(
        sizes=sizes.reshape(rows, columns),
        conditional=conditional,
        row_lows=row_lows,
        row_highs=row_highs,
        column_lows=column_lows,
        column_highs=column_highs,
        num_tuples=int(rows_array.shape[0]),
    )


def count_relation_buckets(
    relation: Relation,
    attribute: str,
    bucketing: Bucketing,
    objectives: Mapping[str, Condition] | None = None,
) -> BucketCounts:
    """Count ``relation``'s tuples per bucket of ``attribute``.

    Parameters
    ----------
    relation:
        The relation to scan.
    attribute:
        Numeric attribute whose values choose the bucket.
    bucketing:
        Bucket boundaries (typically from a bucketizer).
    objectives:
        Optional mapping from a label to an objective condition; for every
        entry the per-bucket conditional counts ``v_i`` are produced.
    """
    return count_many(relation, attribute, bucketing, objectives or {})


def count_many(
    relation: Relation,
    attribute: str,
    bucketing: Bucketing,
    objectives: Mapping[str, Condition],
) -> BucketCounts:
    """Count ``attribute``'s buckets once and every objective from that pass.

    Functionally identical to :func:`count_relation_buckets` but explicit
    about its batched contract: the relation column is assigned to buckets
    exactly once, the data bounds are computed from one sort, and the
    conditional counts of all ``objectives`` come from the mask-matrix
    kernel, so ``k`` conditions cost one scan plus ``k`` cheap bincounts
    instead of ``k`` full scans.
    """
    values = np.asarray(relation.numeric_column(attribute), dtype=np.float64)
    indices = bucketing.assign(values)
    sizes = np.bincount(indices, minlength=bucketing.num_buckets).astype(np.int64)

    conditional: dict[str, np.ndarray] = {}
    labels = list(objectives)
    if labels:
        masks = np.empty((len(labels), values.shape[0]), dtype=bool)
        for row, label in enumerate(labels):
            mask = np.asarray(objectives[label].mask(relation), dtype=bool)
            if mask.shape != values.shape:
                raise BucketingError(
                    "condition mask length does not match relation size"
                )
            masks[row] = mask
        counted = masked_bucket_counts(indices, masks, bucketing.num_buckets)
        for row, label in enumerate(labels):
            conditional[label] = counted[row]

    low, high = bucketing.data_bounds(values)
    return BucketCounts(
        attribute=attribute,
        bucketing=bucketing,
        sizes=sizes,
        conditional=conditional,
        data_low=low,
        data_high=high,
    )


def count_conditions(
    relation: Relation,
    attribute: str,
    bucketing: Bucketing,
    conditions: Sequence[Condition],
) -> list[np.ndarray]:
    """Per-bucket conditional counts for several objective conditions.

    Convenience wrapper used by the all-combinations catalog miner: the
    bucket assignment of the numeric attribute is computed once and every
    condition is counted from it with the mask-matrix kernel.
    """
    values = relation.numeric_column(attribute)
    indices = bucketing.assign(values)
    if not conditions:
        return []
    masks = np.empty((len(conditions), values.shape[0]), dtype=bool)
    for row, condition in enumerate(conditions):
        mask = np.asarray(condition.mask(relation), dtype=bool)
        if mask.shape != values.shape:
            raise BucketingError("condition mask length does not match relation size")
        masks[row] = mask
    counted = masked_bucket_counts(indices, masks, bucketing.num_buckets)
    return [counted[row] for row in range(len(conditions))]
