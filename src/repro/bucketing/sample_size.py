"""Sample-size analysis for randomized bucketing (§3.2, Figure 1).

Let ``S`` be the sample size, ``M`` the number of buckets, and ``I`` an
interval of the attribute domain containing exactly ``N/M`` of the original
tuples.  The number ``X`` of sample points falling in ``I`` follows a
binomial distribution ``B(S, 1/M)`` because samples are drawn independently
and uniformly with replacement.  The probability that a bucket's size
deviates from its target by more than a factor ``δ``,

    p_e = Pr(|X − S/M| ≥ δ·S/M),

therefore depends only on ``S/M`` (and ``M``), not on ``N``.  Figure 1 plots
``p_e`` against ``S/M`` for ``δ = 0.5`` and ``M ∈ {5, 10, 10000}`` and reads
off that ``S/M = 40`` pushes ``p_e`` below 0.3 %, which motivates the
``S = 40·M`` default used by the implementation.

This module computes the exact binomial tail (no scipy dependency — the sums
involved are short), an empirical Monte-Carlo estimate used to cross-check
the analysis, and a helper that recommends a sample size for a target error
probability.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import BucketingError

__all__ = [
    "deviation_probability",
    "empirical_deviation_probability",
    "recommended_sample_factor",
    "SampleSizeCurve",
    "sample_size_curve",
]


def _binomial_pmf(successes: int, trials: int, probability: float) -> float:
    """Exact binomial probability mass ``P[X = successes]`` for ``X ~ B(trials, p)``.

    Computed in log space so that large ``trials`` (tens of thousands of
    sample points) do not underflow.
    """
    if successes < 0 or successes > trials:
        return 0.0
    if probability <= 0.0:
        return 1.0 if successes == 0 else 0.0
    if probability >= 1.0:
        return 1.0 if successes == trials else 0.0
    log_pmf = (
        math.lgamma(trials + 1)
        - math.lgamma(successes + 1)
        - math.lgamma(trials - successes + 1)
        + successes * math.log(probability)
        + (trials - successes) * math.log1p(-probability)
    )
    return math.exp(log_pmf)


def deviation_probability(sample_size: int, num_buckets: int, delta: float = 0.5) -> float:
    """Exact ``p_e = Pr(|X − S/M| ≥ δ·S/M)`` with ``X ~ B(S, 1/M)``.

    Parameters
    ----------
    sample_size:
        Total sample size ``S``.
    num_buckets:
        Number of buckets ``M``; the bucket-hit probability is ``1/M``.
    delta:
        Allowed relative deviation (the paper uses 0.5, i.e. a bucket at
        least 50 % larger or smaller than its target counts as an error).
    """
    if sample_size <= 0:
        raise BucketingError("sample_size must be positive")
    if num_buckets <= 1:
        raise BucketingError("num_buckets must be at least 2")
    if delta <= 0:
        raise BucketingError("delta must be positive")
    probability = 1.0 / num_buckets
    mean = sample_size * probability
    lower = math.floor(mean - delta * mean)
    upper = math.ceil(mean + delta * mean)
    # P(|X - mean| >= delta*mean) = 1 - P(lower < X < upper) over integers.
    inside = 0.0
    for successes in range(max(lower + 1, 0), min(upper, sample_size + 1)):
        if abs(successes - mean) >= delta * mean:
            continue
        inside += _binomial_pmf(successes, sample_size, probability)
    return max(0.0, min(1.0, 1.0 - inside))


def empirical_deviation_probability(
    sample_size: int,
    num_buckets: int,
    delta: float = 0.5,
    trials: int = 2000,
    rng: np.random.Generator | None = None,
) -> float:
    """Monte-Carlo estimate of :func:`deviation_probability`.

    Draws ``trials`` binomial variates and reports the fraction that deviate
    from ``S/M`` by at least ``δ·S/M``.  Used by the Figure 1 experiment to
    show the analytic curve and simulation agree.
    """
    if trials <= 0:
        raise BucketingError("trials must be positive")
    rng = rng if rng is not None else np.random.default_rng()
    mean = sample_size / num_buckets
    draws = rng.binomial(sample_size, 1.0 / num_buckets, size=trials)
    deviations = np.abs(draws - mean) >= delta * mean
    return float(deviations.mean())


def recommended_sample_factor(
    num_buckets: int,
    delta: float = 0.5,
    target_probability: float = 0.003,
    max_factor: int = 200,
) -> int:
    """Smallest integer ``S/M`` whose error probability is below the target.

    With the paper's parameters (``δ = 0.5``, target 0.3 %) this returns a
    value of about 40 for every practical ``M``, matching the ``S = 40·M``
    rule of §3.2.
    """
    for factor in range(1, max_factor + 1):
        if deviation_probability(factor * num_buckets, num_buckets, delta) <= target_probability:
            return factor
    return max_factor


@dataclass(frozen=True)
class SampleSizeCurve:
    """One curve of Figure 1: error probability as a function of ``S/M``."""

    num_buckets: int
    delta: float
    factors: tuple[int, ...]
    probabilities: tuple[float, ...]

    def as_rows(self) -> list[tuple[int, float]]:
        """``(S/M, p_e)`` rows, convenient for reporting."""
        return list(zip(self.factors, self.probabilities))


def sample_size_curve(
    num_buckets: int,
    factors: Sequence[int] = tuple(range(1, 101)),
    delta: float = 0.5,
) -> SampleSizeCurve:
    """Compute a Figure 1 curve for a given ``M``."""
    probabilities = tuple(
        deviation_probability(factor * num_buckets, num_buckets, delta)
        for factor in factors
    )
    return SampleSizeCurve(
        num_buckets=num_buckets,
        delta=delta,
        factors=tuple(int(f) for f in factors),
        probabilities=probabilities,
    )
