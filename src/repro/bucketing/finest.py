"""Finest buckets: one bucket per distinct attribute value.

Definition 2.5 calls a bucket *finest* when it covers a single value
``[x, x]``.  With finest buckets, every possible range of the attribute can
be expressed as a combination of consecutive buckets, so the optimized rules
computed over them are exact rather than approximate.  The catch (discussed
in §2.3) is that the number of finest buckets can be as large as the number
of distinct values — millions for an attribute such as an account balance —
which is why the randomized equi-depth bucketizer exists.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.bucketing.base import Bucketing, Bucketizer

__all__ = ["FinestBucketizer", "finest_bucketing"]


class FinestBucketizer(Bucketizer):
    """Create one bucket per distinct value.

    The ``num_buckets`` argument of :meth:`build` is interpreted as an upper
    limit: if the data has more distinct values than ``num_buckets`` a
    :class:`~repro.exceptions.BucketingError` is *not* raised — the limit is
    simply ignored, because finest buckets are by definition one per distinct
    value.  Pass ``num_buckets=None``-like large values when the distinct
    count is unknown.
    """

    def build(
        self,
        values: Sequence[float] | np.ndarray,
        num_buckets: int = 0,
        rng: np.random.Generator | None = None,
    ) -> Bucketing:
        array = np.asarray(values, dtype=np.float64)
        limit = num_buckets if num_buckets > 0 else array.size
        array = self._validate(array, max(limit, 1))
        return finest_bucketing(array)


def finest_bucketing(values: Sequence[float] | np.ndarray) -> Bucketing:
    """Return the finest bucketing of ``values``.

    The cut points are the distinct values except the largest, so bucket ``i``
    contains exactly the tuples whose value equals the ``i``-th distinct value.
    """
    array = np.asarray(values, dtype=np.float64)
    distinct = np.unique(array)
    if distinct.size <= 1:
        return Bucketing.single_bucket()
    return Bucketing(distinct[:-1])
