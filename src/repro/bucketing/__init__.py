"""Bucketing engine: finest, equi-width, and (almost) equi-depth buckets.

Implements §2.3 and §3 of the paper: the bucket model, exact equi-depth
bucketing by sorting (the Naive Sort / Vertical Split Sort baselines of the
Figure 9 experiment), the randomized sampling bucketizer of Algorithm 3.1,
the parallel counting scheme of Algorithm 3.2, the sample-size analysis
behind Figure 1, and the granularity error bounds behind Table I.
"""

from repro.bucketing.base import Bucket, Bucketing, Bucketizer
from repro.bucketing.counting import (
    BucketCounts,
    ChunkCounts,
    count_conditions,
    count_many,
    count_relation_buckets,
    count_value_chunk,
    masked_bucket_counts,
)
from repro.bucketing.equidepth_sample import DEFAULT_SAMPLE_FACTOR, SampledEquiDepthBucketizer
from repro.bucketing.equidepth_sort import (
    SortingEquiDepthBucketizer,
    equidepth_cuts_from_sorted,
    naive_sort_bucketing,
    vertical_split_sort_bucketing,
)
from repro.bucketing.equiwidth import EquiWidthBucketizer
from repro.bucketing.errors import (
    GranularityErrorRow,
    confidence_error_bound,
    confidence_interval,
    granularity_error_table,
    support_error_bound,
    support_interval,
)
from repro.bucketing.finest import FinestBucketizer, finest_bucketing
from repro.bucketing.parallel import ParallelBucketCounter, ParallelCountResult
from repro.bucketing.sample_size import (
    SampleSizeCurve,
    deviation_probability,
    empirical_deviation_probability,
    recommended_sample_factor,
    sample_size_curve,
)
from repro.bucketing.streaming import (
    ReservoirSampler,
    StreamingBucketCounter,
    build_streaming_profile,
    streaming_equidepth_bucketing,
)

__all__ = [
    "Bucket",
    "Bucketing",
    "Bucketizer",
    "FinestBucketizer",
    "finest_bucketing",
    "EquiWidthBucketizer",
    "SortingEquiDepthBucketizer",
    "equidepth_cuts_from_sorted",
    "naive_sort_bucketing",
    "vertical_split_sort_bucketing",
    "SampledEquiDepthBucketizer",
    "DEFAULT_SAMPLE_FACTOR",
    "ParallelBucketCounter",
    "ParallelCountResult",
    "BucketCounts",
    "ChunkCounts",
    "count_relation_buckets",
    "count_conditions",
    "count_many",
    "count_value_chunk",
    "masked_bucket_counts",
    "deviation_probability",
    "empirical_deviation_probability",
    "recommended_sample_factor",
    "sample_size_curve",
    "SampleSizeCurve",
    "support_error_bound",
    "confidence_error_bound",
    "support_interval",
    "confidence_interval",
    "granularity_error_table",
    "GranularityErrorRow",
    "ReservoirSampler",
    "StreamingBucketCounter",
    "streaming_equidepth_bucketing",
    "build_streaming_profile",
]
