"""Approximation error induced by bucket granularity (§3.4, Table I).

When the optimal range does not align with bucket boundaries, the best range
made of whole consecutive buckets differs from it by at most one bucket on
each side (Figure 2 of the paper shows the four possible approximations).
With ``M`` equi-depth buckets each bucket holds a ``1/M`` fraction of the
tuples, so:

* the support of the approximation differs from the optimal support by at
  most ``2/M`` in absolute terms, i.e.
  ``|supp_app − supp_opt| / supp_opt ≤ 2 / (M · supp_opt)``;
* the confidence differs by at most
  ``|conf_app − conf_opt| / conf_opt ≤ 2 / (M · supp_opt − 2)``
  (meaningful once ``M · supp_opt > 2``).

Table I of the paper instantiates these bounds for ``supp_opt = 30 %`` and
``conf_opt = 70 %``.  This module provides both the relative bounds exactly
as stated and the direct worst-case interval computation (adding or removing
two boundary buckets that are entirely negative or entirely positive), which
is what the extreme Table I entries for very small ``M`` correspond to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import BucketingError

__all__ = [
    "support_error_bound",
    "confidence_error_bound",
    "support_interval",
    "confidence_interval",
    "GranularityErrorRow",
    "granularity_error_table",
]


def _validate_fraction(name: str, value: float) -> float:
    value = float(value)
    if not 0.0 < value <= 1.0:
        raise BucketingError(f"{name} must lie in (0, 1], got {value}")
    return value


def support_error_bound(num_buckets: int, optimal_support: float) -> float:
    """Relative support error bound ``2 / (M · supp_opt)`` from §3.4."""
    if num_buckets <= 0:
        raise BucketingError("num_buckets must be positive")
    optimal_support = _validate_fraction("optimal_support", optimal_support)
    return 2.0 / (num_buckets * optimal_support)


def confidence_error_bound(num_buckets: int, optimal_support: float) -> float:
    """Relative confidence error bound ``2 / (M · supp_opt − 2)`` from §3.4.

    Returns ``inf`` when ``M · supp_opt ≤ 2`` — with so few buckets inside
    the optimal range the bound is vacuous, which is exactly the paper's
    point that "the number of buckets should be much larger than
    ``1 / supp_opt``".
    """
    if num_buckets <= 0:
        raise BucketingError("num_buckets must be positive")
    optimal_support = _validate_fraction("optimal_support", optimal_support)
    denominator = num_buckets * optimal_support - 2.0
    if denominator <= 0.0:
        return float("inf")
    return 2.0 / denominator


def support_interval(num_buckets: int, optimal_support: float) -> tuple[float, float]:
    """Worst-case support of the bucket approximation, clipped to ``[0, 1]``.

    The approximation can miss or add at most one bucket (``1/M`` of the
    tuples) on each side of the optimal range.
    """
    optimal_support = _validate_fraction("optimal_support", optimal_support)
    if num_buckets <= 0:
        raise BucketingError("num_buckets must be positive")
    slack = 2.0 / num_buckets
    return max(0.0, optimal_support - slack), min(1.0, optimal_support + slack)


def confidence_interval(
    num_buckets: int, optimal_support: float, optimal_confidence: float
) -> tuple[float, float]:
    """Worst-case confidence of the bucket approximation, clipped to ``[0, 1]``.

    Lower end: the approximation adds two boundary buckets containing no
    tuple that meets the objective condition, diluting the confidence to
    ``conf·supp / (supp + 2/M)``.  Upper end: the approximation sheds two
    boundary buckets containing only non-matching tuples, concentrating the
    confidence to ``conf·supp / (supp − 2/M)`` (or 100 % when the optimal
    range spans at most two buckets).
    """
    optimal_support = _validate_fraction("optimal_support", optimal_support)
    optimal_confidence = _validate_fraction("optimal_confidence", optimal_confidence)
    if num_buckets <= 0:
        raise BucketingError("num_buckets must be positive")
    slack = 2.0 / num_buckets
    matched = optimal_confidence * optimal_support
    lower = matched / (optimal_support + slack)
    if optimal_support - slack <= 0.0:
        upper = 1.0
    else:
        upper = min(1.0, matched / (optimal_support - slack))
    return max(0.0, lower), upper


@dataclass(frozen=True)
class GranularityErrorRow:
    """One row of the Table I reproduction."""

    num_buckets: int
    support_low: float
    support_high: float
    confidence_low: float
    confidence_high: float
    support_bound: float
    confidence_bound: float

    def as_percentages(self) -> tuple[int, float, float, float, float]:
        """Row formatted the way Table I prints it (percentages)."""
        return (
            self.num_buckets,
            round(self.support_low * 100.0, 2),
            round(self.support_high * 100.0, 2),
            round(self.confidence_low * 100.0, 2),
            round(self.confidence_high * 100.0, 2),
        )


def granularity_error_table(
    bucket_counts: Sequence[int] = (10, 50, 100, 500, 1000),
    optimal_support: float = 0.30,
    optimal_confidence: float = 0.70,
) -> list[GranularityErrorRow]:
    """Reproduce Table I: error ranges for a sweep of bucket counts."""
    rows = []
    for num_buckets in bucket_counts:
        support_low, support_high = support_interval(num_buckets, optimal_support)
        confidence_low, confidence_high = confidence_interval(
            num_buckets, optimal_support, optimal_confidence
        )
        rows.append(
            GranularityErrorRow(
                num_buckets=int(num_buckets),
                support_low=support_low,
                support_high=support_high,
                confidence_low=confidence_low,
                confidence_high=confidence_high,
                support_bound=support_error_bound(num_buckets, optimal_support),
                confidence_bound=confidence_error_bound(num_buckets, optimal_support),
            )
        )
    return rows
