"""Relational substrate: schema, columnar relations, conditions, and CSV I/O.

This package provides the "database" the paper's algorithms run against: an
in-memory columnar relation with numeric and Boolean attributes, a small
condition AST for presumptive/objective conditions, support and confidence
statistics, a row builder, and CSV import/export.
"""

from repro.relation.builders import RelationBuilder
from repro.relation.conditions import (
    And,
    BooleanIs,
    Condition,
    Not,
    NumericEquals,
    NumericInRange,
    Or,
    TrueCondition,
    conjunction,
)
from repro.relation.io import (
    DEFAULT_CHUNK_SIZE,
    infer_csv_schema,
    infer_schema,
    read_csv,
    read_csv_chunks,
    write_csv,
)
from repro.relation.relation import Relation
from repro.relation.schema import Attribute, AttributeKind, Schema
from repro.relation.statistics import (
    ContingencyTable,
    confidence,
    contingency_table,
    lift,
    support,
)

__all__ = [
    "Attribute",
    "AttributeKind",
    "Schema",
    "Relation",
    "RelationBuilder",
    "Condition",
    "TrueCondition",
    "BooleanIs",
    "NumericEquals",
    "NumericInRange",
    "And",
    "Or",
    "Not",
    "conjunction",
    "read_csv",
    "read_csv_chunks",
    "write_csv",
    "infer_schema",
    "infer_csv_schema",
    "DEFAULT_CHUNK_SIZE",
    "support",
    "confidence",
    "lift",
    "ContingencyTable",
    "contingency_table",
]
