"""Row-wise construction helper for :class:`repro.relation.Relation`.

Most of the library builds relations column-wise (generators, CSV loader),
but examples and tests often want to append a handful of rows.  The builder
accumulates rows and materializes a columnar :class:`Relation` at the end.
"""

from __future__ import annotations

from typing import Mapping

from repro.exceptions import RelationError
from repro.relation.relation import Relation
from repro.relation.schema import Schema

__all__ = ["RelationBuilder"]


class RelationBuilder:
    """Incrementally collect rows and build an immutable :class:`Relation`.

    Example
    -------
    >>> from repro.relation import Attribute, Schema, RelationBuilder
    >>> schema = Schema.of(Attribute.numeric("balance"), Attribute.boolean("card_loan"))
    >>> builder = RelationBuilder(schema)
    >>> builder.add_row(balance=1200.0, card_loan=True)
    >>> builder.add_row(balance=300.0, card_loan=False)
    >>> relation = builder.build()
    >>> relation.num_tuples
    2
    """

    def __init__(self, schema: Schema) -> None:
        self._schema = schema
        self._columns: dict[str, list[object]] = {name: [] for name in schema.names()}
        self._count = 0

    @property
    def schema(self) -> Schema:
        """The schema rows are validated against."""
        return self._schema

    def __len__(self) -> int:
        return self._count

    def add_row(self, row: Mapping[str, object] | None = None, /, **values: object) -> None:
        """Append a row given as a mapping and/or keyword arguments.

        Keyword arguments override entries of ``row`` with the same name.
        Every attribute of the schema must receive a value.
        """
        merged: dict[str, object] = dict(row) if row is not None else {}
        merged.update(values)
        unknown = [name for name in merged if name not in self._schema]
        if unknown:
            raise RelationError(f"row mentions unknown attributes: {unknown}")
        missing = [name for name in self._schema.names() if name not in merged]
        if missing:
            raise RelationError(f"row is missing attributes: {missing}")
        for name in self._schema.names():
            self._columns[name].append(merged[name])
        self._count += 1

    def add_rows(self, rows: list[Mapping[str, object]]) -> None:
        """Append several mapping rows.

        Rows are validated up front and then appended column-wise (one
        ``extend`` per attribute), so large batches avoid the per-row,
        per-attribute Python overhead of repeated :meth:`add_row` calls.
        """
        rows = list(rows)
        names = self._schema.names()
        known = set(names)
        for row in rows:
            unknown = [name for name in row if name not in known]
            if unknown:
                raise RelationError(f"row mentions unknown attributes: {unknown}")
            missing = [name for name in names if name not in row]
            if missing:
                raise RelationError(f"row is missing attributes: {missing}")
        for name in names:
            self._columns[name].extend(row[name] for row in rows)
        self._count += len(rows)

    def build(self) -> Relation:
        """Materialize the accumulated rows into a :class:`Relation`."""
        return Relation.from_columns(self._schema, self._columns)
