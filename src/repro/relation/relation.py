"""Columnar in-memory relation.

The paper assumes a "universal relation" with numeric and Boolean attributes
over which ranges and conditions are evaluated.  :class:`Relation` is the
concrete substrate: a column store where numeric attributes are ``float64``
numpy arrays and Boolean attributes are ``bool`` numpy arrays.  All columns
have identical length (the number of tuples).

The class is deliberately small but complete enough for the mining code:
selection by condition, projection, vertical split (used by the
"Vertical Split Sort" bucketing baseline of §6.1), sampling, sorting by an
attribute, and aggregate statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.exceptions import RelationError, SchemaError
from repro.relation.conditions import Condition
from repro.relation.schema import Attribute, AttributeKind, Schema

__all__ = ["Relation", "BOOLEAN_TRUE_LITERALS", "BOOLEAN_FALSE_LITERALS"]

#: The single source of truth for Boolean value spelling, shared by column
#: coercion here and CSV parsing/inference in :mod:`repro.relation.io` —
#: extend these sets and every parsing path (vectorized or scalar) follows.
BOOLEAN_TRUE_LITERALS = frozenset({"yes", "y", "true", "t", "1"})
BOOLEAN_FALSE_LITERALS = frozenset({"no", "n", "false", "f", "0"})


@dataclass(frozen=True)
class Relation:
    """An immutable columnar relation.

    Use :meth:`from_columns` / :meth:`from_rows` (or
    :class:`repro.relation.RelationBuilder`) to construct instances; the raw
    constructor expects already-validated numpy columns.
    """

    schema: Schema
    _columns: tuple[np.ndarray, ...]

    # -- construction ----------------------------------------------------------

    @staticmethod
    def from_columns(
        schema: Schema, columns: Mapping[str, Sequence[float] | np.ndarray]
    ) -> "Relation":
        """Build a relation from a schema and per-attribute column data.

        Numeric columns are converted to ``float64`` and Boolean columns to
        ``bool``.  Every attribute of ``schema`` must be present in
        ``columns`` and all columns must have the same length.
        """
        missing = [a.name for a in schema if a.name not in columns]
        if missing:
            raise RelationError(f"missing columns for attributes: {missing}")
        extra = [name for name in columns if name not in schema]
        if extra:
            raise RelationError(f"columns do not match schema attributes: {extra}")

        arrays: list[np.ndarray] = []
        length: int | None = None
        for attribute in schema:
            raw = columns[attribute.name]
            array = _coerce_column(attribute, raw)
            if length is None:
                length = array.shape[0]
            elif array.shape[0] != length:
                raise RelationError(
                    f"column {attribute.name!r} has length {array.shape[0]}, "
                    f"expected {length}"
                )
            arrays.append(array)
        return Relation(schema, tuple(arrays))

    @staticmethod
    def from_rows(
        schema: Schema, rows: Iterable[Mapping[str, object] | Sequence[object]]
    ) -> "Relation":
        """Build a relation from row dictionaries or row tuples.

        Rows are transposed once and each column converts through a single
        vectorized numpy cast in :meth:`from_columns` — no per-row appends.
        """
        names = schema.names()
        rows = list(rows)
        if not rows:
            return Relation.empty(schema)
        normalized: list[Sequence[object]] = []
        for row in rows:
            if isinstance(row, Mapping):
                missing = [name for name in names if name not in row]
                if missing:
                    raise RelationError(
                        f"row is missing attribute {missing[0]!r}"
                    )
                normalized.append([row[name] for name in names])
            else:
                values = list(row)
                if len(values) != len(names):
                    raise RelationError(
                        f"row has {len(values)} values, expected {len(names)}"
                    )
                normalized.append(values)
        columns = dict(zip(names, zip(*normalized)))
        return Relation.from_columns(schema, columns)

    @staticmethod
    def empty(schema: Schema) -> "Relation":
        """An empty relation over ``schema``."""
        return Relation.from_columns(schema, {a.name: [] for a in schema})

    # -- basic accessors --------------------------------------------------------

    @property
    def num_tuples(self) -> int:
        """Number of tuples (rows)."""
        if not self._columns:
            return 0
        return int(self._columns[0].shape[0])

    def __len__(self) -> int:
        return self.num_tuples

    @property
    def num_attributes(self) -> int:
        """Number of attributes (columns)."""
        return len(self.schema)

    def column(self, name: str) -> np.ndarray:
        """The raw column array for attribute ``name`` (read-only view)."""
        index = self.schema.index_of(name)
        view = self._columns[index].view()
        view.flags.writeable = False
        return view

    def numeric_column(self, name: str) -> np.ndarray:
        """The column for numeric attribute ``name``.

        Raises
        ------
        SchemaError
            If the attribute exists but is not numeric.
        """
        attribute = self.schema.attribute(name)
        if not attribute.is_numeric:
            raise SchemaError(f"attribute {name!r} is not numeric")
        return self.column(name)

    def boolean_column(self, name: str) -> np.ndarray:
        """The column for Boolean attribute ``name``."""
        attribute = self.schema.attribute(name)
        if not attribute.is_boolean:
            raise SchemaError(f"attribute {name!r} is not boolean")
        return self.column(name)

    def row(self, index: int) -> dict[str, object]:
        """Return row ``index`` as an attribute-name → value dictionary."""
        if not 0 <= index < self.num_tuples:
            raise RelationError(
                f"row index {index} out of range for {self.num_tuples} tuples"
            )
        result: dict[str, object] = {}
        for attribute, column in zip(self.schema, self._columns):
            value = column[index]
            result[attribute.name] = bool(value) if attribute.is_boolean else float(value)
        return result

    def iter_rows(self) -> Iterator[dict[str, object]]:
        """Iterate over rows as dictionaries (mainly for tests and examples)."""
        for index in range(self.num_tuples):
            yield self.row(index)

    # -- relational operations --------------------------------------------------

    def select(self, condition: Condition) -> "Relation":
        """Return the sub-relation of tuples meeting ``condition``."""
        return self.take(condition.mask(self))

    def take(self, mask_or_indices: np.ndarray) -> "Relation":
        """Return the sub-relation given a Boolean mask or integer index array."""
        selector = np.asarray(mask_or_indices)
        if selector.dtype == bool and selector.shape[0] != self.num_tuples:
            raise RelationError(
                f"mask length {selector.shape[0]} does not match "
                f"{self.num_tuples} tuples"
            )
        columns = tuple(column[selector] for column in self._columns)
        return Relation(self.schema, columns)

    def project(self, names: Sequence[str]) -> "Relation":
        """Return a relation restricted to the attributes in ``names``."""
        schema = self.schema.project(names)
        columns = tuple(self.column(name).copy() for name in names)
        return Relation(schema, columns)

    def vertical_split(self, name: str) -> "Relation":
        """Return a two-column relation ``(tuple_id, name)``.

        This mirrors the "Vertical Split Sort" baseline of §6.1: a narrow
        temporary table holding a tuple identifier and one numeric attribute,
        which is cheaper to sort than the full relation.
        """
        attribute = self.schema.attribute(name)
        if not attribute.is_numeric:
            raise SchemaError(f"vertical_split expects a numeric attribute, got {name!r}")
        schema = Schema.of(Attribute.numeric("tuple_id"), attribute)
        ids = np.arange(self.num_tuples, dtype=np.float64)
        return Relation(schema, (ids, self.column(name).copy()))

    def sort_by(self, name: str) -> "Relation":
        """Return a copy of the relation sorted ascending by attribute ``name``."""
        order = np.argsort(self.column(name), kind="stable")
        return self.take(order)

    def sample(self, size: int, rng: np.random.Generator | None = None,
               replace: bool = True) -> "Relation":
        """Return a uniform random sample of ``size`` tuples.

        Sampling is performed *with replacement* by default, matching the
        analysis of §3.2 (the binomial tail argument assumes independent
        draws with replacement).
        """
        if size < 0:
            raise RelationError("sample size must be non-negative")
        if not replace and size > self.num_tuples:
            raise RelationError(
                f"cannot sample {size} tuples without replacement from "
                f"{self.num_tuples}"
            )
        rng = rng if rng is not None else np.random.default_rng()
        indices = rng.choice(self.num_tuples, size=size, replace=replace)
        return self.take(indices)

    def split(self, parts: int, rng: np.random.Generator | None = None) -> list["Relation"]:
        """Randomly partition the relation into ``parts`` near-equal pieces.

        Used by the parallel bucketing simulation (Algorithm 3.2, step 1):
        "Randomly distribute the tuples in the database to processor elements
        almost evenly."
        """
        if parts <= 0:
            raise RelationError("number of parts must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        permutation = rng.permutation(self.num_tuples)
        chunks = np.array_split(permutation, parts)
        return [self.take(chunk) for chunk in chunks]

    def concat(self, other: "Relation") -> "Relation":
        """Concatenate two relations with identical schemas."""
        if self.schema != other.schema:
            raise RelationError("cannot concatenate relations with different schemas")
        columns = tuple(
            np.concatenate([a, b]) for a, b in zip(self._columns, other._columns)
        )
        return Relation(self.schema, columns)

    def head(self, count: int = 5) -> "Relation":
        """The first ``count`` tuples."""
        return self.take(np.arange(min(count, self.num_tuples)))

    # -- statistics --------------------------------------------------------------

    def support(self, condition: Condition) -> float:
        """Fraction of tuples meeting ``condition`` (Definition 2.2)."""
        return condition.support(self)

    def count(self, condition: Condition) -> int:
        """Number of tuples meeting ``condition``."""
        return condition.count(self)

    def confidence(self, presumptive: Condition, objective: Condition) -> float:
        """Confidence of the rule ``presumptive ⇒ objective`` (Definition 2.3).

        Returns ``0.0`` when no tuple meets the presumptive condition, which
        keeps bulk mining code free of special cases.
        """
        base = presumptive.count(self)
        if base == 0:
            return 0.0
        both = int((presumptive.mask(self) & objective.mask(self)).sum())
        return both / base

    def mean(self, name: str) -> float:
        """Mean of numeric attribute ``name`` (0.0 for an empty relation)."""
        column = self.numeric_column(name)
        if column.shape[0] == 0:
            return 0.0
        return float(column.mean())

    def minmax(self, name: str) -> tuple[float, float]:
        """Minimum and maximum of numeric attribute ``name``."""
        column = self.numeric_column(name)
        if column.shape[0] == 0:
            raise RelationError(f"attribute {name!r} has no values")
        return float(column.min()), float(column.max())

    # -- misc ---------------------------------------------------------------------

    def memory_bytes(self) -> int:
        """Approximate memory footprint of the column data in bytes."""
        return int(sum(column.nbytes for column in self._columns))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        if self.schema != other.schema:
            return False
        return all(
            np.array_equal(a, b) for a, b in zip(self._columns, other._columns)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Relation(num_tuples={self.num_tuples}, "
            f"attributes={self.schema.names()})"
        )


def _coerce_column(attribute: Attribute, raw: Sequence[float] | np.ndarray) -> np.ndarray:
    """Convert raw column data to the canonical dtype for ``attribute``."""
    if attribute.kind is AttributeKind.NUMERIC:
        array = np.asarray(raw, dtype=np.float64)
        if array.ndim != 1:
            raise RelationError(
                f"column {attribute.name!r} must be one-dimensional"
            )
        if array.size and not np.all(np.isfinite(array)):
            raise RelationError(
                f"numeric column {attribute.name!r} contains NaN or infinity"
            )
        return array
    # Boolean attribute: accept bools, 0/1 integers, and "yes"/"no" strings.
    # The common homogeneous shapes (bool, numeric, string arrays) convert
    # with one vectorized pass; only mixed-type object columns fall back to
    # the per-value coercion loop.
    probe = raw if isinstance(raw, np.ndarray) else np.asarray(list(raw))
    if probe.dtype == bool:
        array = probe.astype(bool)
    elif np.issubdtype(probe.dtype, np.number):
        valid = np.isin(probe, (0, 1))
        if not np.all(valid):
            offender = probe[~valid][0]
            raise RelationError(
                f"boolean column {attribute.name!r}: numeric values must be "
                f"0 or 1, got {offender.item()!r}"
            )
        array = probe.astype(bool)
    elif probe.dtype.kind in ("U", "S"):
        lowered = np.char.lower(np.char.strip(probe.astype(str)))
        truthy = np.isin(lowered, sorted(BOOLEAN_TRUE_LITERALS))
        falsy = np.isin(lowered, sorted(BOOLEAN_FALSE_LITERALS))
        invalid = ~(truthy | falsy)
        if np.any(invalid):
            offender = probe[invalid][0]
            raise RelationError(
                f"boolean column {attribute.name!r}: cannot interpret "
                f"{str(offender)!r}"
            )
        array = truthy
    else:
        array = np.asarray(
            [_coerce_boolean(attribute.name, value) for value in probe.ravel()],
            dtype=bool,
        ).reshape(probe.shape)
    if array.ndim != 1:
        raise RelationError(f"column {attribute.name!r} must be one-dimensional")
    return array


def _coerce_boolean(name: str, value: object) -> bool:
    """Convert a single raw value to a Boolean flag."""
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if isinstance(value, (int, np.integer, float, np.floating)):
        if value in (0, 1):
            return bool(value)
        raise RelationError(
            f"boolean column {name!r}: numeric values must be 0 or 1, got {value!r}"
        )
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in BOOLEAN_TRUE_LITERALS:
            return True
        if lowered in BOOLEAN_FALSE_LITERALS:
            return False
    raise RelationError(f"boolean column {name!r}: cannot interpret {value!r}")
