"""Condition AST used to express presumptive and objective rule conditions.

The paper (Definition 2.1) uses *primitive conditions* over attributes:

* for a Boolean attribute ``A``:  ``A = yes`` and ``A = no``;
* for a numeric attribute ``A``:  ``A = v`` and ``A ∈ [v1, v2]``;

and *conjunctions* of primitive conditions for more complex statements.  This
module represents those conditions as small immutable AST nodes.  Every node
can evaluate itself against a :class:`repro.relation.Relation` producing a
Boolean numpy mask (one entry per tuple), which is the form all the counting
code in :mod:`repro.core` and :mod:`repro.mining` consumes.

A tiny textual form is supported for display and round-tripping in the CLI,
for example ``(Balance in [1000, 5000]) and (CardLoan = yes)``.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.exceptions import ConditionError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.relation.relation import Relation

__all__ = [
    "Condition",
    "TrueCondition",
    "BooleanIs",
    "NumericEquals",
    "NumericInRange",
    "And",
    "Or",
    "Not",
    "conjunction",
]


class Condition(ABC):
    """Base class of all condition AST nodes."""

    @abstractmethod
    def mask(self, relation: "Relation") -> np.ndarray:
        """Return a Boolean mask selecting the tuples that meet the condition."""

    @abstractmethod
    def attribute_names(self) -> frozenset[str]:
        """Names of all attributes referenced by this condition."""

    # -- combinators -----------------------------------------------------------

    def __and__(self, other: "Condition") -> "Condition":
        return And((self, other))

    def __or__(self, other: "Condition") -> "Condition":
        return Or((self, other))

    def __invert__(self) -> "Condition":
        return Not(self)

    # -- convenience -----------------------------------------------------------

    def count(self, relation: "Relation") -> int:
        """Number of tuples of ``relation`` that meet the condition."""
        return int(self.mask(relation).sum())

    def support(self, relation: "Relation") -> float:
        """Fraction of tuples of ``relation`` that meet the condition."""
        n = relation.num_tuples
        if n == 0:
            return 0.0
        return self.count(relation) / n


@dataclass(frozen=True)
class TrueCondition(Condition):
    """The condition met by every tuple (identity element for conjunction)."""

    def mask(self, relation: "Relation") -> np.ndarray:
        return np.ones(relation.num_tuples, dtype=bool)

    def attribute_names(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class BooleanIs(Condition):
    """Primitive condition ``A = yes`` or ``A = no`` for a Boolean attribute."""

    attribute: str
    value: bool = True

    def mask(self, relation: "Relation") -> np.ndarray:
        column = relation.boolean_column(self.attribute)
        return column if self.value else ~column

    def attribute_names(self) -> frozenset[str]:
        return frozenset({self.attribute})

    def __str__(self) -> str:
        return f"({self.attribute} = {'yes' if self.value else 'no'})"


@dataclass(frozen=True)
class NumericEquals(Condition):
    """Primitive condition ``A = v`` for a numeric attribute."""

    attribute: str
    value: float

    def __post_init__(self) -> None:
        if not math.isfinite(float(self.value)):
            raise ConditionError(
                f"NumericEquals({self.attribute!r}): value must be finite"
            )

    def mask(self, relation: "Relation") -> np.ndarray:
        column = relation.numeric_column(self.attribute)
        return column == float(self.value)

    def attribute_names(self) -> frozenset[str]:
        return frozenset({self.attribute})

    def __str__(self) -> str:
        return f"({self.attribute} = {self.value:g})"


@dataclass(frozen=True)
class NumericInRange(Condition):
    """Primitive condition ``A ∈ [low, high]`` (both ends inclusive).

    This is the condition whose range the optimized-rule miners instantiate.
    """

    attribute: str
    low: float
    high: float

    def __post_init__(self) -> None:
        low = float(self.low)
        high = float(self.high)
        if math.isnan(low) or math.isnan(high):
            raise ConditionError(
                f"NumericInRange({self.attribute!r}): bounds must not be NaN"
            )
        if low > high:
            raise ConditionError(
                f"NumericInRange({self.attribute!r}): low ({low}) exceeds high ({high})"
            )

    def mask(self, relation: "Relation") -> np.ndarray:
        column = relation.numeric_column(self.attribute)
        return (column >= float(self.low)) & (column <= float(self.high))

    def attribute_names(self) -> frozenset[str]:
        return frozenset({self.attribute})

    @property
    def width(self) -> float:
        """Length of the interval."""
        return float(self.high) - float(self.low)

    def __str__(self) -> str:
        return f"({self.attribute} in [{self.low:g}, {self.high:g}])"


def _flatten(
    conditions: Iterable[Condition], node_type: type
) -> tuple[Condition, ...]:
    """Flatten nested nodes of the same type and validate operands."""
    flat: list[Condition] = []
    for condition in conditions:
        if not isinstance(condition, Condition):
            raise ConditionError(
                f"operands must be Condition instances, got {condition!r}"
            )
        if isinstance(condition, node_type):
            flat.extend(condition.operands)  # type: ignore[attr-defined]
        else:
            flat.append(condition)
    return tuple(flat)


@dataclass(frozen=True)
class And(Condition):
    """Conjunction of conditions; nested conjunctions are flattened."""

    operands: tuple[Condition, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "operands", _flatten(self.operands, And))
        if not self.operands:
            raise ConditionError("And requires at least one operand")

    def mask(self, relation: "Relation") -> np.ndarray:
        result = self.operands[0].mask(relation)
        for operand in self.operands[1:]:
            result = result & operand.mask(relation)
        return result

    def attribute_names(self) -> frozenset[str]:
        return frozenset().union(*(op.attribute_names() for op in self.operands))

    def __str__(self) -> str:
        return " and ".join(str(op) for op in self.operands)


@dataclass(frozen=True)
class Or(Condition):
    """Disjunction of conditions; nested disjunctions are flattened."""

    operands: tuple[Condition, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "operands", _flatten(self.operands, Or))
        if not self.operands:
            raise ConditionError("Or requires at least one operand")

    def mask(self, relation: "Relation") -> np.ndarray:
        result = self.operands[0].mask(relation)
        for operand in self.operands[1:]:
            result = result | operand.mask(relation)
        return result

    def attribute_names(self) -> frozenset[str]:
        return frozenset().union(*(op.attribute_names() for op in self.operands))

    def __str__(self) -> str:
        return "(" + " or ".join(str(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class Not(Condition):
    """Negation of a condition."""

    operand: Condition

    def __post_init__(self) -> None:
        if not isinstance(self.operand, Condition):
            raise ConditionError(
                f"Not operand must be a Condition, got {self.operand!r}"
            )

    def mask(self, relation: "Relation") -> np.ndarray:
        return ~self.operand.mask(relation)

    def attribute_names(self) -> frozenset[str]:
        return self.operand.attribute_names()

    def __str__(self) -> str:
        return f"not {self.operand}"


def conjunction(conditions: Iterable[Condition]) -> Condition:
    """Combine ``conditions`` into a single conjunction.

    An empty iterable yields :class:`TrueCondition`, a single element is
    returned unchanged, and two or more are wrapped in :class:`And`.
    """
    items = tuple(conditions)
    if not items:
        return TrueCondition()
    if len(items) == 1:
        return items[0]
    return And(items)
