"""CSV import / export for relations.

The paper's experiments read tuples from flat files on disk; this module
provides the equivalent plumbing so examples and the CLI can operate on real
CSV data (for instance UCI exports) as well as on the synthetic generators.

Three entry points:

* :func:`write_csv` — serialize a :class:`Relation` with a header row.
* :func:`read_csv` — parse a CSV file, either against an explicit
  :class:`Schema` or with lightweight schema inference (a column whose values
  are all in a small yes/no vocabulary or all 0/1 becomes Boolean, everything
  else that parses as a float becomes numeric).
* :func:`read_csv_chunks` — generator yielding the file as bounded-size
  :class:`Relation` chunks, so out-of-core pipelines
  (:class:`repro.pipeline.CSVSource`) scan the file without ever holding it
  whole.

Fast path
---------
Chunks are read as blocks of raw lines and handed to ``np.loadtxt``'s C
tokenizer: numeric columns parse straight to ``float64`` (no intermediate
Python strings), Boolean columns parse as fixed-width byte strings compared
against the ``yes``/``no`` vocabulary, and a per-block comma count validates
the row widths.  Any block the fast tokenizer cannot handle exactly — quoted
fields, blank lines, stray vocabulary (``TRUE``), numeric literals only
Python's ``float`` accepts (digit-group underscores), width errors — hands
the *rest of the file* to the legacy ``csv.reader`` + per-column parser, so
values, schema inference, and error messages are identical to the
pre-fast-path reader on every input.  ``fast=False`` forces the legacy
reader throughout (the benchmarks use it to time the old configuration
verbatim).

Both readers accept a ``columns=`` projection: only the named columns are
parsed and materialized, which is what lets the pipeline's boundary-sampling
scan skip every Boolean column of a wide catalog file.
"""

from __future__ import annotations

import csv
import io as io_module
from contextlib import ExitStack
from io import StringIO, TextIOWrapper
from itertools import chain, islice
from pathlib import Path
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import RelationError
from repro.relation.relation import (
    BOOLEAN_FALSE_LITERALS,
    BOOLEAN_TRUE_LITERALS,
    Relation,
)
from repro.relation.schema import Attribute, Schema

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "read_csv",
    "read_csv_chunks",
    "read_csv_first_chunk",
    "write_csv",
    "infer_schema",
    "infer_csv_schema",
]

_BOOLEAN_VOCABULARY = BOOLEAN_TRUE_LITERALS | BOOLEAN_FALSE_LITERALS
_TRUE_BYTES = np.array(sorted(w.encode("utf-8") for w in BOOLEAN_TRUE_LITERALS))
_FALSE_BYTES = np.array(sorted(w.encode("utf-8") for w in BOOLEAN_FALSE_LITERALS))

#: Default tuples per chunk for :func:`read_csv_chunks` (bounds the resident
#: memory of an out-of-core scan at roughly ``chunk_size x num_columns``
#: parsed values).
DEFAULT_CHUNK_SIZE = 50_000

# Chunk size used by read_csv to treat the whole file as one block (keeps the
# whole-file schema-inference semantics of the row-based reader).
_WHOLE_FILE_ROWS = 2**62


def write_csv(relation: Relation, path: str | Path) -> None:
    """Write ``relation`` to ``path`` as CSV with a header row.

    Boolean values are written as ``yes`` / ``no`` so the files read naturally
    and round-trip through :func:`read_csv`.
    """
    path = Path(path)
    names = relation.schema.names()
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        for row in relation.iter_rows():
            formatted: list[str] = []
            for name in names:
                value = row[name]
                if isinstance(value, bool):
                    formatted.append("yes" if value else "no")
                else:
                    formatted.append(repr(float(value)))
            writer.writerow(formatted)


def _read_header(reader: Iterator[list[str]], path: Path) -> list[str]:
    """The stripped header row of a CSV reader."""
    try:
        header = next(reader)
    except StopIteration as exc:
        raise RelationError(f"CSV file {path} is empty") from exc
    return [name.strip() for name in header]


def _check_schema_header(schema: Schema, header: Sequence[str], path: Path) -> None:
    """Validate an explicit schema against the file header."""
    unknown = [name for name in header if name not in schema]
    if unknown or len(header) != len(schema):
        raise RelationError(
            f"CSV header {list(header)} does not match schema attributes "
            f"{schema.names()}"
        )


def _check_row_widths(
    rows: Sequence[Sequence[str]], width: int, path: Path, first_row_number: int
) -> None:
    """Reject ragged rows with their 1-based file line number."""
    for offset, row in enumerate(rows):
        if len(row) != width:
            raise RelationError(
                f"{path}:{first_row_number + offset}: expected {width} fields, "
                f"got {len(row)}"
            )


def _resolve_projection(
    schema: Schema, columns: Sequence[str] | None
) -> Schema:
    """The chunk schema of a scan: ``schema`` or its ordered projection."""
    if columns is None:
        return schema
    requested = set(columns)
    unknown = sorted(requested - set(schema.names()))
    if unknown:
        raise RelationError(f"cannot project unknown columns: {unknown}")
    return schema.project([name for name in schema.names() if name in requested])


def _parse_columns(
    header: Sequence[str],
    rows: Sequence[Sequence[str]],
    schema: Schema,
) -> dict[str, np.ndarray]:
    """Convert string rows to typed columns with vectorized numpy casts.

    ``schema`` may be a projection of the header: columns the schema does not
    name are skipped entirely.
    """
    if rows:
        transposed = list(zip(*rows))
    else:
        transposed = [() for _ in header]
    columns: dict[str, np.ndarray] = {}
    for name, raw in zip(header, transposed):
        if name not in schema:
            continue
        attribute = schema.attribute(name)
        stripped = np.char.strip(np.asarray(raw, dtype=str))
        if attribute.is_boolean:
            columns[name] = _boolean_column(name, stripped)
        else:
            columns[name] = _numeric_column(name, stripped)
    # Order columns to match the schema's attribute order.
    return {attr.name: columns[attr.name] for attr in schema}


def _numeric_column(name: str, stripped: np.ndarray) -> np.ndarray:
    """One vectorized string → float64 cast, with a per-value error message."""
    try:
        return stripped.astype(np.float64)
    except ValueError:
        # Slow path, only when the vectorized cast rejects something: either
        # locate the offending value, or fall back to Python parsing for the
        # few literals (e.g. digit-group underscores) float() accepts but the
        # numpy cast does not.
        parsed = np.empty(stripped.shape[0], dtype=np.float64)
        for position, text in enumerate(stripped):
            try:
                parsed[position] = float(text)
            except ValueError as exc:
                raise RelationError(
                    f"column {name!r}: cannot parse numeric value {str(text)!r}"
                ) from exc
        return parsed


def _boolean_column(name: str, stripped: np.ndarray) -> np.ndarray:
    """Vectorized yes/no-vocabulary lookup → bool."""
    lowered = np.char.lower(stripped)
    truthy = np.isin(lowered, sorted(BOOLEAN_TRUE_LITERALS))
    falsy = np.isin(lowered, sorted(BOOLEAN_FALSE_LITERALS))
    invalid = ~(truthy | falsy)
    if np.any(invalid):
        offender = stripped[invalid][0]
        raise RelationError(
            f"boolean column {name!r}: cannot interpret {str(offender)!r}"
        )
    return truthy


# -- fast block tokenizer -------------------------------------------------------


def _block_disqualified(text: str) -> bool:
    """Whether a raw line block needs the legacy ``csv.reader`` semantics.

    Quote characters can hide delimiters (and span lines), and blank lines
    are skipped by the row-based reader while they would silently vanish from
    the fast tokenizer's row accounting — both route to the legacy path.
    """
    return '"' in text or "\n\n" in text or text.startswith("\n")


def _normalized_fast_block(text: str, width: int) -> str | None:
    """Block text ready for the fast tokenizer, or ``None`` for legacy.

    Normalizes line endings and the trailing newline, then validates the
    row widths up front: every comma is a delimiter in a quote-free block,
    so a block whose comma count does not match ``rows × (width - 1)``
    contains mis-sized rows (narrower *or* wider than the header) and is
    handed to the legacy reader for its exact error message.
    """
    if _block_disqualified(text):
        return None
    if "\r" in text:
        text = text.replace("\r\n", "\n").replace("\r", "\n")
    if not text.endswith("\n"):
        text += "\n"
    if text.count(",") != text.count("\n") * (width - 1):
        return None
    return text


def _boolean_from_bytes(raw: np.ndarray) -> np.ndarray | None:
    """Byte column → bool via the yes/no fast path, ``None`` to use legacy.

    The overwhelmingly common literals (exactly ``yes`` / ``no``, as written
    by :func:`write_csv`) are answered by two vectorized comparisons; any
    leftover values go through the stripped/lowered full vocabulary, and a
    value outside it returns ``None`` so the legacy parser can raise its
    exact per-value error.
    """
    truthy = raw == b"yes"
    falsy = raw == b"no"
    leftover = ~(truthy | falsy)
    if leftover.any():
        spilled = raw[leftover]
        # A value filling the entire fixed-width field may have been
        # truncated by the tokenizer (e.g. a vocabulary word, padding
        # spaces, then junk); only the legacy parser sees the original
        # text, so defer to it.
        if int(np.char.str_len(spilled).max()) >= raw.dtype.itemsize:
            return None
        values = np.char.lower(np.char.strip(spilled))
        extra_true = np.isin(values, _TRUE_BYTES)
        if not bool((extra_true | np.isin(values, _FALSE_BYTES)).all()):
            return None
        truthy[leftover] = extra_true
    return truthy


class _FastBlockParser:
    """Parse quote-free line blocks with ``np.loadtxt``'s C tokenizer.

    One instance per scan: it precomputes the ``usecols`` index sets of the
    projected numeric and Boolean columns (plus the last header column as a
    row-width sentinel, so a row with missing fields always errors even when
    the projection would not touch it).
    """

    def __init__(self, header: Sequence[str], chunk_schema: Schema) -> None:
        self.width = len(header)
        positions = {name: index for index, name in enumerate(header)}
        self.numeric_names = [
            name for name in chunk_schema.names()
            if chunk_schema.attribute(name).is_numeric
        ]
        self.boolean_names = [
            name for name in chunk_schema.names()
            if chunk_schema.attribute(name).is_boolean
        ]
        usecols = [positions[name] for name in self.numeric_names] + [
            positions[name] for name in self.boolean_names
        ]
        fields = [(f"n{index}", np.float64) for index in range(len(self.numeric_names))]
        # 8 bytes comfortably hold every Boolean vocabulary literal; longer
        # values truncate, can no longer match the (≤5-byte) vocabulary, and
        # fall through to the exact legacy parser.
        fields += [(f"b{index}", "S8") for index in range(len(self.boolean_names))]
        # Row-width sentinel: the tokenizer must reach the last field so a
        # row with missing fields errors even under a narrow projection.
        if self.width - 1 not in usecols:
            usecols.append(self.width - 1)
            fields.append(("sentinel", "S1"))
        self.usecols = usecols
        self.dtype = np.dtype(fields)
        self.chunk_schema = chunk_schema

    def parse(self, text: str) -> Relation | None:
        """One block → a typed relation chunk, or ``None`` for the legacy path."""
        normalized = _normalized_fast_block(text, self.width)
        if normalized is None:
            return None
        text = normalized
        columns: dict[str, np.ndarray] = {}
        try:
            # One tokenizer pass converts every requested column natively:
            # the structured dtype parses numeric fields straight to float64
            # in C and Boolean fields to fixed-width byte strings.
            records = np.atleast_1d(
                np.loadtxt(
                    StringIO(text),
                    delimiter=",",
                    usecols=self.usecols,
                    dtype=self.dtype,
                    comments=None,
                )
            )
            for index, name in enumerate(self.numeric_names):
                columns[name] = np.ascontiguousarray(records[f"n{index}"])
            for index, name in enumerate(self.boolean_names):
                converted = _boolean_from_bytes(
                    np.ascontiguousarray(records[f"b{index}"])
                )
                if converted is None:
                    return None
                columns[name] = converted
        except ValueError:
            return None
        return Relation.from_columns(self.chunk_schema, columns)


def _infer_schema_from_bytes(header: Sequence[str], matrix: np.ndarray) -> Schema:
    """The :func:`infer_schema` column rules applied to a byte-string matrix."""
    digest = _SchemaDigest(header)
    digest.update_matrix(matrix)
    return digest.schema()


def _iter_line_blocks(handle, chunk_size: int) -> Iterator[list[str]]:
    """Raw line blocks of at most ``chunk_size`` lines from an open file."""
    while True:
        block = list(islice(handle, chunk_size))
        if not block:
            return
        yield block


def read_csv(path: str | Path, schema: Schema | None = None) -> Relation:
    """Read a CSV file with a header row into a :class:`Relation`.

    Parameters
    ----------
    path:
        File to read.
    schema:
        Optional explicit schema.  When omitted the schema is inferred with
        :func:`infer_schema` over the whole file; columns that are neither
        Boolean-like nor numeric raise
        :class:`~repro.exceptions.RelationError`.
    """
    path = Path(path)
    chunks = list(read_csv_chunks(path, schema=schema, chunk_size=_WHOLE_FILE_ROWS))
    if chunks:
        result = chunks[0]
        for chunk in chunks[1:]:  # pragma: no cover - whole-file reads are one chunk
            result = result.concat(chunk)
        return result
    # A header-only file yields no chunks; build the empty relation the
    # row-based reader would have produced.
    with path.open("r", newline="", encoding="utf-8") as handle:
        header = _read_header(csv.reader(handle), path)
    if schema is None:
        schema = infer_schema(header, [])
    else:
        _check_schema_header(schema, header, path)
    return Relation.empty(schema)


def read_csv_first_chunk(
    path: str | Path,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> tuple[Relation, int] | None:
    """Fast-parse just the file's first chunk (with schema inference).

    Returns ``(chunk, data_lines)`` — the parsed first chunk plus the number
    of raw lines it covers, suitable as ``skip_lines`` for a continuation
    :func:`read_csv_chunks` scan — or ``None`` when the first block needs
    the legacy reader's semantics (quoting, blank lines, unusual literals).
    :class:`repro.pipeline.CSVSource` uses this to infer its schema and keep
    the parsed chunk, so the inference work is not repeated on the next
    scan.

    Raises
    ------
    RelationError
        When the file is empty or contains a header but no data rows.
    """
    if chunk_size <= 0:
        raise RelationError("chunk_size must be positive")
    path = Path(path)
    with path.open("r", newline="", encoding="utf-8") as handle:
        header = _read_header(csv.reader(handle), path)
        block = list(islice(handle, chunk_size))
    if not block:
        raise RelationError(f"CSV file {path} contains no data rows")
    text = _normalized_fast_block("".join(block), len(header))
    if text is None:
        return None
    try:
        matrix = np.loadtxt(
            StringIO(text),
            delimiter=",",
            dtype=np.bytes_,
            comments=None,
            ndmin=2,
        )
    except ValueError:
        return None
    if matrix.shape[1] != len(header):
        return None
    schema = _infer_schema_from_bytes(header, matrix)
    chunk = _FastBlockParser(header, schema).parse(text)
    if chunk is None:
        return None
    return chunk, len(block)


class _BoundedRaw(io_module.RawIOBase):
    """A read-only raw stream serving at most ``limit`` bytes of ``handle``.

    Wrapping the seeked binary file in this (plus a ``TextIOWrapper``) is
    what turns a byte span ``[start, stop)`` of a CSV file into an ordinary
    line stream for the chunk parsers: reads simply hit EOF at ``stop``, so
    a span whose boundaries sit on line starts yields exactly its rows.
    """

    def __init__(self, handle, limit: int) -> None:
        super().__init__()
        self._handle = handle
        self._remaining = int(limit)

    def readable(self) -> bool:  # pragma: no cover - io protocol plumbing
        return True

    def readinto(self, buffer) -> int:
        if self._remaining <= 0:
            return 0
        view = memoryview(buffer)
        if len(view) > self._remaining:
            view = view[: self._remaining]
        block = self._handle.read(len(view))
        read = len(block)
        view[:read] = block
        self._remaining -= read
        return read


def read_csv_chunks(
    path: str | Path,
    schema: Schema | None = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    columns: Sequence[str] | None = None,
    fast: bool = True,
    skip_lines: int = 0,
    start_offset: int | None = None,
    stop_offset: int | None = None,
) -> Iterator[Relation]:
    """Yield a CSV file as :class:`Relation` chunks of at most ``chunk_size`` rows.

    Only one chunk of raw rows is resident at a time, so arbitrarily large
    files scan in bounded memory — this is the generator behind
    :class:`repro.pipeline.CSVSource`.

    When ``schema`` is omitted it is inferred from the *first chunk only*
    (the file is not pre-scanned) and then applied to every later chunk; pass
    an explicit schema when the leading rows are not representative — for
    example a column whose early values are all 0/1 but that is numeric
    further down would otherwise be inferred Boolean and fail mid-scan.

    ``columns`` projects the scan: only the named columns are parsed and the
    yielded chunks carry the projected schema (in schema order).  Schema
    inference still considers every column of the file's first chunk.

    ``fast=False`` disables the ``np.loadtxt`` block tokenizer and parses
    every row through the legacy ``csv.reader`` path (the fast path falls
    back to it automatically whenever a block needs its exact semantics —
    quoting, blank lines, unusual literals, width errors).

    ``skip_lines`` resumes a scan: that many raw data lines after the header
    are consumed unparsed (callers pair it with
    :func:`read_csv_first_chunk`, which reports how many lines its cached
    chunk covers).

    ``start_offset`` resumes a scan by *byte* position instead: the header
    is read (and validated) from the top of the file, then parsing restarts
    at the absolute byte offset — an O(1) seek, however much data precedes
    it.  The offset must sit on a line boundary and needs an explicit
    ``schema`` (a mid-file tail cannot re-infer one); it is the mechanism
    behind :meth:`repro.pipeline.CSVSource.scan_tail`, which parses only the
    rows appended after a stored snapshot.  Legacy-fallback error messages
    report line numbers relative to the resume offset.

    ``stop_offset`` additionally bounds a ``start_offset`` scan: parsing
    stops at that absolute byte position (exclusive), which must also sit on
    a line boundary.  Together they scan exactly the rows of a byte span —
    the shard-descriptor contract of :meth:`repro.pipeline.CSVSource.scan_span`.

    A file with a header but no data rows yields no chunks.
    """
    if chunk_size <= 0:
        raise RelationError("chunk_size must be positive")
    if start_offset is not None:
        if start_offset < 0:
            raise RelationError("start_offset must be non-negative")
        if skip_lines:
            raise RelationError("start_offset and skip_lines are mutually exclusive")
        if schema is None:
            raise RelationError(
                "start_offset scans need an explicit schema; a tail of the "
                "file cannot infer one"
            )
    if stop_offset is not None:
        if start_offset is None:
            raise RelationError("stop_offset requires start_offset")
        if stop_offset < start_offset:
            raise RelationError("stop_offset must be at least start_offset")
    path = Path(path)
    with ExitStack() as stack:
        if start_offset is None:
            handle = stack.enter_context(
                path.open("r", newline="", encoding="utf-8")
            )
            header = _read_header(csv.reader(handle), path)
        else:
            with path.open("r", newline="", encoding="utf-8") as head:
                header = _read_header(csv.reader(head), path)
            raw = stack.enter_context(path.open("rb"))
            raw.seek(start_offset)
            if stop_offset is not None:
                raw = stack.enter_context(
                    io_module.BufferedReader(
                        _BoundedRaw(raw, stop_offset - start_offset)
                    )
                )
            handle = stack.enter_context(
                TextIOWrapper(raw, encoding="utf-8", newline="")
            )
        if schema is not None:
            _check_schema_header(schema, header, path)
        chunk_schema = (
            _resolve_projection(schema, columns) if schema is not None else None
        )
        for _ in islice(handle, skip_lines):
            pass
        parser: _FastBlockParser | None = None
        # Header (and skipped) line(s); legacy error line numbers follow.
        consumed = 1 + skip_lines
        for block in _iter_line_blocks(handle, chunk_size) if fast else iter(()):
            text = "".join(block)
            if schema is None:
                inferred = None
                normalized = _normalized_fast_block(text, len(header))
                if normalized is not None:
                    try:
                        matrix = np.loadtxt(
                            StringIO(normalized),
                            delimiter=",",
                            dtype=np.bytes_,
                            comments=None,
                            ndmin=2,
                        )
                    except ValueError:
                        matrix = None
                    if matrix is not None and matrix.shape[1] == len(header):
                        inferred = _infer_schema_from_bytes(header, matrix)
                if inferred is None:
                    yield from _legacy_chunks(
                        chain(block, handle), header, schema, columns,
                        path, chunk_size, consumed,
                    )
                    return
                schema = inferred
                chunk_schema = _resolve_projection(schema, columns)
            if parser is None:
                assert chunk_schema is not None
                parser = _FastBlockParser(header, chunk_schema)
            chunk = parser.parse(text)
            if chunk is None:
                yield from _legacy_chunks(
                    chain(block, handle), header, schema, columns,
                    path, chunk_size, consumed,
                )
                return
            consumed += len(block)
            yield chunk
        if not fast:
            yield from _legacy_chunks(
                handle, header, schema, columns, path, chunk_size, consumed
            )


def _legacy_chunks(
    lines: Iterable[str],
    header: Sequence[str],
    schema: Schema | None,
    columns: Sequence[str] | None,
    path: Path,
    chunk_size: int,
    consumed: int,
) -> Iterator[Relation]:
    """The row-based ``csv.reader`` chunker (fallback and ``fast=False`` path)."""
    reader = csv.reader(iter(lines))
    chunk_schema = (
        _resolve_projection(schema, columns) if schema is not None else None
    )
    rows: list[list[str]] = []
    line = consumed
    first_row_number = consumed + 1
    for row in reader:
        line += 1
        if not row:
            continue
        if not rows:
            first_row_number = line
        rows.append(row)
        if len(rows) == chunk_size:
            _check_row_widths(rows, len(header), path, first_row_number)
            if schema is None:
                schema = infer_schema(header, rows)
                chunk_schema = _resolve_projection(schema, columns)
            yield Relation.from_columns(
                chunk_schema, _parse_columns(header, rows, chunk_schema)
            )
            rows = []
    if rows:
        _check_row_widths(rows, len(header), path, first_row_number)
        if schema is None:
            schema = infer_schema(header, rows)
            chunk_schema = _resolve_projection(schema, columns)
        yield Relation.from_columns(
            chunk_schema, _parse_columns(header, rows, chunk_schema)
        )


def infer_csv_schema(
    path: str | Path, chunk_size: int = DEFAULT_CHUNK_SIZE
) -> Schema:
    """Infer a schema over the *whole* CSV file in one bounded-memory scan.

    Applies the same column rules as :func:`infer_schema` but to every row
    of the file while holding at most ``chunk_size`` raw rows, so the result
    matches what :func:`read_csv` would infer — unlike the first-chunk-only
    inference :class:`repro.pipeline.CSVSource` uses by default.  Use it to
    build the explicit schema for a source whose leading rows are not
    representative (e.g. a numeric column whose early values are all 0/1)::

        schema = infer_csv_schema("big.csv")
        source = CSVSource("big.csv", schema=schema)

    The scan uses the same fast block tokenizer as :func:`read_csv_chunks`
    (with the same legacy fallback), so inferring a wide catalog file costs
    a fraction of parsing it.
    """
    if chunk_size <= 0:
        raise RelationError("chunk_size must be positive")
    path = Path(path)
    if not path.exists():
        raise RelationError(f"CSV file {path} does not exist")
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        header = _read_header(reader, path)
        digest = _SchemaDigest(header)
        consumed = 1
        for block in _iter_line_blocks(handle, chunk_size):
            text = _normalized_fast_block("".join(block), len(header))
            matrix = None
            if text is not None:
                try:
                    matrix = np.loadtxt(
                        StringIO(text),
                        delimiter=",",
                        dtype=np.bytes_,
                        comments=None,
                        ndmin=2,
                    )
                except ValueError:
                    matrix = None
            if matrix is None or matrix.shape[1] != len(header):
                _digest_legacy_rows(
                    chain(block, handle), digest, header, path, chunk_size, consumed
                )
                break
            digest.update_matrix(matrix)
            consumed += len(block)
    return digest.schema()


class _SchemaDigest:
    """Per-column boolean/numeric evidence accumulated across scan blocks."""

    def __init__(self, header: Sequence[str]) -> None:
        self.header = list(header)
        self.has_values = [False] * len(self.header)
        self.all_boolean = [True] * len(self.header)
        self.all_numeric = [True] * len(self.header)

    def update_matrix(self, matrix: np.ndarray) -> None:
        """Digest one fast-path byte matrix."""
        for index in range(len(self.header)):
            if not (self.all_boolean[index] or self.all_numeric[index]):
                continue
            stripped = np.char.strip(np.ascontiguousarray(matrix[:, index]))
            values = stripped[stripped != b""]
            if values.size == 0:
                continue
            self.has_values[index] = True
            if self.all_boolean[index]:
                lowered = np.char.lower(values)
                in_vocabulary = np.isin(lowered, _TRUE_BYTES) | np.isin(
                    lowered, _FALSE_BYTES
                )
                self.all_boolean[index] = bool(in_vocabulary.all())
            if self.all_numeric[index]:
                try:
                    values.astype(np.float64)
                except ValueError:
                    try:
                        for value in values:
                            float(value)
                    except ValueError:
                        self.all_numeric[index] = False

    def update_rows(self, rows: Sequence[Sequence[str]]) -> None:
        """Digest one legacy block of string rows."""
        for index, raw in enumerate(zip(*rows)):
            if not (self.all_boolean[index] or self.all_numeric[index]):
                continue
            stripped = np.char.strip(np.asarray(raw, dtype=str))
            values = stripped[stripped != ""]
            if values.size == 0:
                continue
            self.has_values[index] = True
            if self.all_boolean[index]:
                self.all_boolean[index] = bool(
                    np.isin(
                        np.char.lower(values), sorted(_BOOLEAN_VOCABULARY)
                    ).all()
                )
            if self.all_numeric[index]:
                try:
                    values.astype(np.float64)
                except ValueError:
                    try:
                        for value in values:
                            float(value)
                    except ValueError:
                        self.all_numeric[index] = False

    def schema(self) -> Schema:
        """Resolve the accumulated evidence into a schema (or raise)."""
        attributes: list[Attribute] = []
        for index, name in enumerate(self.header):
            if self.has_values[index] and self.all_boolean[index]:
                attributes.append(Attribute.boolean(name))
            elif self.all_numeric[index] or not self.has_values[index]:
                attributes.append(Attribute.numeric(name))
            else:
                raise RelationError(
                    f"column {name!r} is neither boolean-like nor numeric"
                )
        return Schema(tuple(attributes))


def _digest_legacy_rows(
    lines: Iterable[str],
    digest: _SchemaDigest,
    header: Sequence[str],
    path: Path,
    chunk_size: int,
    consumed: int,
) -> None:
    """Digest the remainder of a file through the legacy ``csv.reader``."""
    reader = csv.reader(iter(lines))
    rows: list[list[str]] = []
    line = consumed
    first_row_number = consumed + 1
    for row in reader:
        line += 1
        if not row:
            continue
        if not rows:
            first_row_number = line
        rows.append(row)
        if len(rows) == chunk_size:
            _check_row_widths(rows, len(header), path, first_row_number)
            digest.update_rows(rows)
            rows = []
    if rows:
        _check_row_widths(rows, len(header), path, first_row_number)
        digest.update_rows(rows)


def infer_schema(header: Sequence[str], rows: Iterable[Sequence[str]]) -> Schema:
    """Infer a :class:`Schema` from CSV header and string rows.

    A column is Boolean when every non-empty value belongs to the yes/no
    vocabulary (``yes/no``, ``true/false``, ``0/1`` and single-letter forms);
    otherwise it must parse as a float and becomes numeric.
    """
    rows = list(rows)
    if rows:
        transposed = list(zip(*rows))
    else:
        transposed = [() for _ in header]
    attributes: list[Attribute] = []
    for name, raw in zip(header, transposed):
        stripped = np.char.strip(np.asarray(raw, dtype=str))
        values = stripped[stripped != ""]
        if values.size and np.isin(
            np.char.lower(values), sorted(_BOOLEAN_VOCABULARY)
        ).all():
            attributes.append(Attribute.boolean(name))
            continue
        try:
            values.astype(np.float64)
        except ValueError:
            try:
                for value in values:
                    float(value)
            except ValueError as exc:
                raise RelationError(
                    f"column {name!r} is neither boolean-like nor numeric"
                ) from exc
        attributes.append(Attribute.numeric(name))
    return Schema(tuple(attributes))
