"""CSV import / export for relations.

The paper's experiments read tuples from flat files on disk; this module
provides the equivalent plumbing so examples and the CLI can operate on real
CSV data (for instance UCI exports) as well as on the synthetic generators.

Two entry points:

* :func:`write_csv` — serialize a :class:`Relation` with a header row.
* :func:`read_csv` — parse a CSV file, either against an explicit
  :class:`Schema` or with lightweight schema inference (a column whose values
  are all in a small yes/no vocabulary or all 0/1 becomes Boolean, everything
  else that parses as a float becomes numeric).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Sequence

from repro.exceptions import RelationError
from repro.relation.relation import Relation
from repro.relation.schema import Attribute, Schema

__all__ = ["read_csv", "write_csv", "infer_schema"]

_BOOLEAN_TRUE = {"yes", "y", "true", "t", "1"}
_BOOLEAN_FALSE = {"no", "n", "false", "f", "0"}
_BOOLEAN_VOCABULARY = _BOOLEAN_TRUE | _BOOLEAN_FALSE


def write_csv(relation: Relation, path: str | Path) -> None:
    """Write ``relation`` to ``path`` as CSV with a header row.

    Boolean values are written as ``yes`` / ``no`` so the files read naturally
    and round-trip through :func:`read_csv`.
    """
    path = Path(path)
    names = relation.schema.names()
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        for row in relation.iter_rows():
            formatted: list[str] = []
            for name in names:
                value = row[name]
                if isinstance(value, bool):
                    formatted.append("yes" if value else "no")
                else:
                    formatted.append(repr(float(value)))
            writer.writerow(formatted)


def read_csv(path: str | Path, schema: Schema | None = None) -> Relation:
    """Read a CSV file with a header row into a :class:`Relation`.

    Parameters
    ----------
    path:
        File to read.
    schema:
        Optional explicit schema.  When omitted the schema is inferred with
        :func:`infer_schema`; columns that are neither Boolean-like nor
        numeric raise :class:`~repro.exceptions.RelationError`.
    """
    path = Path(path)
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration as exc:
            raise RelationError(f"CSV file {path} is empty") from exc
        header = [name.strip() for name in header]
        rows = [row for row in reader if row]

    for row_number, row in enumerate(rows, start=2):
        if len(row) != len(header):
            raise RelationError(
                f"{path}:{row_number}: expected {len(header)} fields, got {len(row)}"
            )

    if schema is None:
        schema = infer_schema(header, rows)
    else:
        unknown = [name for name in header if name not in schema]
        if unknown or len(header) != len(schema):
            raise RelationError(
                f"CSV header {header} does not match schema attributes "
                f"{schema.names()}"
            )

    columns: dict[str, list[object]] = {name: [] for name in header}
    for row in rows:
        for name, raw in zip(header, row):
            attribute = schema.attribute(name)
            text = raw.strip()
            if attribute.is_boolean:
                columns[name].append(text)
            else:
                try:
                    columns[name].append(float(text))
                except ValueError as exc:
                    raise RelationError(
                        f"column {name!r}: cannot parse numeric value {text!r}"
                    ) from exc
    # Reorder columns to match the schema's attribute order.
    ordered = {attr.name: columns[attr.name] for attr in schema}
    return Relation.from_columns(schema, ordered)


def infer_schema(header: Sequence[str], rows: Iterable[Sequence[str]]) -> Schema:
    """Infer a :class:`Schema` from CSV header and string rows.

    A column is Boolean when every non-empty value belongs to the yes/no
    vocabulary (``yes/no``, ``true/false``, ``0/1`` and single-letter forms);
    otherwise it must parse as a float and becomes numeric.
    """
    rows = list(rows)
    attributes: list[Attribute] = []
    for index, name in enumerate(header):
        values = [row[index].strip() for row in rows if row[index].strip() != ""]
        if values and all(value.lower() in _BOOLEAN_VOCABULARY for value in values):
            attributes.append(Attribute.boolean(name))
            continue
        try:
            for value in values:
                float(value)
        except ValueError as exc:
            raise RelationError(
                f"column {name!r} is neither boolean-like nor numeric"
            ) from exc
        attributes.append(Attribute.numeric(name))
    return Schema(tuple(attributes))
