"""CSV import / export for relations.

The paper's experiments read tuples from flat files on disk; this module
provides the equivalent plumbing so examples and the CLI can operate on real
CSV data (for instance UCI exports) as well as on the synthetic generators.

Three entry points:

* :func:`write_csv` — serialize a :class:`Relation` with a header row.
* :func:`read_csv` — parse a CSV file, either against an explicit
  :class:`Schema` or with lightweight schema inference (a column whose values
  are all in a small yes/no vocabulary or all 0/1 becomes Boolean, everything
  else that parses as a float becomes numeric).
* :func:`read_csv_chunks` — generator yielding the file as bounded-size
  :class:`Relation` chunks, so out-of-core pipelines
  (:class:`repro.pipeline.CSVSource`) scan the file without ever holding it
  whole.

Parsing is column-wise: rows are transposed once and each column converts
through a single vectorized numpy cast (string → float64, or vocabulary
lookup → bool) instead of a per-row Python loop.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import RelationError
from repro.relation.relation import (
    BOOLEAN_FALSE_LITERALS,
    BOOLEAN_TRUE_LITERALS,
    Relation,
)
from repro.relation.schema import Attribute, Schema

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "read_csv",
    "read_csv_chunks",
    "write_csv",
    "infer_schema",
    "infer_csv_schema",
]

_BOOLEAN_VOCABULARY = BOOLEAN_TRUE_LITERALS | BOOLEAN_FALSE_LITERALS

#: Default tuples per chunk for :func:`read_csv_chunks` (bounds the resident
#: memory of an out-of-core scan at roughly ``chunk_size x num_columns``
#: parsed values).
DEFAULT_CHUNK_SIZE = 50_000


def write_csv(relation: Relation, path: str | Path) -> None:
    """Write ``relation`` to ``path`` as CSV with a header row.

    Boolean values are written as ``yes`` / ``no`` so the files read naturally
    and round-trip through :func:`read_csv`.
    """
    path = Path(path)
    names = relation.schema.names()
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        for row in relation.iter_rows():
            formatted: list[str] = []
            for name in names:
                value = row[name]
                if isinstance(value, bool):
                    formatted.append("yes" if value else "no")
                else:
                    formatted.append(repr(float(value)))
            writer.writerow(formatted)


def _read_header(reader: Iterator[list[str]], path: Path) -> list[str]:
    """The stripped header row of a CSV reader."""
    try:
        header = next(reader)
    except StopIteration as exc:
        raise RelationError(f"CSV file {path} is empty") from exc
    return [name.strip() for name in header]


def _check_schema_header(schema: Schema, header: Sequence[str], path: Path) -> None:
    """Validate an explicit schema against the file header."""
    unknown = [name for name in header if name not in schema]
    if unknown or len(header) != len(schema):
        raise RelationError(
            f"CSV header {list(header)} does not match schema attributes "
            f"{schema.names()}"
        )


def _check_row_widths(
    rows: Sequence[Sequence[str]], width: int, path: Path, first_row_number: int
) -> None:
    """Reject ragged rows with their 1-based file line number."""
    for offset, row in enumerate(rows):
        if len(row) != width:
            raise RelationError(
                f"{path}:{first_row_number + offset}: expected {width} fields, "
                f"got {len(row)}"
            )


def _parse_columns(
    header: Sequence[str], rows: Sequence[Sequence[str]], schema: Schema
) -> dict[str, np.ndarray]:
    """Convert string rows to typed columns with vectorized numpy casts."""
    if rows:
        transposed = list(zip(*rows))
    else:
        transposed = [() for _ in header]
    columns: dict[str, np.ndarray] = {}
    for name, raw in zip(header, transposed):
        attribute = schema.attribute(name)
        stripped = np.char.strip(np.asarray(raw, dtype=str))
        if attribute.is_boolean:
            columns[name] = _boolean_column(name, stripped)
        else:
            columns[name] = _numeric_column(name, stripped)
    # Order columns to match the schema's attribute order.
    return {attr.name: columns[attr.name] for attr in schema}


def _numeric_column(name: str, stripped: np.ndarray) -> np.ndarray:
    """One vectorized string → float64 cast, with a per-value error message."""
    try:
        return stripped.astype(np.float64)
    except ValueError:
        # Slow path, only when the vectorized cast rejects something: either
        # locate the offending value, or fall back to Python parsing for the
        # few literals (e.g. digit-group underscores) float() accepts but the
        # numpy cast does not.
        parsed = np.empty(stripped.shape[0], dtype=np.float64)
        for position, text in enumerate(stripped):
            try:
                parsed[position] = float(text)
            except ValueError as exc:
                raise RelationError(
                    f"column {name!r}: cannot parse numeric value {str(text)!r}"
                ) from exc
        return parsed


def _boolean_column(name: str, stripped: np.ndarray) -> np.ndarray:
    """Vectorized yes/no-vocabulary lookup → bool."""
    lowered = np.char.lower(stripped)
    truthy = np.isin(lowered, sorted(BOOLEAN_TRUE_LITERALS))
    falsy = np.isin(lowered, sorted(BOOLEAN_FALSE_LITERALS))
    invalid = ~(truthy | falsy)
    if np.any(invalid):
        offender = stripped[invalid][0]
        raise RelationError(
            f"boolean column {name!r}: cannot interpret {str(offender)!r}"
        )
    return truthy


def read_csv(path: str | Path, schema: Schema | None = None) -> Relation:
    """Read a CSV file with a header row into a :class:`Relation`.

    Parameters
    ----------
    path:
        File to read.
    schema:
        Optional explicit schema.  When omitted the schema is inferred with
        :func:`infer_schema` over the whole file; columns that are neither
        Boolean-like nor numeric raise
        :class:`~repro.exceptions.RelationError`.
    """
    path = Path(path)
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        header = _read_header(reader, path)
        rows = [row for row in reader if row]

    _check_row_widths(rows, len(header), path, first_row_number=2)
    if schema is None:
        schema = infer_schema(header, rows)
    else:
        _check_schema_header(schema, header, path)
    return Relation.from_columns(schema, _parse_columns(header, rows, schema))


def read_csv_chunks(
    path: str | Path,
    schema: Schema | None = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> Iterator[Relation]:
    """Yield a CSV file as :class:`Relation` chunks of at most ``chunk_size`` rows.

    Only one chunk of raw rows is resident at a time, so arbitrarily large
    files scan in bounded memory — this is the generator behind
    :class:`repro.pipeline.CSVSource`.

    When ``schema`` is omitted it is inferred from the *first chunk only*
    (the file is not pre-scanned) and then applied to every later chunk; pass
    an explicit schema when the leading rows are not representative — for
    example a column whose early values are all 0/1 but that is numeric
    further down would otherwise be inferred Boolean and fail mid-scan.

    A file with a header but no data rows yields no chunks.
    """
    if chunk_size <= 0:
        raise RelationError("chunk_size must be positive")
    path = Path(path)
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        header = _read_header(reader, path)
        if schema is not None:
            _check_schema_header(schema, header, path)

        rows: list[list[str]] = []
        line = 1  # the header line
        first_row_number = 2
        for row in reader:
            line += 1
            if not row:
                continue
            if not rows:
                first_row_number = line
            rows.append(row)
            if len(rows) == chunk_size:
                _check_row_widths(rows, len(header), path, first_row_number)
                if schema is None:
                    schema = infer_schema(header, rows)
                yield Relation.from_columns(
                    schema, _parse_columns(header, rows, schema)
                )
                rows = []
        if rows:
            _check_row_widths(rows, len(header), path, first_row_number)
            if schema is None:
                schema = infer_schema(header, rows)
            yield Relation.from_columns(schema, _parse_columns(header, rows, schema))


def infer_csv_schema(
    path: str | Path, chunk_size: int = DEFAULT_CHUNK_SIZE
) -> Schema:
    """Infer a schema over the *whole* CSV file in one bounded-memory scan.

    Applies the same column rules as :func:`infer_schema` but to every row
    of the file while holding at most ``chunk_size`` raw rows, so the result
    matches what :func:`read_csv` would infer — unlike the first-chunk-only
    inference :class:`repro.pipeline.CSVSource` uses by default.  Use it to
    build the explicit schema for a source whose leading rows are not
    representative (e.g. a numeric column whose early values are all 0/1)::

        schema = infer_csv_schema("big.csv")
        source = CSVSource("big.csv", schema=schema)
    """
    if chunk_size <= 0:
        raise RelationError("chunk_size must be positive")
    path = Path(path)
    if not path.exists():
        raise RelationError(f"CSV file {path} does not exist")
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        header = _read_header(reader, path)
        has_values = [False] * len(header)
        all_boolean = [True] * len(header)
        all_numeric = [True] * len(header)

        def digest(rows: list[list[str]]) -> None:
            for index, raw in enumerate(zip(*rows)):
                stripped = np.char.strip(np.asarray(raw, dtype=str))
                values = stripped[stripped != ""]
                if values.size == 0:
                    continue
                has_values[index] = True
                if all_boolean[index]:
                    all_boolean[index] = bool(
                        np.isin(
                            np.char.lower(values), sorted(_BOOLEAN_VOCABULARY)
                        ).all()
                    )
                if all_numeric[index]:
                    try:
                        values.astype(np.float64)
                    except ValueError:
                        try:
                            for value in values:
                                float(value)
                        except ValueError:
                            all_numeric[index] = False

        rows: list[list[str]] = []
        first_row_number = 2
        line = 1
        for row in reader:
            line += 1
            if not row:
                continue
            if not rows:
                first_row_number = line
            rows.append(row)
            if len(rows) == chunk_size:
                _check_row_widths(rows, len(header), path, first_row_number)
                digest(rows)
                rows = []
        if rows:
            _check_row_widths(rows, len(header), path, first_row_number)
            digest(rows)

    attributes: list[Attribute] = []
    for index, name in enumerate(header):
        if has_values[index] and all_boolean[index]:
            attributes.append(Attribute.boolean(name))
        elif all_numeric[index] or not has_values[index]:
            attributes.append(Attribute.numeric(name))
        else:
            raise RelationError(
                f"column {name!r} is neither boolean-like nor numeric"
            )
    return Schema(tuple(attributes))


def infer_schema(header: Sequence[str], rows: Iterable[Sequence[str]]) -> Schema:
    """Infer a :class:`Schema` from CSV header and string rows.

    A column is Boolean when every non-empty value belongs to the yes/no
    vocabulary (``yes/no``, ``true/false``, ``0/1`` and single-letter forms);
    otherwise it must parse as a float and becomes numeric.
    """
    rows = list(rows)
    if rows:
        transposed = list(zip(*rows))
    else:
        transposed = [() for _ in header]
    attributes: list[Attribute] = []
    for name, raw in zip(header, transposed):
        stripped = np.char.strip(np.asarray(raw, dtype=str))
        values = stripped[stripped != ""]
        if values.size and np.isin(
            np.char.lower(values), sorted(_BOOLEAN_VOCABULARY)
        ).all():
            attributes.append(Attribute.boolean(name))
            continue
        try:
            values.astype(np.float64)
        except ValueError:
            try:
                for value in values:
                    float(value)
            except ValueError as exc:
                raise RelationError(
                    f"column {name!r} is neither boolean-like nor numeric"
                ) from exc
        attributes.append(Attribute.numeric(name))
    return Schema(tuple(attributes))
