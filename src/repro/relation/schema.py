"""Schema model for the in-memory relational substrate.

The paper works over a "database universal relation" whose attributes are
either *Boolean* (``yes`` / ``no``, e.g. ``CardLoan``) or *numeric* (e.g.
``Balance`` or ``Age``).  This module defines the schema vocabulary used by
:class:`repro.relation.Relation`: an :class:`AttributeKind`, an
:class:`Attribute` descriptor, and a :class:`Schema` which is an ordered,
name-indexed collection of attributes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Iterator, Sequence

from repro.exceptions import SchemaError

__all__ = ["AttributeKind", "Attribute", "Schema"]


class AttributeKind(Enum):
    """The two attribute families the paper distinguishes."""

    NUMERIC = "numeric"
    BOOLEAN = "boolean"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Attribute:
    """A single named attribute of a relation.

    Parameters
    ----------
    name:
        Attribute name, unique within a schema.
    kind:
        Whether the attribute holds numeric values or Boolean flags.
    description:
        Optional human-readable description (used by dataset generators and
        the CLI when printing mined rules).  Pure metadata: it does not
        participate in equality or hashing, so a schema read back from CSV
        compares equal to the schema it was written from.
    """

    name: str
    kind: AttributeKind
    description: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise SchemaError("attribute name must be a non-empty string")
        if not isinstance(self.kind, AttributeKind):
            raise SchemaError(
                f"attribute {self.name!r}: kind must be an AttributeKind, "
                f"got {type(self.kind).__name__}"
            )

    @property
    def is_numeric(self) -> bool:
        """``True`` when the attribute holds numeric values."""
        return self.kind is AttributeKind.NUMERIC

    @property
    def is_boolean(self) -> bool:
        """``True`` when the attribute holds Boolean flags."""
        return self.kind is AttributeKind.BOOLEAN

    @staticmethod
    def numeric(name: str, description: str = "") -> "Attribute":
        """Convenience constructor for a numeric attribute."""
        return Attribute(name, AttributeKind.NUMERIC, description)

    @staticmethod
    def boolean(name: str, description: str = "") -> "Attribute":
        """Convenience constructor for a Boolean attribute."""
        return Attribute(name, AttributeKind.BOOLEAN, description)


@dataclass(frozen=True)
class Schema:
    """An ordered collection of uniquely named attributes.

    The schema is immutable; derived schemas are produced with
    :meth:`project` and :meth:`extend`.
    """

    attributes: tuple[Attribute, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        attrs = tuple(self.attributes)
        object.__setattr__(self, "attributes", attrs)
        for attr in attrs:
            if not isinstance(attr, Attribute):
                raise SchemaError(
                    f"schema entries must be Attribute instances, got {attr!r}"
                )
        names = [a.name for a in attrs]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise SchemaError(f"duplicate attribute names: {sorted(duplicates)}")

    # -- construction helpers -------------------------------------------------

    @staticmethod
    def of(*attributes: Attribute) -> "Schema":
        """Build a schema from attributes given as positional arguments."""
        return Schema(tuple(attributes))

    @staticmethod
    def from_pairs(pairs: Iterable[tuple[str, AttributeKind | str]]) -> "Schema":
        """Build a schema from ``(name, kind)`` pairs.

        ``kind`` may be an :class:`AttributeKind` or its string value
        (``"numeric"`` / ``"boolean"``).
        """
        attrs = []
        for name, kind in pairs:
            if isinstance(kind, str):
                try:
                    kind = AttributeKind(kind)
                except ValueError as exc:
                    raise SchemaError(f"unknown attribute kind {kind!r}") from exc
            attrs.append(Attribute(name, kind))
        return Schema(tuple(attrs))

    # -- lookup ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __contains__(self, name: object) -> bool:
        return any(a.name == name for a in self.attributes)

    def __getitem__(self, name: str) -> Attribute:
        return self.attribute(name)

    def attribute(self, name: str) -> Attribute:
        """Return the attribute called ``name``.

        Raises
        ------
        SchemaError
            If no attribute with that name exists.
        """
        for attr in self.attributes:
            if attr.name == name:
                return attr
        raise SchemaError(
            f"unknown attribute {name!r}; known attributes: {self.names()}"
        )

    def index_of(self, name: str) -> int:
        """Return the positional index of attribute ``name``."""
        for i, attr in enumerate(self.attributes):
            if attr.name == name:
                return i
        raise SchemaError(
            f"unknown attribute {name!r}; known attributes: {self.names()}"
        )

    def names(self) -> list[str]:
        """Names of all attributes, in schema order."""
        return [a.name for a in self.attributes]

    def numeric_names(self) -> list[str]:
        """Names of the numeric attributes, in schema order."""
        return [a.name for a in self.attributes if a.is_numeric]

    def boolean_names(self) -> list[str]:
        """Names of the Boolean attributes, in schema order."""
        return [a.name for a in self.attributes if a.is_boolean]

    # -- derivation -------------------------------------------------------------

    def project(self, names: Sequence[str]) -> "Schema":
        """Return a new schema restricted to ``names`` (in the given order)."""
        return Schema(tuple(self.attribute(n) for n in names))

    def extend(self, *attributes: Attribute) -> "Schema":
        """Return a new schema with ``attributes`` appended."""
        return Schema(self.attributes + tuple(attributes))

    def describe(self) -> str:
        """Return a one-line-per-attribute human readable description."""
        lines = []
        for attr in self.attributes:
            suffix = f"  -- {attr.description}" if attr.description else ""
            lines.append(f"{attr.name}: {attr.kind.value}{suffix}")
        return "\n".join(lines)
