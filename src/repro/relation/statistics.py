"""Support / confidence statistics over relations.

Thin, well-named helpers implementing Definitions 2.2 and 2.3 of the paper
plus the contingency counts used by the rule-quality reports.  They are kept
separate from :class:`repro.relation.Relation` so the mining layers can work
with plain conditions and relations without reaching into relation internals.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.relation.conditions import Condition
from repro.relation.relation import Relation

__all__ = [
    "support",
    "confidence",
    "lift",
    "ContingencyTable",
    "contingency_table",
]


def support(relation: Relation, condition: Condition) -> float:
    """Support of ``condition``: the fraction of tuples meeting it."""
    return relation.support(condition)


def confidence(relation: Relation, presumptive: Condition, objective: Condition) -> float:
    """Confidence of ``presumptive ⇒ objective`` (Definition 2.3)."""
    return relation.confidence(presumptive, objective)


def lift(relation: Relation, presumptive: Condition, objective: Condition) -> float:
    """Lift of the rule: confidence divided by the objective's base rate.

    A lift above 1 means the presumptive condition raises the probability of
    the objective condition relative to the whole relation — exactly the
    "much higher than the average probability" interestingness criterion of
    the paper's introduction.  Returns 0.0 when the base rate is zero.
    """
    base_rate = relation.support(objective)
    if base_rate == 0.0:
        return 0.0
    return relation.confidence(presumptive, objective) / base_rate


@dataclass(frozen=True)
class ContingencyTable:
    """2×2 contingency counts for a rule ``C1 ⇒ C2``.

    Attributes
    ----------
    both:
        Tuples meeting C1 and C2.
    only_presumptive:
        Tuples meeting C1 but not C2.
    only_objective:
        Tuples meeting C2 but not C1.
    neither:
        Tuples meeting neither condition.
    """

    both: int
    only_presumptive: int
    only_objective: int
    neither: int

    @property
    def total(self) -> int:
        """Total number of tuples."""
        return self.both + self.only_presumptive + self.only_objective + self.neither

    @property
    def presumptive_count(self) -> int:
        """Tuples meeting the presumptive condition."""
        return self.both + self.only_presumptive

    @property
    def objective_count(self) -> int:
        """Tuples meeting the objective condition."""
        return self.both + self.only_objective

    @property
    def support(self) -> float:
        """Support of the presumptive condition."""
        return self.presumptive_count / self.total if self.total else 0.0

    @property
    def confidence(self) -> float:
        """Confidence of the rule."""
        if self.presumptive_count == 0:
            return 0.0
        return self.both / self.presumptive_count

    @property
    def lift(self) -> float:
        """Lift of the rule with respect to the objective's base rate."""
        if self.total == 0 or self.objective_count == 0 or self.presumptive_count == 0:
            return 0.0
        base_rate = self.objective_count / self.total
        return self.confidence / base_rate


def contingency_table(
    relation: Relation, presumptive: Condition, objective: Condition
) -> ContingencyTable:
    """Compute the 2×2 contingency table of a rule over ``relation``."""
    presumptive_mask = presumptive.mask(relation)
    objective_mask = objective.mask(relation)
    both = int((presumptive_mask & objective_mask).sum())
    only_presumptive = int((presumptive_mask & ~objective_mask).sum())
    only_objective = int((~presumptive_mask & objective_mask).sum())
    neither = relation.num_tuples - both - only_presumptive - only_objective
    return ContingencyTable(both, only_presumptive, only_objective, neither)
