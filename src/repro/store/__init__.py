"""Persistent profile store: zero-scan serving of executed scan plans.

PR after PR collapsed the cost of a mining workload down to **one physical
scan** of the data; this package removes the remaining scan for repeated
and append-only workloads.  A :class:`ProfileStore` persists the merged
counting partials of an executed :class:`~repro.pipeline.ScanPlan` — bucket,
average, presumptive, and grid payloads plus the sampled reservoir
boundaries — to disk as an ``.npz`` payload under a JSON manifest keyed by
``(source fingerprint, plan signature, seed)``:

* a repeated request over unchanged data is a **manifest hit**: the stored
  partials deserialize straight into a
  :class:`~repro.pipeline.PlanResults` with *zero* physical source scans;
* an append-only grown source (a CSV grown at the tail, a
  :class:`~repro.pipeline.ChunkedSource` with new chunks) counts **only the
  new tuples** with the fused kernel and merges the tail partials into the
  stored payloads in chunk order — boundaries stay frozen at their snapshot
  values while a tracked staleness fraction rises, and crossing the
  configurable rebuild threshold triggers a full two-pass refresh;
* anything the store cannot *prove* matches — truncated payloads, manifest
  mismatches, fingerprint drift — raises a typed
  :class:`~repro.exceptions.StoreError` instead of ever serving wrong
  counts.

Every mutation is transactional through the write-ahead intent journal in
:mod:`repro.store.wal` (journal record → payload tmp-write → atomic
manifest swap → journal commit): a process killed at any byte reopens to
either the old snapshot or the new one in full, with the journal replayed
or rolled back on the next open.  ``ProfileStore.verify()`` audits every
snapshot read-only, and ``ProfileStore.refresh()`` forces the full
boundary re-freeze the ingest daemon's drift policies trigger.

The differential harness in ``tests/store/`` locks the contract down:
store-hit profiles are bit-identical to fresh scans across the full
source × executor matrix, and append-then-serve is bit-identical to
rebuild-with-frozen-boundaries.
"""

from repro.store.lock import StoreLock
from repro.store.profile_store import (
    ProfileStore,
    ShardCheckpointStore,
    plan_signature,
)
from repro.store.wal import (
    CRASH_POINT_ENV,
    IntentJournal,
    STORE_CRASH_POINTS,
    crash_point,
)

__all__ = [
    "CRASH_POINT_ENV",
    "IntentJournal",
    "ProfileStore",
    "STORE_CRASH_POINTS",
    "ShardCheckpointStore",
    "StoreLock",
    "crash_point",
    "plan_signature",
]
