"""Write-ahead intent journal for :class:`~repro.store.ProfileStore`.

Every store mutation follows one fixed write sequence::

    journal record          (tmp + atomic replace of journal.json)
    payload write           (tmp + atomic replace of <entry>.npz)
    manifest swap           (tmp + atomic replace of manifest.json)
    journal commit          (unlink journal.json)

Each step is individually atomic, so a process killed at *any* byte leaves
exactly one of five on-disk states — and the journal names which one.  On
the next open, :meth:`IntentJournal.recover` inspects the manifest:

* the manifest already names the journaled payload → the swap landed; the
  write **rolls forward** (the replaced payload file is garbage, unlink it);
* the manifest does not name it → the swap never landed; the write **rolls
  back** (the new payload file, if any, is an orphan, unlink it).

Either way the store reopens to exactly the old snapshot or exactly the new
one, never a mix.  A journal that is itself torn (the process died inside
the journal's own tmp write) reads as *no intent* — nothing else was
written yet, so there is nothing to undo beyond sweeping the tmp file.

The module also hosts the crash-point hooks the chaos drills arm: naming a
stage in the ``REPRO_CRASH_POINTS`` environment variable makes the process
``SIGKILL`` itself the instant the write sequence reaches that stage — a
real ``kill -9``, no cleanup, no ``atexit`` — which is how the test
harness drives a subprocess daemon into every journal boundary.
"""

from __future__ import annotations

import json
import os
import signal
from pathlib import Path

from repro.exceptions import StoreError

__all__ = [
    "CRASH_POINT_ENV",
    "IntentJournal",
    "STORE_CRASH_POINTS",
    "crash_point",
]

_JOURNAL = "journal.json"
_JOURNAL_VERSION = 1

#: Environment variable holding a comma-separated list of armed crash points.
CRASH_POINT_ENV = "REPRO_CRASH_POINTS"

#: The four stages of the store's write sequence, in write order — the kill
#: matrix the chaos drills iterate.
STORE_CRASH_POINTS = (
    "store.pre_journal",
    "store.post_journal",
    "store.post_payload",
    "store.pre_commit",
)


def crash_point(name: str) -> None:
    """Die by ``SIGKILL`` when ``name`` is armed via ``REPRO_CRASH_POINTS``.

    A no-op unless the environment variable names this exact point, so the
    hooks cost one ``os.environ`` lookup in production.  The kill is the
    real signal, not an exception: no ``finally`` blocks run, no buffers
    flush — the closest a test can get to yanking the power cord.
    """
    armed = os.environ.get(CRASH_POINT_ENV)
    if not armed:
        return
    if name in {point.strip() for point in armed.split(",") if point.strip()}:
        os.kill(os.getpid(), signal.SIGKILL)


class IntentJournal:
    """The store's single-slot write-ahead intent log.

    One mutation is in flight at a time (the store is a single-writer
    design), so the journal is one JSON file holding one intent record:
    the payload file the write will land, the identity it lands under
    (plan signature, seed, fingerprint token), and the payload file it
    replaces.  :meth:`begin` writes it atomically, :meth:`commit` removes
    it; :meth:`recover` resolves a record left behind by a crash.
    """

    def __init__(self, directory: str | Path) -> None:
        self._directory = Path(directory)

    @property
    def path(self) -> Path:
        """The journal file location."""
        return self._directory / _JOURNAL

    def begin(self, record: dict) -> None:
        """Durably record the intent before any other byte is written."""
        self._directory.mkdir(parents=True, exist_ok=True)
        payload = dict(record)
        payload["version"] = _JOURNAL_VERSION
        temporary = self.path.with_name(self.path.name + ".tmp")
        temporary.write_text(
            json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8"
        )
        temporary.replace(self.path)

    def commit(self) -> None:
        """The manifest durably names the new payload: retire the intent."""
        try:
            self.path.unlink()
        except OSError:  # pragma: no cover - cleanup is best-effort
            pass

    def pending(self) -> dict | None:
        """The in-flight intent record, or ``None`` when no write crashed.

        A torn or malformed journal file reads as ``None`` too: the journal
        write is the *first* step of the sequence, so a journal that never
        became durable proves nothing else was written.
        """
        try:
            record = json.loads(self.path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            return None
        if (
            not isinstance(record, dict)
            or record.get("version") != _JOURNAL_VERSION
            or not isinstance(record.get("payload"), str)
        ):
            return None
        return record

    def recover(self) -> str | None:
        """Resolve a crashed write; returns ``"forward"``, ``"rollback"``,
        or ``None`` when the store is clean.

        Must run before the manifest is trusted — the store calls it at the
        top of every manifest read, so merely opening the store heals it.
        """
        record = self.pending()
        had_journal_tmp = (
            self._directory / (_JOURNAL + ".tmp")
        ).exists()
        if record is None:
            if had_journal_tmp or self.path.exists():
                # A torn journal (or an unreadable one): the intent never
                # became durable, so only the journal debris needs sweeping.
                self.commit()
                self._sweep()
                return "rollback"
            return None
        manifest_path = self._directory / "manifest.json"
        entries: list[dict] = []
        garbage: list[dict] = []
        if manifest_path.exists():
            try:
                manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
                entries = list(manifest.get("entries") or [])
                garbage = [
                    item
                    for item in (manifest.get("garbage") or [])
                    if isinstance(item, dict)
                ]
            except (OSError, ValueError) as exc:
                raise StoreError(
                    f"store manifest {manifest_path} is unreadable during "
                    f"journal recovery: {exc}"
                ) from exc

        def referenced(name: str) -> bool:
            # Garbage-listed payloads are still referenced: a reader holding
            # the previous manifest may be reading them through the grace
            # period; the store's next locked write purges them instead.
            return any(
                entry.get("payload") == name for entry in entries
            ) or any(item.get("payload") == name for item in garbage)

        committed = any(
            entry.get("payload") == record["payload"]
            and entry.get("token") == record.get("token")
            and entry.get("plan_signature") == record.get("plan_signature")
            and entry.get("seed") == record.get("seed")
            for entry in entries
        )
        if committed:
            # Roll forward: the swap landed, so the replaced payload file is
            # the garbage the crashed process never got to unlink.
            replaced = record.get("replaced")
            if (
                isinstance(replaced, str)
                and replaced != record["payload"]
                and not referenced(replaced)
            ):
                self._unlink(replaced)
            action = "forward"
        else:
            # Roll back: the swap never landed, so the new payload file (if
            # the crash came after its write) is an orphan no entry names.
            if not referenced(record["payload"]):
                self._unlink(record["payload"])
            action = "rollback"
        self.commit()
        self._sweep()
        return action

    def _unlink(self, name: str) -> None:
        try:
            (self._directory / name).unlink()
        except OSError:  # pragma: no cover - cleanup is best-effort
            pass

    def _sweep(self) -> None:
        """Drop tmp files a crash left mid-replace (top level only)."""
        if not self._directory.is_dir():
            return
        for path in self._directory.glob("*.tmp"):
            try:
                path.unlink()
            except OSError:  # pragma: no cover - cleanup is best-effort
                pass
