"""Cross-process advisory writer lock for a :class:`ProfileStore` directory.

The store is a single-writer design: every mutation is one WAL transaction
(journal record → payload swap → manifest swap → journal commit).  That
transaction is crash-atomic but it was never *concurrency*-atomic — two
writers (an ingest daemon and a service worker, say) could interleave reads
and swaps and lose each other's updates, and a reader opening the store
mid-transaction would see the live writer's intent journal and "recover" it,
rolling the writer back under its feet.

:class:`StoreLock` closes both holes with an advisory ``flock`` on a
``.store.lock`` file inside the store directory:

* writers hold it (blocking) for the whole read-manifest → swap → commit
  sequence, so mutations serialize across processes **and** across threads —
  every acquisition opens a fresh file descriptor, and ``flock`` conflicts
  between two open file descriptions even inside one process;
* readers try it (non-blocking) before resolving a leftover journal: if the
  lock is busy, a live writer owns that intent and recovery must not run.

The lock is re-entrant per (instance, thread), so a locked mutation can call
the shared manifest-reading helpers without deadlocking on itself.  On
platforms without ``fcntl`` the lock degrades to in-process-only exclusion
(a process-wide mutex per resolved directory) — the cross-thread guarantees
survive, only cross-process exclusion is lost.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path

try:  # pragma: no cover - import probe
    import fcntl
except ImportError:  # pragma: no cover - non-posix fallback
    fcntl = None  # type: ignore[assignment]

__all__ = ["LOCK_FILE", "StoreLock"]

#: The lock file's name inside the store directory.
LOCK_FILE = ".store.lock"

#: Fallback registry of in-process mutexes keyed by resolved directory, used
#: when ``fcntl`` is unavailable.  Never pruned: one entry per distinct store
#: directory the process ever locked.
_FALLBACK_MUTEXES: dict[str, threading.Lock] = {}
_FALLBACK_REGISTRY_LOCK = threading.Lock()


def _fallback_mutex(directory: Path) -> threading.Lock:
    key = str(directory.resolve())
    with _FALLBACK_REGISTRY_LOCK:
        mutex = _FALLBACK_MUTEXES.get(key)
        if mutex is None:
            mutex = threading.Lock()
            _FALLBACK_MUTEXES[key] = mutex
        return mutex


class StoreLock:
    """Advisory exclusive lock on one store directory.

    Usable as a context manager (blocking acquire) or through
    :meth:`acquire` / :meth:`release` with ``blocking=False`` for the
    reader-side recovery probe.
    """

    def __init__(self, directory: str | Path) -> None:
        self._directory = Path(directory)
        self._local = threading.local()

    @property
    def path(self) -> Path:
        """The lock file location."""
        return self._directory / LOCK_FILE

    def _state(self) -> dict:
        state = getattr(self._local, "state", None)
        if state is None:
            state = {"fd": None, "depth": 0, "mutex": None}
            self._local.state = state
        return state

    @property
    def held(self) -> bool:
        """Whether the calling thread currently holds this lock."""
        return self._state()["depth"] > 0

    def acquire(self, blocking: bool = True) -> bool:
        """Take the lock; returns ``False`` only for a failed non-blocking try."""
        state = self._state()
        if state["depth"] > 0:
            state["depth"] += 1
            return True
        if fcntl is None:  # pragma: no cover - non-posix fallback
            mutex = _fallback_mutex(self._directory)
            if not mutex.acquire(blocking=blocking):
                return False
            state["mutex"] = mutex
            state["depth"] = 1
            return True
        self._directory.mkdir(parents=True, exist_ok=True)
        fd = os.open(str(self.path), os.O_RDWR | os.O_CREAT, 0o644)
        flags = fcntl.LOCK_EX | (0 if blocking else fcntl.LOCK_NB)
        try:
            fcntl.flock(fd, flags)
        except OSError:
            os.close(fd)
            return False
        state["fd"] = fd
        state["depth"] = 1
        return True

    def release(self) -> None:
        """Release one acquisition (the outermost close drops the flock)."""
        state = self._state()
        if state["depth"] <= 0:
            raise RuntimeError("StoreLock.release() without a matching acquire")
        state["depth"] -= 1
        if state["depth"] > 0:
            return
        if state["fd"] is not None:
            os.close(state["fd"])  # closing the fd releases its flock
            state["fd"] = None
        if state["mutex"] is not None:  # pragma: no cover - non-posix fallback
            state["mutex"].release()
            state["mutex"] = None

    def __enter__(self) -> "StoreLock":
        self.acquire(blocking=True)
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()
