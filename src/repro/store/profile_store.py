"""The :class:`ProfileStore`: persisted scan plans, served without scanning.

On-disk layout (one directory per store)::

    <directory>/
        manifest.json       # entry metadata, keyed by payload file name
        <entry-key>.npz     # merged PlanChunkCounts + per-request cuts + meta

Every entry records the executing builder's plan signature and seed, the
source fingerprint of the snapshot (``token`` over the first ``length``
source units), and the staleness bookkeeping (``base_tuples`` counted when
the boundaries were last sampled, ``num_tuples`` now).  The payload ``.npz``
additionally embeds the signature/seed/token it was written for, so a
manifest that disagrees with its payload is detected as corruption rather
than trusted.

Matching is content-addressed and append-aware: an exact fingerprint match
serves with zero scans; a source whose re-digested prefix equals the stored
token grew append-only and is counted from ``scan_tail`` into the stored
partials; anything else is a different source and builds fresh.  The store
never serves counts it cannot prove correct — every corruption or drift
path raises :class:`~repro.exceptions.StoreError`.
"""

from __future__ import annotations

import hashlib
import json
import time
import zipfile
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.bucketing.base import Bucketing
from repro.bucketing.counting import (
    ChunkCounts,
    GridChunkCounts,
    PlanChunkCounts,
)
from repro.exceptions import (
    BucketingError,
    RelationError,
    SchemaError,
    SourceChangedError,
    StoreError,
)
from repro.pipeline.builder import PlanResults, ProfileBuilder, ScanPlan
from repro.pipeline.sources import DataSource, SourceFingerprint
from repro.relation.schema import Schema
from repro.store.lock import StoreLock
from repro.store.wal import IntentJournal, crash_point

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pipeline.builder import ProfileRequest

__all__ = ["ProfileStore", "ShardCheckpointStore", "plan_signature"]

_MANIFEST = "manifest.json"
_MANIFEST_VERSION = 1

#: Fraction of tuples counted after the boundary snapshot at which the
#: almost-equi-depth guarantee is considered rotten enough to re-sample.
DEFAULT_REBUILD_THRESHOLD = 0.25

#: Seconds a replaced payload file stays on disk after the manifest stopped
#: naming it.  A reader that loaded the manifest just before an append or
#: rebuild swap still holds the old entry and must be able to open its
#: payload; retired payloads therefore move to the manifest's ``garbage``
#: list and are only unlinked by a later (locked) write once this grace
#: period has passed — far longer than any reader holds a manifest.
DEFAULT_GARBAGE_GRACE_SECONDS = 60.0


def plan_signature(builder: ProfileBuilder, plan: ScanPlan) -> str:
    """Deterministic identity of *what* a plan execution computes.

    Covers the ordered request list (kinds, attributes, condition reprs,
    bucket-count overrides) plus the builder parameters that shape the
    result (``num_buckets``, ``sample_factor``).  Executor choice is
    deliberately excluded: all executors produce bit-identical profiles, so
    a store built under ``multiprocessing`` serves ``serial`` runs and vice
    versa.  The sampling ``seed`` is excluded too — it is a separate
    component of the manifest key, as two seeds genuinely produce different
    boundaries.
    """
    descriptor = {
        "version": _MANIFEST_VERSION,
        "num_buckets": builder.num_buckets,
        "sample_factor": builder.sample_factor,
        "requests": [
            {
                "kind": request.kind,
                "attribute": request.attribute,
                "objectives": [repr(o) for o in request.objectives],
                "targets": list(request.targets),
                "objective": (
                    None if request.objective is None else repr(request.objective)
                ),
                "presumptives": [repr(p) for p in request.presumptives],
                "column_attribute": request.column_attribute,
                "num_buckets": request.num_buckets,
                "column_num_buckets": request.column_num_buckets,
            }
            for request in plan.requests
        ],
    }
    payload = json.dumps(descriptor, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _schema_pairs(source: DataSource) -> list[list[str]] | None:
    """The source schema as JSON-able ``[name, kind]`` pairs (best effort)."""
    try:
        return [
            [attribute.name, attribute.kind.value] for attribute in source.schema
        ]
    except Exception:  # pragma: no cover - schema discovery is source-defined
        return None


def _expected_rows(request: "ProfileRequest") -> tuple[int, int, int]:
    """``(conditional, sums, bound_masks)`` row counts a request's part carries."""
    if request.kind == "grid":
        return len(request.objectives), 0, 0
    if request.kind == "presumptive":
        return 2 * len(request.presumptives), 0, len(request.presumptives)
    return len(request.objectives), len(request.targets), 0


class ProfileStore:
    """Persist executed scan plans; serve repeats with zero physical scans.

    Parameters
    ----------
    directory:
        Store location (created on first write).
    rebuild_threshold:
        Staleness fraction — tuples appended since the boundary snapshot
        over total tuples — past which an append triggers a full two-pass
        refresh (fresh reservoir boundaries) instead of another frozen-
        boundary merge.
    garbage_grace_seconds:
        How long a replaced payload file outlives the manifest swap that
        retired it (see :data:`DEFAULT_GARBAGE_GRACE_SECONDS`).  ``0``
        purges each retired payload at the next write.

    Writers — :meth:`put`, :meth:`append`, :meth:`refresh`, and the
    mutating paths of :meth:`serve` — serialize on a cross-process advisory
    file lock (:class:`~repro.store.lock.StoreLock`), so concurrent daemons
    and service workers over one directory never interleave transactions.
    Readers never block: manifest swaps are atomic, and the garbage grace
    period keeps every payload an already-read manifest names openable.

    Example
    -------
    >>> from repro.pipeline import CSVSource, ProfileBuilder, ScanPlan
    >>> from repro.store import ProfileStore
    >>> builder = ProfileBuilder(num_buckets=100, seed=7)
    >>> plan = ScanPlan()
    >>> _ = plan.add_bucket("balance", objectives=[objective])  # doctest: +SKIP
    >>> store = ProfileStore("profile-store")  # doctest: +SKIP
    >>> results = builder.execute_plan(source, plan, store=store)  # doctest: +SKIP
    >>> store.last_status  # doctest: +SKIP
    'build'
    >>> results = builder.execute_plan(source, plan, store=store)  # doctest: +SKIP
    >>> store.last_status  # zero physical scans this time  # doctest: +SKIP
    'hit'
    """

    def __init__(
        self,
        directory: str | Path,
        rebuild_threshold: float = DEFAULT_REBUILD_THRESHOLD,
        garbage_grace_seconds: float = DEFAULT_GARBAGE_GRACE_SECONDS,
    ) -> None:
        if not 0.0 < rebuild_threshold <= 1.0:
            raise StoreError("rebuild_threshold must be in (0, 1]")
        if garbage_grace_seconds < 0.0:
            raise StoreError("garbage_grace_seconds must be non-negative")
        self._directory = Path(directory)
        self._rebuild_threshold = float(rebuild_threshold)
        self._garbage_grace = float(garbage_grace_seconds)
        self._last_status: str | None = None
        self._journal = IntentJournal(self._directory)
        self._writer_lock = StoreLock(self._directory)

    # -- plumbing --------------------------------------------------------------

    @property
    def directory(self) -> Path:
        """The store's on-disk location."""
        return self._directory

    @property
    def rebuild_threshold(self) -> float:
        """Staleness fraction that triggers a full boundary refresh."""
        return self._rebuild_threshold

    @property
    def last_status(self) -> str | None:
        """How the most recent :meth:`serve` answered.

        One of ``"hit"`` (zero scans), ``"append"`` (tail-only count),
        ``"rebuild"`` (staleness crossed the threshold), ``"build"`` (no
        usable snapshot), or ``"unstored"`` (the source has no
        fingerprint, so nothing was cached).
        """
        return self._last_status

    def _manifest_path(self) -> Path:
        return self._directory / _MANIFEST

    def _recover_crashed_writes(self) -> None:
        """Resolve a leftover journal — but never a *live* writer's intent.

        A journal file on disk is ambiguous: either a writer crashed
        mid-transaction (recovery must resolve it) or a writer in another
        process/thread is mid-transaction right now (recovery would roll it
        back under its feet, unlinking its payload and sweeping its tmp
        files).  The writer lock disambiguates: a crashed writer's lock is
        free, a live writer's is held.  Recovery therefore runs only when
        this thread already owns the lock (it *is* the writer, so any
        pending intent predates its transaction) or when a non-blocking
        try-acquire succeeds.
        """
        if self._writer_lock.held:
            self._journal.recover()
            return
        journal_path = self._journal.path
        if (
            not journal_path.exists()
            and not journal_path.with_name(journal_path.name + ".tmp").exists()
        ):
            return  # the common clean case: no intent, nothing to heal
        if not self._writer_lock.acquire(blocking=False):
            return  # a live writer owns this intent; not ours to resolve
        try:
            self._journal.recover()
        finally:
            self._writer_lock.release()

    def _read_manifest(self) -> dict:
        # A crashed write leaves its intent in the journal; resolving it
        # here means merely *opening* the store heals it — every public
        # operation starts with a manifest read.
        self._recover_crashed_writes()
        path = self._manifest_path()
        if not path.exists():
            return {"version": _MANIFEST_VERSION, "entries": []}
        try:
            manifest = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise StoreError(f"store manifest {path} is unreadable: {exc}") from exc
        if (
            not isinstance(manifest, dict)
            or not isinstance(manifest.get("entries"), list)
        ):
            raise StoreError(f"store manifest {path} is malformed")
        if manifest.get("version") != _MANIFEST_VERSION:
            raise StoreError(
                f"store manifest {path} has unsupported version "
                f"{manifest.get('version')!r}"
            )
        return manifest

    def _write_manifest(self, manifest: dict) -> None:
        self._directory.mkdir(parents=True, exist_ok=True)
        path = self._manifest_path()
        text = json.dumps(manifest, indent=2, sort_keys=True)
        temporary = path.with_suffix(".json.tmp")
        temporary.write_text(text, encoding="utf-8")
        temporary.replace(path)

    @staticmethod
    def _find_candidates(
        manifest: dict, signature: str, seed: int
    ) -> list[dict]:
        return [
            entry
            for entry in manifest["entries"]
            if entry.get("plan_signature") == signature
            and entry.get("seed") == seed
        ]

    # -- serialization ---------------------------------------------------------

    def _payload_state(
        self, results: PlanResults, plan: ScanPlan, signature: str, seed: int,
        token: str,
    ) -> dict[str, np.ndarray]:
        state = PlanChunkCounts(list(results.parts)).to_state()
        for request_id in range(len(plan)):
            for axis, bucketing in enumerate(
                results.request_bucketings(request_id)
            ):
                state[f"bucketing{request_id}.{axis}"] = bucketing.cuts
        state["meta.signature"] = np.asarray(signature)
        state["meta.seed"] = np.int64(seed)
        state["meta.token"] = np.asarray(token)
        return state

    def _load_payload(
        self, entry: dict, plan: ScanPlan, signature: str, seed: int
    ) -> tuple[list[ChunkCounts | GridChunkCounts], list[tuple[Bucketing, ...]]]:
        """Deserialize and *validate* one entry's payload.

        Every failure mode — unreadable archive, truncated member, missing
        field, meta that disagrees with the manifest or the request — is a
        :class:`StoreError`; the store never guesses.
        """
        path = self._directory / entry["payload"]
        try:
            with np.load(path, allow_pickle=False) as archive:
                arrays = {key: np.array(archive[key]) for key in archive.files}
        except (OSError, ValueError, KeyError, zipfile.BadZipFile, EOFError) as exc:
            raise StoreError(
                f"store payload {path} is unreadable or truncated: {exc}"
            ) from exc
        try:
            meta_signature = str(arrays["meta.signature"].item())
            meta_seed = int(arrays["meta.seed"])
            meta_token = str(arrays["meta.token"].item())
        except KeyError as exc:
            raise StoreError(
                f"store payload {path} is missing its meta header"
            ) from exc
        if meta_signature != signature or meta_signature != entry.get(
            "plan_signature"
        ):
            raise StoreError(
                f"store payload {path} was written for a different plan "
                "signature than the manifest claims"
            )
        if meta_seed != seed or meta_seed != entry.get("seed"):
            raise StoreError(
                f"store payload {path} was written for seed {meta_seed}, but "
                f"the manifest entry claims seed {entry.get('seed')} and the "
                f"builder requests seed {seed}"
            )
        if meta_token != entry.get("token"):
            raise StoreError(
                f"store payload {path} was written for a different source "
                "fingerprint than the manifest claims"
            )
        try:
            totals = PlanChunkCounts.from_state(arrays)
        except BucketingError as exc:
            raise StoreError(f"store payload {path} is corrupt: {exc}") from exc

        requests = list(entry.get("requests", []))
        bucketings: list[tuple[Bucketing, ...]] = []
        for request_id, kind in enumerate(requests):
            axes = 2 if kind == "grid" else 1
            cuts = []
            for axis in range(axes):
                key = f"bucketing{request_id}.{axis}"
                if key not in arrays:
                    raise StoreError(
                        f"store payload {path} is missing the bucketing of "
                        f"request {request_id}"
                    )
                cuts.append(arrays[key])
            try:
                bucketings.append(tuple(Bucketing(c) for c in cuts))
            except BucketingError as exc:
                raise StoreError(
                    f"store payload {path} holds invalid bucket cuts: {exc}"
                ) from exc
        if len(totals.parts) != len(requests):
            raise StoreError(
                f"store payload {path} holds {len(totals.parts)} parts for "
                f"{len(requests)} requests"
            )
        return totals.parts, bucketings

    def _validate_against_plan(
        self,
        parts: Sequence[ChunkCounts | GridChunkCounts],
        bucketings: Sequence[tuple[Bucketing, ...]],
        plan: ScanPlan,
    ) -> None:
        """Structural proof that a payload answers exactly this plan."""
        requests = plan.requests
        if len(parts) != len(requests):
            raise StoreError(
                "stored payload does not match the plan's request count"
            )
        for request, part, resolved in zip(requests, parts, bucketings):
            conditional_rows, sum_rows, bound_rows = _expected_rows(request)
            if request.kind == "grid":
                if not isinstance(part, GridChunkCounts):
                    raise StoreError(
                        "stored payload kind does not match the grid request"
                    )
                shape = (resolved[0].num_buckets, resolved[1].num_buckets)
                if part.sizes.shape != shape or part.conditional.shape != (
                    conditional_rows,
                    *shape,
                ):
                    raise StoreError(
                        "stored grid payload shape does not match its bucketings"
                    )
                continue
            if not isinstance(part, ChunkCounts):
                raise StoreError(
                    "stored payload kind does not match the 1-D request"
                )
            buckets = resolved[0].num_buckets
            assert part.mask_lows is not None
            if (
                part.sizes.shape != (buckets,)
                or part.conditional.shape != (conditional_rows, buckets)
                or part.sums.shape != (sum_rows, buckets)
                or part.mask_lows.shape != (bound_rows, buckets)
            ):
                raise StoreError(
                    "stored payload shape does not match its request"
                )

    # -- manifest bookkeeping --------------------------------------------------

    def _store_entry(
        self,
        manifest: dict,
        plan: ScanPlan,
        results: PlanResults,
        signature: str,
        seed: int,
        fingerprint: SourceFingerprint,
        base_tuples: int,
        schema: list[list[str]] | None = None,
        previous: dict | None = None,
    ) -> dict:
        assert self._writer_lock.held, "store mutation outside the writer lock"
        entries = manifest["entries"]
        replaced = previous
        if replaced is None:
            # A same-identity entry (same plan, seed, snapshot token) is a
            # re-run of the same build: overwrite it in place.
            for existing in entries:
                if (
                    existing.get("plan_signature") == signature
                    and existing.get("seed") == seed
                    and existing.get("token") == fingerprint.token
                ):
                    replaced = existing
                    break
        if replaced is not None and replaced.get("token") == fingerprint.token:
            # Same snapshot identity: the atomic tmp+replace below swaps
            # equivalent content (same plan, seed, and data digest — the
            # deterministic build reproduces it bit for bit) under the same
            # name, safe at any crash point and safe under a concurrent
            # reader, which sees either inode of the same logical snapshot.
            payload_name = replaced["payload"]
        else:
            # Derive a name from the snapshot identity, but never reuse a
            # file another entry owns: an appended entry keeps its original
            # file name while its token advances, so a later build for the
            # *original* token would otherwise derive that same name and
            # clobber the appended snapshot.  Retired-but-not-yet-purged
            # garbage payloads count as taken too — a reader holding an old
            # manifest may still be reading them.
            taken = {existing.get("payload") for existing in entries} | {
                item.get("payload") for item in manifest.get("garbage", [])
            }
            stem = hashlib.sha256(
                f"{signature}|{seed}|{fingerprint.token}".encode("utf-8")
            ).hexdigest()[:20]
            payload_name = stem + ".npz"
            suffix = 1
            while payload_name in taken:
                payload_name = f"{stem}-{suffix}.npz"
                suffix += 1
        num_tuples = int(results.parts[0].num_tuples) if results.parts else 0
        appended = max(0, num_tuples - int(base_tuples))
        entry = {
            "payload": payload_name,
            "plan_signature": signature,
            "seed": int(seed),
            "token": fingerprint.token,
            "length": int(fingerprint.length),
            "num_tuples": num_tuples,
            "base_tuples": int(base_tuples),
            "appended_tuples": appended,
            "staleness": (appended / num_tuples) if num_tuples else 0.0,
            "requests": [request.kind for request in plan.requests],
            "schema": schema,
            "created_unix": time.time(),
        }
        self._directory.mkdir(parents=True, exist_ok=True)
        # Serialize in memory before any byte lands: a failure here (or a
        # kill at the pre-journal crash point) leaves the directory
        # byte-identical to its pre-write state.
        state = self._payload_state(
            results, plan, signature, seed, fingerprint.token
        )
        # The write-ahead intent: journal record -> payload tmp+replace ->
        # manifest tmp+replace -> journal commit.  Each step is atomic, and
        # the journal names the in-flight payload, so recovery on the next
        # open rolls the write forward (manifest already swapped) or back
        # (orphan payload unlinked) — never a mixed state.  The crash points
        # are the chaos-drill hooks (see repro.store.wal).
        crash_point("store.pre_journal")
        self._journal.begin(
            {
                "op": "store-entry",
                "payload": entry["payload"],
                "plan_signature": signature,
                "seed": int(seed),
                "token": fingerprint.token,
                "replaced": None if replaced is None else replaced["payload"],
            }
        )
        crash_point("store.post_journal")
        # Atomic payload write: the append/rebuild path overwrites the only
        # good copy of a snapshot, so a crash mid-write must never leave a
        # truncated archive behind (same discipline as the manifest).
        target = self._directory / entry["payload"]
        temporary = target.with_name(target.name + ".tmp")
        with temporary.open("wb") as handle:
            np.savez(handle, **state)
        temporary.replace(target)
        crash_point("store.post_payload")
        if replaced is not None:
            entries[entries.index(replaced)] = entry
        else:
            entries.append(entry)
        # When the snapshot advanced to a new token, the payload went to a
        # *new* file: at every crash point above, the manifest still named a
        # payload that fully existed (old entry + old file before the
        # manifest write, new entry + new file after).  The old file is now
        # garbage — but a reader that loaded the *previous* manifest may
        # still be about to open it, so it is retired to the manifest's
        # garbage list (same atomic swap) and only unlinked by a later
        # locked write once the grace period has passed.
        now = time.time()
        garbage = [
            dict(item)
            for item in manifest.get("garbage", [])
            if isinstance(item, dict) and isinstance(item.get("payload"), str)
        ]
        expired = [
            item
            for item in garbage
            if now - float(item.get("retired_unix", now)) >= self._garbage_grace
        ]
        garbage = [item for item in garbage if item not in expired]
        if replaced is not None and replaced["payload"] != entry["payload"]:
            garbage.append(
                {"payload": replaced["payload"], "retired_unix": now}
            )
        if garbage:
            manifest["garbage"] = garbage
        else:
            manifest.pop("garbage", None)
        self._write_manifest(manifest)
        crash_point("store.pre_commit")
        self._journal.commit()
        # Expired garbage left the manifest in the swap above; a crash
        # before these unlinks merely leaves unreferenced files behind,
        # which is harmless (and cheaper than another journal stage).
        for item in expired:
            try:
                (self._directory / item["payload"]).unlink()
            except OSError:  # pragma: no cover - cleanup is best-effort
                pass
        return entry

    # -- public API ------------------------------------------------------------

    def serve(
        self, builder: ProfileBuilder, source: DataSource, plan: ScanPlan
    ) -> tuple[PlanResults, str]:
        """Answer ``plan`` over ``source``, scanning as little as possible.

        Returns ``(results, status)`` where ``status`` is ``"hit"`` (served
        from disk, zero physical scans), ``"append"`` (only the source's
        appended tail was counted and merged), ``"rebuild"`` (the append
        crossed the staleness threshold, so boundaries were re-sampled from
        the full source), ``"build"`` (no usable snapshot existed — full
        execution, now persisted), or ``"unstored"`` (the source has no
        fingerprint; executed normally, nothing cached).
        """
        fingerprint = source.fingerprint()
        if fingerprint is None or len(plan) == 0:
            self._last_status = "unstored"
            return builder.execute_plan(source, plan), "unstored"
        signature = plan_signature(builder, plan)
        seed = builder.seed
        # Optimistic read: the warm-hit path never takes the writer lock, so
        # readers never queue behind an in-flight append or rebuild.
        manifest = self._read_manifest()
        for entry in self._find_candidates(manifest, signature, seed):
            if (
                entry.get("token") == fingerprint.token
                and entry.get("length") == fingerprint.length
            ):
                results = self._serve_hit(entry, plan, signature, seed)
                self._last_status = "hit"
                return results, "hit"
        # No exact hit: an append, rebuild, or fresh build will mutate the
        # store.  Take the writer lock and re-read — a concurrent writer may
        # have landed this very snapshot while we waited.
        with self._writer_lock:
            results, status = self._serve_slow(
                builder, source, plan, signature, seed, fingerprint
            )
        self._last_status = status
        return results, status

    def _serve_slow(
        self,
        builder: ProfileBuilder,
        source: DataSource,
        plan: ScanPlan,
        signature: str,
        seed: int,
        fingerprint: SourceFingerprint,
    ) -> tuple[PlanResults, str]:
        """The mutating half of :meth:`serve`, run under the writer lock."""
        manifest = self._read_manifest()
        for entry in self._find_candidates(manifest, signature, seed):
            if (
                entry.get("token") == fingerprint.token
                and entry.get("length") == fingerprint.length
            ):
                return self._serve_hit(entry, plan, signature, seed), "hit"
        for entry in self._find_candidates(manifest, signature, seed):
            if fingerprint.length < int(entry.get("length", 0)):
                continue
            prefix = source.fingerprint(int(entry["length"]))
            if (
                prefix is not None
                and prefix.length == entry["length"]
                and prefix.token == entry["token"]
            ):
                try:
                    results, status = self._serve_append(
                        builder, source, plan, manifest, entry,
                        signature, seed, fingerprint,
                    )
                except RelationError:
                    # The snapshot offset is not a clean resume point — e.g.
                    # the snapshot was taken of a CSV without a trailing
                    # newline, so the appended rows extend its last line.
                    # Never guess at a tail: rebuild from the full source
                    # and replace the snapshot.
                    results = builder.execute_plan(source, plan)
                    self._store_entry(
                        manifest, plan, results, signature, seed, fingerprint,
                        base_tuples=(
                            int(results.parts[0].num_tuples)
                            if results.parts
                            else 0
                        ),
                        schema=_schema_pairs(source),
                        previous=entry,
                    )
                    return results, "build"
                return results, status
        results = builder.execute_plan(source, plan)
        self._store_entry(
            manifest, plan, results, signature, seed, fingerprint,
            base_tuples=int(results.parts[0].num_tuples) if results.parts else 0,
            schema=_schema_pairs(source),
        )
        return results, "build"

    def _serve_hit(
        self, entry: dict, plan: ScanPlan, signature: str, seed: int
    ) -> PlanResults:
        parts, bucketings = self._load_payload(entry, plan, signature, seed)
        self._validate_against_plan(parts, bucketings, plan)
        return PlanResults(list(plan.requests), parts, bucketings)

    def _serve_append(
        self,
        builder: ProfileBuilder,
        source: DataSource,
        plan: ScanPlan,
        manifest: dict,
        entry: dict,
        signature: str,
        seed: int,
        fingerprint: SourceFingerprint,
    ) -> tuple[PlanResults, str]:
        parts, bucketings = self._load_payload(entry, plan, signature, seed)
        self._validate_against_plan(parts, bucketings, plan)
        initial = PlanChunkCounts(list(parts))
        results = builder.execute_plan_tail(
            source, plan, bucketings, int(entry["length"]), initial
        )
        num_tuples = int(results.parts[0].num_tuples) if results.parts else 0
        base = int(entry.get("base_tuples", entry.get("num_tuples", 0)))
        staleness = (num_tuples - base) / num_tuples if num_tuples else 0.0
        if staleness > self._rebuild_threshold:
            # The almost-equi-depth guarantee has rotted past the configured
            # bound: re-run the full two-pass build (fresh reservoir
            # boundaries over all tuples) and persist it as the new snapshot.
            results = builder.execute_plan(source, plan)
            self._store_entry(
                manifest, plan, results, signature, seed, fingerprint,
                base_tuples=(
                    int(results.parts[0].num_tuples) if results.parts else 0
                ),
                schema=_schema_pairs(source),
                previous=entry,
            )
            return results, "rebuild"
        self._store_entry(
            manifest, plan, results, signature, seed, fingerprint,
            base_tuples=base, schema=_schema_pairs(source), previous=entry,
        )
        return results, "append"

    def get(
        self, builder: ProfileBuilder, source: DataSource, plan: ScanPlan
    ) -> PlanResults | None:
        """The stored results for an *exact* snapshot match, else ``None``.

        Read-only: never scans the source, never writes the store.
        """
        fingerprint = source.fingerprint()
        if fingerprint is None:
            return None
        signature = plan_signature(builder, plan)
        manifest = self._read_manifest()
        for entry in self._find_candidates(manifest, signature, builder.seed):
            if (
                entry.get("token") == fingerprint.token
                and entry.get("length") == fingerprint.length
            ):
                return self._serve_hit(entry, plan, signature, builder.seed)
        return None

    def put(
        self,
        builder: ProfileBuilder,
        source: DataSource,
        plan: ScanPlan,
        results: PlanResults,
    ) -> None:
        """Persist an already-executed plan as a fresh snapshot of ``source``."""
        fingerprint = source.fingerprint()
        if fingerprint is None:
            raise StoreError(
                "the source has no fingerprint; its results cannot be stored"
            )
        with self._writer_lock:
            manifest = self._read_manifest()
            self._store_entry(
                manifest, plan, results,
                plan_signature(builder, plan), builder.seed, fingerprint,
                base_tuples=(
                    int(results.parts[0].num_tuples) if results.parts else 0
                ),
                schema=_schema_pairs(source),
            )

    def append(
        self, builder: ProfileBuilder, source: DataSource, plan: ScanPlan
    ) -> PlanResults:
        """Fold an append-only source's new tuples into the stored snapshot.

        Requires a stored snapshot whose fingerprint is a *verified prefix*
        of the current source; anything else — no snapshot, a shrunken
        source, or head bytes that no longer digest to the stored token —
        raises :class:`StoreError` (fingerprint drift must never merge into
        counts it does not extend).  Crossing the staleness threshold
        triggers the full two-pass refresh, exactly as :meth:`serve`.

        Integer counts and min/max bounds merge exactly, whatever the chunk
        geometry.  The §5 float bucket *sums* are additionally bit-identical
        to a frozen-boundary rebuild when appends are chunk-aligned (whole
        chunks appended — the natural shape of a growing chunked feed, or a
        CSV head that is a multiple of the chunk size); an append that
        splits a rebuild chunk regroups those float additions and can move
        their last bit, exactly as re-chunking any stream would.
        """
        fingerprint = source.fingerprint()
        if fingerprint is None:
            raise StoreError("the source has no fingerprint; nothing to append to")
        signature = plan_signature(builder, plan)
        seed = builder.seed
        with self._writer_lock:
            manifest = self._read_manifest()
            candidates = self._find_candidates(manifest, signature, seed)
            if not candidates:
                raise StoreError(
                    "no stored snapshot matches this plan and seed; "
                    "build the store first"
                )
            for entry in candidates:
                if (
                    entry.get("token") == fingerprint.token
                    and entry.get("length") == fingerprint.length
                ):
                    self._last_status = "hit"
                    return self._serve_hit(entry, plan, signature, seed)
            for entry in candidates:
                if fingerprint.length < int(entry.get("length", 0)):
                    continue
                prefix = source.fingerprint(int(entry["length"]))
                if (
                    prefix is not None
                    and prefix.length == entry["length"]
                    and prefix.token == entry["token"]
                ):
                    try:
                        results, status = self._serve_append(
                            builder, source, plan, manifest, entry,
                            signature, seed, fingerprint,
                        )
                    except RelationError as exc:
                        raise StoreError(
                            "the stored snapshot cannot be extended: the "
                            "source tail does not resume on a clean row "
                            f"boundary ({exc})"
                        ) from exc
                    self._last_status = status
                    return results
        raise SourceChangedError(
            "source fingerprint has drifted from every stored snapshot "
            "(the data is not an append-only continuation); refusing to "
            "merge — rebuild the store instead"
        )

    def refresh(
        self, builder: ProfileBuilder, source: DataSource, plan: ScanPlan
    ) -> PlanResults:
        """Force the full two-pass rebuild and persist it as the new snapshot.

        The explicit re-freeze entry point: boundaries are re-sampled from
        the *entire* current source (fresh reservoir pass), the plan is
        re-counted under them, and the result replaces any stored snapshot
        of the same plan and seed — exactly the refresh :meth:`serve` runs
        when staleness crosses the threshold, but on the caller's say-so
        (the ingest daemon's drift policies trigger it when frozen cuts have
        drifted even though staleness has not).
        """
        fingerprint = source.fingerprint()
        if fingerprint is None:
            raise StoreError(
                "the source has no fingerprint; nothing to refresh"
            )
        signature = plan_signature(builder, plan)
        seed = builder.seed
        with self._writer_lock:
            manifest = self._read_manifest()
            candidates = self._find_candidates(manifest, signature, seed)
            previous = candidates[0] if candidates else None
            results = builder.execute_plan(source, plan)
            self._store_entry(
                manifest, plan, results, signature, seed, fingerprint,
                base_tuples=(
                    int(results.parts[0].num_tuples) if results.parts else 0
                ),
                schema=_schema_pairs(source),
                previous=previous,
            )
        self._last_status = "rebuild"
        return results

    def verify(self) -> list[dict]:
        """Read-only audit of every snapshot: payload presence, embedded
        meta, and npz integrity — without serving anything.

        Walks the manifest and re-runs the checks :meth:`serve` would apply
        (readable archive, meta header matching the manifest's
        signature/seed/token, parseable counting state, the bucketing of
        every request) against each entry's payload.  Returns one finding
        per problem as ``{"payload": name, "problem": description}`` — an
        empty list means the store is sound.  Never scans a source and
        never writes (beyond resolving a crashed write's journal, which any
        open does).
        """
        try:
            manifest = self._read_manifest()
        except StoreError as exc:
            return [{"payload": None, "problem": str(exc)}]
        findings: list[dict] = []

        def flag(entry: dict, problem: str) -> None:
            findings.append(
                {"payload": entry.get("payload"), "problem": problem}
            )

        for entry in manifest["entries"]:
            name = entry.get("payload")
            if not isinstance(name, str) or not name:
                flag(entry, "manifest entry has no payload file name")
                continue
            path = self._directory / name
            if not path.exists():
                flag(entry, "payload file is missing")
                continue
            try:
                with np.load(path, allow_pickle=False) as archive:
                    arrays = {
                        key: np.array(archive[key]) for key in archive.files
                    }
            except (
                OSError, ValueError, KeyError, zipfile.BadZipFile, EOFError
            ) as exc:
                flag(entry, f"payload is unreadable or truncated: {exc}")
                continue
            try:
                meta_signature = str(arrays["meta.signature"].item())
                meta_seed = int(arrays["meta.seed"])
                meta_token = str(arrays["meta.token"].item())
            except KeyError:
                flag(entry, "payload is missing its meta header")
                continue
            if meta_signature != entry.get("plan_signature"):
                flag(entry, "payload plan signature disagrees with manifest")
            if meta_seed != entry.get("seed"):
                flag(entry, "payload seed disagrees with manifest")
            if meta_token != entry.get("token"):
                flag(entry, "payload fingerprint disagrees with manifest")
            try:
                totals = PlanChunkCounts.from_state(arrays)
            except BucketingError as exc:
                flag(entry, f"payload counting state is corrupt: {exc}")
                continue
            requests = list(entry.get("requests", []))
            if len(totals.parts) != len(requests):
                flag(
                    entry,
                    f"payload holds {len(totals.parts)} parts for "
                    f"{len(requests)} requests",
                )
            for request_id, kind in enumerate(requests):
                for axis in range(2 if kind == "grid" else 1):
                    key = f"bucketing{request_id}.{axis}"
                    if key not in arrays:
                        flag(
                            entry,
                            f"payload is missing the bucketing of request "
                            f"{request_id}",
                        )
                        continue
                    try:
                        Bucketing(arrays[key])
                    except BucketingError as exc:
                        flag(
                            entry,
                            f"request {request_id} holds invalid bucket "
                            f"cuts: {exc}",
                        )
            if totals.parts:
                num_tuples = int(totals.parts[0].num_tuples)
                if num_tuples != int(entry.get("num_tuples", -1)):
                    flag(
                        entry,
                        f"payload counts {num_tuples} tuples but the "
                        f"manifest claims {entry.get('num_tuples')}",
                    )
        return findings

    def cached_schema(self, source: DataSource) -> Schema | None:
        """The schema stored with any snapshot this source extends, else ``None``.

        CSV schema inference parses a whole chunk of the file — for a warm
        catalog loop that parse is the last remaining per-run data touch, so
        the store keeps the schema the snapshot was built under and hands it
        back to any source whose fingerprint verifies as the same data (or
        an append-only continuation of it).  Pass the result as
        ``CSVSource(path, schema=...)`` and a warm run never parses a row::

            source = CSVSource(path, schema=store.cached_schema(CSVSource(path)))
        """
        fingerprint = source.fingerprint()
        if fingerprint is None:
            return None
        try:
            manifest = self._read_manifest()
        except StoreError:
            return None
        prefix_cache: dict[int, SourceFingerprint | None] = {}
        for entry in manifest["entries"]:
            pairs = entry.get("schema")
            if not pairs:
                continue
            length = int(entry.get("length", 0))
            matches = (
                entry.get("token") == fingerprint.token
                and length == fingerprint.length
            )
            if not matches and fingerprint.length > length:
                if length not in prefix_cache:
                    prefix_cache[length] = source.fingerprint(length)
                prefix = prefix_cache[length]
                matches = (
                    prefix is not None
                    and prefix.length == length
                    and prefix.token == entry.get("token")
                )
            if not matches:
                continue
            try:
                return Schema.from_pairs(
                    (name, kind) for name, kind in pairs
                )
            except (SchemaError, ValueError, TypeError) as exc:
                raise StoreError(
                    f"store entry {entry.get('payload')} holds an invalid "
                    f"schema: {exc}"
                ) from exc
        return None

    def inspect(self) -> list[dict]:
        """Manifest entries as plain dictionaries (metadata only, no arrays)."""
        return [dict(entry) for entry in self._read_manifest()["entries"]]

    def checkpoints(self, run_key: str) -> "ShardCheckpointStore":
        """The shard-checkpoint namespace for one sharded run.

        Rooted at ``<store>/checkpoints/<run_key>/``, isolated from the
        snapshot payloads and the manifest — a killed coordinator never
        leaves the snapshot area half-written, and two different runs never
        see each other's partials.
        """
        if not run_key or any(sep in run_key for sep in ("/", "\\", "..")):
            raise StoreError(f"invalid checkpoint run key {run_key!r}")
        return ShardCheckpointStore(self._directory / "checkpoints" / run_key)


class ShardCheckpointStore:
    """Atomic per-shard checkpoint files for one sharded mining run.

    Layout (one directory per run key)::

        <directory>/
            meta.npz          # frozen bucket boundaries (sampling pass)
            shard00003.npz    # one validated partial per completed shard

    Every write goes through the store's tmp-then-replace discipline, so a
    coordinator killed at *any* instant leaves each checkpoint either whole
    or absent — never torn.  Reads are deliberately forgiving: an unreadable
    archive is reported as missing (the coordinator just recounts that
    shard), because a checkpoint is a pure optimization over the source of
    truth, the data itself.
    """

    def __init__(self, directory: str | Path) -> None:
        self._directory = Path(directory)

    @property
    def directory(self) -> Path:
        """The run's checkpoint directory."""
        return self._directory

    def _shard_path(self, index: int) -> Path:
        return self._directory / f"shard{int(index):05d}.npz"

    def _write(self, path: Path, state: dict[str, np.ndarray]) -> None:
        self._directory.mkdir(parents=True, exist_ok=True)
        temporary = path.with_name(path.name + ".tmp")
        with temporary.open("wb") as handle:
            np.savez(handle, **state)
        temporary.replace(path)

    @staticmethod
    def _read(path: Path) -> dict[str, np.ndarray] | None:
        try:
            with np.load(path, allow_pickle=False) as archive:
                return {key: np.array(archive[key]) for key in archive.files}
        except (OSError, ValueError, KeyError, zipfile.BadZipFile, EOFError):
            return None

    def save(self, index: int, state: dict[str, np.ndarray]) -> None:
        """Atomically persist one shard's validated partial."""
        self._write(self._shard_path(index), state)

    def load(self, index: int) -> dict[str, np.ndarray] | None:
        """One shard's checkpointed partial, or ``None`` if absent/unreadable."""
        return self._read(self._shard_path(index))

    def discard(self, index: int) -> None:
        """Drop one shard's checkpoint (it failed validation on reload)."""
        try:
            self._shard_path(index).unlink()
        except OSError:  # pragma: no cover - cleanup is best-effort
            pass

    def completed(self) -> list[int]:
        """Sorted indices of shards with a checkpoint file on disk."""
        if not self._directory.is_dir():
            return []
        indices = []
        for path in self._directory.glob("shard*.npz"):
            digits = path.stem[len("shard"):]
            if digits.isdigit():
                indices.append(int(digits))
        return sorted(indices)

    def save_meta(self, state: dict[str, np.ndarray]) -> None:
        """Persist run-level arrays (the frozen bucket boundaries)."""
        self._write(self._directory / "meta.npz", state)

    def load_meta(self) -> dict[str, np.ndarray] | None:
        """Run-level arrays, or ``None`` if absent/unreadable."""
        return self._read(self._directory / "meta.npz")

    def clear(self) -> None:
        """Delete the whole run namespace (the fold completed)."""
        if not self._directory.is_dir():
            return
        for path in self._directory.iterdir():
            try:
                path.unlink()
            except OSError:  # pragma: no cover - cleanup is best-effort
                pass
        try:
            self._directory.rmdir()
        except OSError:  # pragma: no cover - cleanup is best-effort
            pass
