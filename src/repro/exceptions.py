"""Exception hierarchy for the :mod:`repro` package.

All errors raised deliberately by the library derive from :class:`ReproError`
so that callers can catch library-specific failures with a single ``except``
clause while letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class SchemaError(ReproError):
    """A relation schema is malformed or an attribute lookup failed."""


class RelationError(ReproError):
    """A relation operation received inconsistent data."""


class ConditionError(ReproError):
    """A condition refers to missing attributes or has invalid operands."""


class BucketingError(ReproError):
    """A bucketizer received invalid parameters or inconsistent input."""


class ProfileError(ReproError):
    """A bucket profile (``u``/``v`` arrays) is malformed."""


class OptimizationError(ReproError):
    """An optimized-rule solver received invalid thresholds or profiles."""


class NoFeasibleRangeError(OptimizationError):
    """No range of consecutive buckets satisfies the requested constraint.

    Raised by the strict variants of the solvers; the non-strict entry points
    return ``None`` instead so that bulk mining can simply skip infeasible
    attribute/condition pairs.
    """


class HullInvariantWarning(RuntimeWarning):
    """The suffix-hull sweep detected a violated stack-position invariant.

    The optimized-confidence sweep remembers where the previous tangent's
    terminating point sits in the hull stack so the next search can resume
    there in O(1).  If that position ever disagrees with the stack, the
    solver falls back to a full clockwise rescan — still correct, but the
    amortized O(M) bound degrades towards O(M²).  This warning makes that
    degradation observable instead of silent.
    """


class DatasetError(ReproError):
    """A dataset generator or loader received invalid parameters."""


class PipelineError(ReproError):
    """A data source or profile builder was configured inconsistently."""


class ExecutorError(PipelineError):
    """A counting executor's worker process died mid-fold.

    Raised instead of the raw ``concurrent.futures`` pool exception when a
    multiprocessing worker is killed (OOM killer, segfault, explicit kill)
    while counting, naming the chunk batch that was in flight.  The fold is
    abandoned — a dead worker's partial counts are unrecoverable, so the
    executor never silently drops them.
    """


class KernelError(PipelineError):
    """A kernel tier was requested that cannot be provided.

    Raised when ``kernel_tier="compiled"`` is selected explicitly but the
    optional ``numba`` dependency is missing, or when an unknown tier name
    reaches the kernel dispatcher.  ``kernel_tier="auto"`` never raises —
    it silently falls back to the pure-NumPy tier.
    """


class ExperimentError(ReproError):
    """An experiment driver was configured inconsistently."""


class StoreError(ReproError):
    """A persistent profile store is corrupt, stale, or mismatched.

    Raised whenever a :class:`~repro.store.ProfileStore` cannot *prove* that
    a stored snapshot answers the request it is being asked to serve — a
    truncated or unreadable payload file, a manifest whose self-description
    disagrees with the payload (seed/signature mismatch), or a source whose
    fingerprint has drifted from the stored snapshot's prefix.  The store
    never degrades to serving possibly-wrong counts: it either raises this
    error or rebuilds from the source.
    """


class SourceChangedError(RelationError, StoreError):
    """The data behind a source changed out from under an operation.

    Two code paths converge on this type: a :class:`CSVSource` scan that
    observes the file shrinking *mid-scan* (the bytes it fingerprinted no
    longer exist, so any counts folded so far describe data that is gone),
    and a store append whose source no longer digests to the stored
    snapshot's prefix (the data is not an append-only continuation).  It
    derives from both :class:`RelationError` (it is a relation-integrity
    failure) and :class:`StoreError` (the store refuses to merge across it),
    so existing handlers of either base keep working.
    """


class IngestError(ReproError):
    """The continuous-ingestion daemon cannot make progress.

    Raised when the ingest loop exhausts its retry budget against a source
    that stays unreadable, or when its persisted state disagrees with the
    store in a way reconciliation cannot heal.  Transient failures inside
    the loop never raise — they surface as ``degraded`` cycle reports while
    the daemon keeps serving the last good snapshot.
    """


class ServiceError(ReproError):
    """The rule-mining HTTP service rejected a request.

    Raised by the service plane's own validation — a malformed JSON body, an
    unknown endpoint parameter, a missing bearer token — and carries the
    HTTP ``status`` the typed error body maps to.  Library errors raised by
    the layers below (``StoreError``, ``SourceChangedError``, solver errors)
    pass through untouched; the service maps each to its status at the
    response boundary instead of re-wrapping.
    """

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = int(status)


class ShardError(ReproError):
    """A shard of a distributed counting run failed.

    Base of the shard plane's typed failure modes; carries ``shard_index``
    and ``attempt`` so retry loops and reports can name the exact failure.
    """

    def __init__(
        self, message: str, shard_index: int = -1, attempt: int = 0
    ) -> None:
        super().__init__(message)
        self.shard_index = int(shard_index)
        self.attempt = int(attempt)


class ShardTimeout(ShardError):
    """A shard worker exceeded its per-attempt wall-clock budget."""


class ShardCrashed(ShardError):
    """A shard worker raised or died before returning its partial."""


class ShardCorrupt(ShardError):
    """A shard partial failed validation and was rejected, never folded.

    Covers every tampered-or-stale shape: a checksum mismatch (bit flips,
    truncated arrays), a fingerprint stamp naming different source data, a
    partial claiming the wrong shard index, or a tuple count that disagrees
    with the shard's span.
    """
