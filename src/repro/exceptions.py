"""Exception hierarchy for the :mod:`repro` package.

All errors raised deliberately by the library derive from :class:`ReproError`
so that callers can catch library-specific failures with a single ``except``
clause while letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class SchemaError(ReproError):
    """A relation schema is malformed or an attribute lookup failed."""


class RelationError(ReproError):
    """A relation operation received inconsistent data."""


class ConditionError(ReproError):
    """A condition refers to missing attributes or has invalid operands."""


class BucketingError(ReproError):
    """A bucketizer received invalid parameters or inconsistent input."""


class ProfileError(ReproError):
    """A bucket profile (``u``/``v`` arrays) is malformed."""


class OptimizationError(ReproError):
    """An optimized-rule solver received invalid thresholds or profiles."""


class NoFeasibleRangeError(OptimizationError):
    """No range of consecutive buckets satisfies the requested constraint.

    Raised by the strict variants of the solvers; the non-strict entry points
    return ``None`` instead so that bulk mining can simply skip infeasible
    attribute/condition pairs.
    """


class HullInvariantWarning(RuntimeWarning):
    """The suffix-hull sweep detected a violated stack-position invariant.

    The optimized-confidence sweep remembers where the previous tangent's
    terminating point sits in the hull stack so the next search can resume
    there in O(1).  If that position ever disagrees with the stack, the
    solver falls back to a full clockwise rescan — still correct, but the
    amortized O(M) bound degrades towards O(M²).  This warning makes that
    degradation observable instead of silent.
    """


class DatasetError(ReproError):
    """A dataset generator or loader received invalid parameters."""


class PipelineError(ReproError):
    """A data source or profile builder was configured inconsistently."""


class ExperimentError(ReproError):
    """An experiment driver was configured inconsistently."""


class StoreError(ReproError):
    """A persistent profile store is corrupt, stale, or mismatched.

    Raised whenever a :class:`~repro.store.ProfileStore` cannot *prove* that
    a stored snapshot answers the request it is being asked to serve — a
    truncated or unreadable payload file, a manifest whose self-description
    disagrees with the payload (seed/signature mismatch), or a source whose
    fingerprint has drifted from the stored snapshot's prefix.  The store
    never degrades to serving possibly-wrong counts: it either raises this
    error or rebuilds from the source.
    """
