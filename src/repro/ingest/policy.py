"""Pluggable re-freeze policies: when do frozen boundaries get rebuilt?

The append path keeps boundaries frozen forever; the store's own rebuild
trigger is the staleness *ratio* alone.  A :class:`RefreezePolicy` owns
the richer decision: given the per-attribute drift reading (see
:mod:`repro.ingest.drift`), the store's staleness, and the fold cycle
count since the last freeze, it answers *re-freeze now?* with a reason
string — the daemon logs the reason, runs
:meth:`~repro.store.ProfileStore.refresh`, and resets the drift trackers.

Three implementations cover the operating modes:

* :class:`ThresholdRefreezePolicy` — re-freeze as soon as any metric
  (staleness, occupancy shift, KL, out-of-range mass) crosses its knob;
* :class:`ScheduledRefreezePolicy` — re-freeze every N fold cycles
  regardless of drift (predictable-cost operations);
* :class:`ManualRefreezePolicy` — never re-freeze on its own; an
  operator (or test) arms the next cycle explicitly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Mapping

from repro.ingest.drift import DriftMetrics

__all__ = [
    "ManualRefreezePolicy",
    "RefreezePolicy",
    "ScheduledRefreezePolicy",
    "ThresholdRefreezePolicy",
]


class RefreezePolicy(ABC):
    """Decide whether the frozen boundaries should rebuild this cycle."""

    @abstractmethod
    def decide(
        self,
        metrics: Mapping[str, DriftMetrics],
        *,
        staleness: float,
        cycles_since_refreeze: int,
    ) -> str | None:
        """A human-readable reason to re-freeze now, or ``None`` to hold.

        ``metrics`` maps attribute name to its current drift reading,
        ``staleness`` is the store entry's appended-over-total ratio, and
        ``cycles_since_refreeze`` counts daemon fold cycles since the
        boundaries last froze (0 on the cycle right after a freeze).
        """


class ThresholdRefreezePolicy(RefreezePolicy):
    """Re-freeze when any drift metric crosses its threshold.

    A threshold of ``None`` disables that trigger.  ``min_appended``
    guards against deciding off a handful of tuples: no drift trigger
    fires until at least that many appended tuples were observed on the
    triggering attribute (staleness fires regardless — it is the store's
    own exactly-tracked ratio).
    """

    def __init__(
        self,
        max_staleness: float | None = 0.25,
        max_occupancy_shift: float | None = 0.25,
        max_kl: float | None = 0.5,
        max_out_of_range: float | None = 0.25,
        min_appended: int = 32,
    ) -> None:
        self.max_staleness = max_staleness
        self.max_occupancy_shift = max_occupancy_shift
        self.max_kl = max_kl
        self.max_out_of_range = max_out_of_range
        self.min_appended = int(min_appended)

    def decide(
        self,
        metrics: Mapping[str, DriftMetrics],
        *,
        staleness: float,
        cycles_since_refreeze: int,
    ) -> str | None:
        if self.max_staleness is not None and staleness > self.max_staleness:
            return (
                f"staleness {staleness:.3f} exceeds "
                f"threshold {self.max_staleness:.3f}"
            )
        for attribute, reading in metrics.items():
            if reading.appended < self.min_appended:
                continue
            if (
                self.max_occupancy_shift is not None
                and reading.occupancy_shift > self.max_occupancy_shift
            ):
                return (
                    f"occupancy shift {reading.occupancy_shift:.3f} on "
                    f"{attribute!r} exceeds threshold "
                    f"{self.max_occupancy_shift:.3f}"
                )
            if self.max_kl is not None and reading.kl_divergence > self.max_kl:
                return (
                    f"KL divergence {reading.kl_divergence:.3f} on "
                    f"{attribute!r} exceeds threshold {self.max_kl:.3f}"
                )
            if (
                self.max_out_of_range is not None
                and reading.out_of_range_mass > self.max_out_of_range
            ):
                return (
                    f"out-of-range mass {reading.out_of_range_mass:.3f} on "
                    f"{attribute!r} exceeds threshold "
                    f"{self.max_out_of_range:.3f}"
                )
        return None


class ScheduledRefreezePolicy(RefreezePolicy):
    """Re-freeze every ``every_cycles`` fold cycles, drift or no drift."""

    def __init__(self, every_cycles: int) -> None:
        if every_cycles <= 0:
            raise ValueError("every_cycles must be positive")
        self.every_cycles = int(every_cycles)

    def decide(
        self,
        metrics: Mapping[str, DriftMetrics],
        *,
        staleness: float,
        cycles_since_refreeze: int,
    ) -> str | None:
        if cycles_since_refreeze >= self.every_cycles:
            return (
                f"scheduled re-freeze after {cycles_since_refreeze} cycles "
                f"(every {self.every_cycles})"
            )
        return None


class ManualRefreezePolicy(RefreezePolicy):
    """Hold frozen boundaries until :meth:`request` arms the next cycle."""

    def __init__(self) -> None:
        self._requested = False

    def request(self) -> None:
        """Arm a one-shot re-freeze for the next daemon cycle."""
        self._requested = True

    def decide(
        self,
        metrics: Mapping[str, DriftMetrics],
        *,
        staleness: float,
        cycles_since_refreeze: int,
    ) -> str | None:
        if self._requested:
            self._requested = False
            return "manual re-freeze requested"
        return None
