"""Crash-safe continuous-mining daemon over a :class:`ProfileStore`.

The daemon closes the loop the store opened: a data feed that grows at
the tail, a store that folds only new tuples, and nobody watching either.
:class:`IngestDaemon` polls a fingerprint-capable source, answers the
catalog plan through the store's crash-safe write path (every mutation
journaled — ``kill -9`` at any byte reopens to a consistent snapshot),
streams the appended tuples through per-attribute drift trackers, and
asks a :class:`~repro.ingest.policy.RefreezePolicy` whether the frozen
boundaries should rebuild.

One ``once()`` call is one **cycle**:

1. open a fresh source via ``source_factory`` (retried on transient
   I/O errors per the :class:`~repro.shard.RetryPolicy`);
2. heal any tracker gap — tuples another process folded into the store
   while this daemon was down are re-scanned *for drift only* with
   ``scan_span`` (the store itself needs nothing);
3. serve the plan through the store: hit, tail-fold append, or full
   build/rebuild — the daemon's observing proxy taps the tail chunks as
   they stream into the fused kernel, so drift tracking adds **zero**
   extra source scans;
4. evaluate drift, ask the policy; on a re-freeze verdict run
   :meth:`~repro.store.ProfileStore.refresh` and re-freeze the trackers;
5. persist the daemon's own state file (atomic tmp+replace, *after* the
   store's journal committed) so a crash between cycles resumes cleanly.

Degraded modes never corrupt: a temporarily unreadable source retries
then reports a degraded cycle while the store keeps serving the last
snapshot; a rewritten/shrunken source raises
:class:`~repro.exceptions.SourceChangedError` (or degrades, per
``on_source_changed``); ``max_failures`` consecutive failed cycles
escalate to a typed :class:`~repro.exceptions.IngestError`.
"""

from __future__ import annotations

import json
import time
from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.exceptions import (
    IngestError,
    RelationError,
    SourceChangedError,
    StoreError,
)
from repro.ingest.drift import DEFAULT_RESERVOIR_CAPACITY, DriftTracker
from repro.ingest.policy import RefreezePolicy, ThresholdRefreezePolicy
from repro.pipeline.builder import PlanResults, ProfileBuilder, ScanPlan
from repro.pipeline.sources import DataSource
from repro.relation import Relation, Schema
from repro.shard.retry import RetryPolicy
from repro.store.profile_store import ProfileStore, plan_signature

__all__ = ["IngestDaemon", "IngestReport", "STATE_FILE_NAME"]

STATE_FILE_NAME = "ingest-state.json"

#: Errors treated as transient source trouble: retried, then degraded.
_TRANSIENT_ERRORS = (OSError, RelationError)


class _ObservingSource(DataSource):
    """Delegate to a source, tapping tail/span chunks for drift tracking.

    Only :meth:`scan_tail` and :meth:`scan_span` are observed — those are
    the appended tuples.  Full scans (build/rebuild paths) are not: after
    a rebuild the trackers re-freeze from the results instead.
    """

    def __init__(
        self, inner: DataSource, observe: Callable[[Relation], None]
    ) -> None:
        self._inner = inner
        self._observe = observe

    @property
    def schema(self) -> Schema:
        return self._inner.schema

    def chunks(self) -> Iterator[Relation]:
        return self._inner.chunks()

    def scan(self, columns: Sequence[str] | None = None) -> Iterator[Relation]:
        return self._inner.scan(columns)

    def fingerprint(self, prefix: int | None = None):
        return self._inner.fingerprint(prefix)

    def _tapped(self, chunks: Iterator[Relation]) -> Iterator[Relation]:
        for chunk in chunks:
            self._observe(chunk)
            yield chunk

    def scan_tail(
        self, start: int, columns: Sequence[str] | None = None
    ) -> Iterator[Relation]:
        return self._tapped(self._inner.scan_tail(start, columns))

    def scan_span(
        self, start: int, stop: int, columns: Sequence[str] | None = None
    ) -> Iterator[Relation]:
        return self._tapped(self._inner.scan_span(start, stop, columns))


@dataclass(frozen=True)
class IngestReport:
    """What one daemon cycle did (the CLI prints these verbatim)."""

    cycle: int
    status: str
    observed_length: int
    appended: int
    staleness: float
    refreeze_reason: str | None = None
    drift: dict = field(default_factory=dict)
    error: str | None = None

    @property
    def degraded(self) -> bool:
        """Whether this cycle failed and the store served stale data."""
        return self.status == "degraded"

    def as_dict(self) -> dict:
        """JSON-ready form."""
        return {
            "cycle": int(self.cycle),
            "status": self.status,
            "observed_length": int(self.observed_length),
            "appended": int(self.appended),
            "staleness": float(self.staleness),
            "refreeze_reason": self.refreeze_reason,
            "drift": dict(self.drift),
            "error": self.error,
        }


class IngestDaemon:
    """Poll a growing source and fold its tail into a crash-safe store.

    Parameters
    ----------
    builder, plan, store:
        The catalog workload and where its snapshots live.  The plan and
        the builder's seed key the store entry exactly as ``store serve``
        does.
    source_factory:
        Zero-argument callable returning a **fresh** source each cycle.
        Re-opening per cycle is what lets pinned-snapshot sources (the
        ``.npy`` directory layout) observe growth, and what confines a
        half-written file to one failed cycle.
    policy:
        A :class:`~repro.ingest.policy.RefreezePolicy`; defaults to a
        :class:`~repro.ingest.policy.ThresholdRefreezePolicy` with stock
        knobs.
    retry:
        :class:`~repro.shard.RetryPolicy` for transient source errors
        within one cycle (defaults to two retries with short backoff).
    max_failures:
        Consecutive degraded cycles tolerated before ``once()`` raises
        :class:`~repro.exceptions.IngestError`.
    on_source_changed:
        ``"raise"`` (default) propagates a rewritten-source
        :class:`~repro.exceptions.SourceChangedError`; ``"serve-stale"``
        degrades the cycle instead and keeps serving the stored snapshot.
    """

    def __init__(
        self,
        builder: ProfileBuilder,
        source_factory: Callable[[], DataSource],
        plan: ScanPlan,
        store: ProfileStore,
        policy: RefreezePolicy | None = None,
        retry: RetryPolicy | None = None,
        reservoir_capacity: int = DEFAULT_RESERVOIR_CAPACITY,
        max_failures: int = 3,
        on_source_changed: str = "raise",
    ) -> None:
        if on_source_changed not in ("raise", "serve-stale"):
            raise IngestError(
                "on_source_changed must be 'raise' or 'serve-stale', "
                f"not {on_source_changed!r}"
            )
        self._builder = builder
        self._source_factory = source_factory
        self._plan = plan
        self._store = store
        self._policy = policy if policy is not None else ThresholdRefreezePolicy()
        self._retry = retry if retry is not None else RetryPolicy(base_delay=0.01)
        self._capacity = int(reservoir_capacity)
        self._max_failures = int(max_failures)
        self._on_source_changed = on_source_changed
        self._signature = plan_signature(builder, plan)
        self._tracker = DriftTracker({})
        self._cycle = 0
        self._cycles_since_refreeze = 0
        self._observed_length = 0
        self._consecutive_failures = 0
        self._load_state()

    # -- state file ---------------------------------------------------------

    @property
    def state_path(self) -> Path:
        """The daemon's own crash-safe state file, inside the store."""
        return self._store.directory / STATE_FILE_NAME

    def _load_state(self) -> None:
        try:
            raw = self.state_path.read_text(encoding="utf-8")
        except OSError:
            return
        try:
            state = json.loads(raw)
        except ValueError:
            return  # torn write of a previous daemon: start fresh
        if not isinstance(state, dict) or state.get("version") != 1:
            return
        if state.get("plan_signature") != self._signature:
            return  # different workload: its drift history is meaningless
        self._cycle = int(state.get("cycle", 0))
        self._cycles_since_refreeze = int(state.get("cycles_since_refreeze", 0))
        self._observed_length = int(state.get("observed_length", 0))
        tracker_state = state.get("tracker")
        if isinstance(tracker_state, dict):
            self._tracker = DriftTracker.from_state(tracker_state)

    def _save_state(self) -> None:
        state = {
            "version": 1,
            "plan_signature": self._signature,
            "seed": int(self._builder.seed),
            "cycle": self._cycle,
            "cycles_since_refreeze": self._cycles_since_refreeze,
            "observed_length": self._observed_length,
            "tracker": self._tracker.to_state(),
            "saved_unix": time.time(),
        }
        self._store.directory.mkdir(parents=True, exist_ok=True)
        temporary = self.state_path.with_name(self.state_path.name + ".tmp")
        temporary.write_text(
            json.dumps(state, indent=2, sort_keys=True), encoding="utf-8"
        )
        temporary.replace(self.state_path)

    # -- store bookkeeping --------------------------------------------------

    def _stored_entry(self) -> dict | None:
        """The manifest entry this daemon's workload folds into, if any."""
        try:
            entries = self._store.inspect()
        except StoreError:
            return None
        matches = [
            entry
            for entry in entries
            if entry.get("plan_signature") == self._signature
            and entry.get("seed") == self._builder.seed
        ]
        if not matches:
            return None
        return max(matches, key=lambda entry: int(entry.get("num_tuples", 0)))

    def _ensure_prefix_intact(self, source, fingerprint, entry: dict) -> None:
        """A stored snapshot must still be a prefix of the live source.

        Shrinkage or a rewritten head means the feed is not append-only —
        folding its tail would mix two datasets in one snapshot, so the
        daemon refuses (``store.serve`` alone would quietly build a second
        snapshot over the new bytes, masking the rewrite).
        """
        stored = int(entry.get("length", 0))
        token = entry.get("token")
        if fingerprint.length == stored and fingerprint.token == token:
            return  # exactly the stored snapshot: the hit path
        if fingerprint.length < stored:
            raise SourceChangedError(
                f"the watched source shrank from {stored} to "
                f"{fingerprint.length} fingerprint units; the ingest daemon "
                "only follows append-only feeds"
            )
        prefix = source.fingerprint(stored)
        if prefix is None or prefix.token != token:
            raise SourceChangedError(
                "the watched source's head no longer matches the stored "
                "snapshot; the feed was rewritten in place rather than "
                "appended to"
            )

    def _heal_gap(self, source: DataSource, entry: dict | None) -> None:
        """Re-observe tuples the store folded while this daemon was down.

        The store is the source of truth for *counts*; the tracker only
        needs the values for drift.  When the stored snapshot is ahead of
        the tracker's observed length (another process appended, or a
        crash landed after the journal committed but before the state
        file), scan exactly the missed span — never the head.
        """
        if not len(self._tracker):
            return
        if entry is None:
            return
        # Lengths are in the source's fingerprint units (bytes for CSV,
        # tuples for columnar) — the same units scan_span addresses.
        stored = int(entry.get("length", 0))
        if stored <= self._observed_length:
            return
        columns = [
            name
            for name in source.schema.names()
            if name in set(self._tracker.attributes)
        ]
        for chunk in source.scan_span(self._observed_length, stored, columns or None):
            self._tracker.observe(chunk)
        self._observed_length = stored

    # -- the cycle ----------------------------------------------------------

    def _attempt_cycle(self) -> IngestReport:
        source = self._source_factory()
        fingerprint = source.fingerprint()
        if fingerprint is None:
            raise IngestError(
                "the source has no fingerprint; the ingest daemon can only "
                "watch fingerprint-capable sources"
            )
        entry = self._stored_entry()
        if entry is not None:
            self._ensure_prefix_intact(source, fingerprint, entry)
        self._heal_gap(source, entry)
        observing = _ObservingSource(source, self._tracker.observe)
        results, status = self._store.serve(self._builder, observing, self._plan)
        if status == "unstored":  # pragma: no cover - fingerprint checked above
            raise IngestError("the store refused to cache the source")
        if status in ("build", "rebuild"):
            self._tracker = DriftTracker.from_results(
                results, self._builder.seed, reservoir_capacity=self._capacity
            )
            self._cycles_since_refreeze = 0
        else:
            if not len(self._tracker):
                # First contact with a pre-built store (no persisted daemon
                # state): freeze the trackers at the snapshot being served
                # so the *next* appended chunk is drift-tracked.
                self._tracker = DriftTracker.from_results(
                    results, self._builder.seed, reservoir_capacity=self._capacity
                )
            self._cycles_since_refreeze += 1
        self._observed_length = int(fingerprint.length)

        entry = self._stored_entry()
        staleness = float(entry.get("staleness", 0.0)) if entry else 0.0
        metrics = self._tracker.metrics()
        appended = self._tracker.appended
        refreeze_reason = None
        if status not in ("build", "rebuild"):
            refreeze_reason = self._policy.decide(
                metrics,
                staleness=staleness,
                cycles_since_refreeze=self._cycles_since_refreeze,
            )
            if refreeze_reason is not None:
                refreshed = self._store.refresh(self._builder, source, self._plan)
                self._tracker = DriftTracker.from_results(
                    refreshed, self._builder.seed, reservoir_capacity=self._capacity
                )
                self._cycles_since_refreeze = 0
                status = "rebuild"
                # The report keeps the pre-freeze reading — the drift that
                # *triggered* the rebuild — while the trackers start clean.

        return IngestReport(
            cycle=self._cycle,
            status=status,
            observed_length=self._observed_length,
            appended=appended,
            staleness=staleness,
            refreeze_reason=refreeze_reason,
            drift={name: m.as_dict() for name, m in metrics.items()},
        )

    def once(self) -> IngestReport:
        """Run one cycle; always returns a report (degraded ones included).

        Raises :class:`~repro.exceptions.IngestError` when
        ``max_failures`` consecutive cycles degraded, and
        :class:`~repro.exceptions.SourceChangedError` when the source was
        rewritten under the daemon and ``on_source_changed="raise"``.
        """
        self._cycle += 1
        attempt = 0
        while True:
            try:
                report = self._attempt_cycle()
                self._consecutive_failures = 0
                self._save_state()
                return report
            except SourceChangedError as error:
                if self._on_source_changed == "raise":
                    raise
                return self._degrade(f"source changed: {error}")
            except _TRANSIENT_ERRORS as error:
                attempt += 1
                if self._retry.allows(attempt):
                    self._retry.wait(0, attempt)
                    continue
                return self._degrade(f"source unavailable: {error}")

    def _degrade(self, message: str) -> IngestReport:
        self._consecutive_failures += 1
        if self._consecutive_failures >= self._max_failures:
            raise IngestError(
                f"{self._consecutive_failures} consecutive ingest cycles "
                f"failed; last error: {message}"
            )
        entry = self._stored_entry()
        return IngestReport(
            cycle=self._cycle,
            status="degraded",
            observed_length=self._observed_length,
            appended=self._tracker.appended,
            staleness=float(entry.get("staleness", 0.0)) if entry else 0.0,
            drift={name: m.as_dict() for name, m in self._tracker.metrics().items()},
            error=message,
        )

    def run(
        self,
        cycles: int | None = None,
        interval: float = 0.0,
        sleep: Callable[[float], None] = time.sleep,
        on_report: Callable[[IngestReport], None] | None = None,
    ) -> list[IngestReport]:
        """Run cycles until ``cycles`` completes (forever when ``None``)."""
        reports: list[IngestReport] = []
        while cycles is None or len(reports) < cycles:
            report = self.once()
            reports.append(report)
            if on_report is not None:
                on_report(report)
            if cycles is not None and len(reports) >= cycles:
                break
            if interval > 0.0:
                sleep(interval)
        return reports

    def status(self) -> dict:
        """Daemon + store state without touching the source (no scans)."""
        entry = self._stored_entry()
        return {
            "cycle": self._cycle,
            "cycles_since_refreeze": self._cycles_since_refreeze,
            "observed_length": self._observed_length,
            "consecutive_failures": self._consecutive_failures,
            "stored_tuples": int(entry.get("num_tuples", 0)) if entry else 0,
            "staleness": float(entry.get("staleness", 0.0)) if entry else 0.0,
            "drift": {
                name: metrics.as_dict()
                for name, metrics in self._tracker.metrics().items()
            },
            "state_file": str(self.state_path),
        }
