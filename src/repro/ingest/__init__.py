"""Crash-safe continuous ingestion: poll, fold the tail, watch for drift.

The store made repeated catalogs free and appends tail-only; this package
runs that loop unattended.  An :class:`IngestDaemon` polls a
fingerprint-capable source, folds only the new tuples into the
:class:`~repro.store.ProfileStore` snapshot (every mutation journaled
through :mod:`repro.store.wal`, so ``kill -9`` at any byte is recoverable),
measures per-attribute drift between the frozen bucket boundaries and the
appended tail (:mod:`repro.ingest.drift`), and lets a pluggable
:class:`~repro.ingest.policy.RefreezePolicy` decide when the boundaries
re-freeze via a full rebuild.

CLI: ``repro ingest run | once | status``.  The chaos drill in
``tests/ingest`` SIGKILLs a real subprocess daemon at every journal
boundary and asserts the reopened store serves a catalog bit-identical to
an uninterrupted oracle.
"""

from repro.ingest.daemon import IngestDaemon, IngestReport, STATE_FILE_NAME
from repro.ingest.drift import (
    AttributeDriftTracker,
    DEFAULT_RESERVOIR_CAPACITY,
    DriftMetrics,
    DriftTracker,
)
from repro.ingest.policy import (
    ManualRefreezePolicy,
    RefreezePolicy,
    ScheduledRefreezePolicy,
    ThresholdRefreezePolicy,
)

__all__ = [
    "AttributeDriftTracker",
    "DEFAULT_RESERVOIR_CAPACITY",
    "DriftMetrics",
    "DriftTracker",
    "IngestDaemon",
    "IngestReport",
    "ManualRefreezePolicy",
    "RefreezePolicy",
    "STATE_FILE_NAME",
    "ScheduledRefreezePolicy",
    "ThresholdRefreezePolicy",
]
