"""Per-attribute drift metrics between frozen cuts and the appended tail.

The store's append path keeps bucket boundaries **frozen** at their
snapshot values while new tuples fold in — cheap, bit-exact, but blind:
if the appended data's *distribution* has moved, the frozen cuts slice it
badly long before the staleness ratio says so.  This module watches the
appended tuples as they stream past and quantifies how far they have
drifted from the frozen snapshot, per bucket-request attribute:

``staleness``
    The store's own bookkeeping — appended tuples over total tuples.
``out_of_range_mass``
    Fraction of appended values falling outside the frozen cut range
    (strictly below the first cut or above the last).  Equi-depth cuts
    put roughly ``2/M`` of the snapshot there; appended mass far beyond
    that means the data's support has shifted.
``occupancy_shift``
    Total-variation distance (half the L1) between the snapshot's
    normalized bucket occupancy and the appended tail's occupancy under
    the *same frozen cuts*.  0 means the tail fills buckets exactly like
    the snapshot did; 1 means disjoint occupancy.
``kl_divergence``
    Kullback–Leibler divergence of the tail occupancy from the snapshot
    occupancy (add-one smoothed so empty buckets stay finite), in nats.

A bounded seeded :class:`~repro.bucketing.streaming.ReservoirSampler`
additionally keeps a uniform sample of the appended values per attribute,
so a re-freeze decision (or an operator) can inspect *where* the tail
mass actually sits — not just that it moved.

Everything here is exactly serializable: :meth:`DriftTracker.to_state`
round-trips through JSON so the ingest daemon's crash-safe state file can
carry the tracker across process restarts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.bucketing.base import Bucketing
from repro.bucketing.streaming import ReservoirSampler
from repro.relation import Relation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.pipeline.builder import PlanResults

__all__ = [
    "AttributeDriftTracker",
    "DEFAULT_RESERVOIR_CAPACITY",
    "DriftMetrics",
    "DriftTracker",
]

DEFAULT_RESERVOIR_CAPACITY = 512


@dataclass(frozen=True)
class DriftMetrics:
    """One attribute's drift reading; see the module docstring for units."""

    attribute: str
    appended: int
    out_of_range_mass: float
    occupancy_shift: float
    kl_divergence: float

    def as_dict(self) -> dict:
        """JSON-ready form (the CLI's ``ingest status`` payload)."""
        return {
            "attribute": self.attribute,
            "appended": int(self.appended),
            "out_of_range_mass": float(self.out_of_range_mass),
            "occupancy_shift": float(self.occupancy_shift),
            "kl_divergence": float(self.kl_divergence),
        }


class AttributeDriftTracker:
    """Frozen-cut histogram + reservoir over one attribute's appended tail."""

    def __init__(
        self,
        attribute: str,
        cuts: np.ndarray,
        base_occupancy: np.ndarray,
        seed: int,
        reservoir_capacity: int = DEFAULT_RESERVOIR_CAPACITY,
    ) -> None:
        self.attribute = str(attribute)
        self._bucketing = Bucketing.from_cuts(np.asarray(cuts, dtype=np.float64))
        self._base = np.asarray(base_occupancy, dtype=np.float64).copy()
        self._tail = np.zeros(self._bucketing.num_buckets, dtype=np.int64)
        self._below = 0
        self._above = 0
        self._seed = int(seed)
        self._capacity = int(reservoir_capacity)
        self._reservoir = ReservoirSampler(
            self._capacity, rng=np.random.default_rng(self._seed)
        )

    @property
    def appended(self) -> int:
        """Number of appended values observed since the last freeze."""
        return int(self._tail.sum())

    @property
    def cuts(self) -> np.ndarray:
        """The frozen interior cut points drift is measured against."""
        return self._bucketing.cuts

    def observe(self, values: np.ndarray) -> None:
        """Fold one chunk of appended values into the tail statistics."""
        chunk = np.asarray(values, dtype=np.float64).ravel()
        if chunk.size == 0:
            return
        self._tail += self._bucketing.counts(chunk).astype(np.int64)
        cuts = self._bucketing.cuts
        if cuts.size:
            self._below += int(np.count_nonzero(chunk < cuts[0]))
            self._above += int(np.count_nonzero(chunk > cuts[-1]))
        self._reservoir.extend(chunk)

    def sample(self) -> np.ndarray:
        """Uniform sample of the appended values (at most ``capacity``)."""
        return self._reservoir.sample()

    def metrics(self) -> DriftMetrics:
        """The current drift reading for this attribute."""
        appended = self.appended
        if appended == 0:
            return DriftMetrics(self.attribute, 0, 0.0, 0.0, 0.0)
        out_of_range = (self._below + self._above) / appended
        base_total = float(self._base.sum())
        if base_total <= 0:
            return DriftMetrics(self.attribute, appended, out_of_range, 0.0, 0.0)
        base_p = self._base / base_total
        tail_p = self._tail / float(appended)
        occupancy_shift = 0.5 * float(np.abs(base_p - tail_p).sum())
        # Add-one smoothing keeps the divergence finite when the tail lands
        # in buckets the snapshot never filled (the interesting case).
        buckets = self._base.shape[0]
        smooth_base = (self._base + 1.0) / (base_total + buckets)
        smooth_tail = (self._tail + 1.0) / (appended + buckets)
        kl = float(np.sum(smooth_tail * np.log(smooth_tail / smooth_base)))
        return DriftMetrics(
            self.attribute, appended, out_of_range, occupancy_shift, max(0.0, kl)
        )

    def to_state(self) -> dict:
        """JSON-serializable snapshot of the tracker."""
        return {
            "attribute": self.attribute,
            "cuts": [float(cut) for cut in self._bucketing.cuts],
            "base_occupancy": [float(size) for size in self._base],
            "tail_counts": [int(count) for count in self._tail],
            "below": int(self._below),
            "above": int(self._above),
            "seed": int(self._seed),
            "capacity": int(self._capacity),
            "reservoir": [float(value) for value in self._reservoir.sample()],
            "seen": int(self._reservoir.seen),
        }

    @classmethod
    def from_state(cls, state: Mapping) -> "AttributeDriftTracker":
        """Rebuild a tracker from :meth:`to_state` output.

        The reservoir is restored from its persisted sample; continued
        sampling draws from a generator re-seeded with the persisted
        ``seen`` count folded in, so a restored tracker remains
        deterministic for a given state without replaying the full stream.
        """
        seen = int(state.get("seen", 0))
        tracker = cls(
            attribute=str(state["attribute"]),
            cuts=np.asarray(state["cuts"], dtype=np.float64),
            base_occupancy=np.asarray(state["base_occupancy"], dtype=np.float64),
            seed=int(state["seed"]),
            reservoir_capacity=int(state["capacity"]),
        )
        tracker._tail = np.asarray(state["tail_counts"], dtype=np.int64).copy()
        tracker._below = int(state["below"])
        tracker._above = int(state["above"])
        tracker._reservoir = ReservoirSampler(
            tracker._capacity,
            rng=np.random.default_rng((tracker._seed, seen)),
        )
        tracker._reservoir.extend(np.asarray(state["reservoir"], dtype=np.float64))
        tracker._reservoir._seen = max(seen, tracker._reservoir.seen)
        return tracker


class DriftTracker:
    """Drift trackers for every bucket/average attribute of a plan's results.

    Frozen at a snapshot by :meth:`from_results` (one tracker per
    bucket/average request, keyed by attribute; grid and presumptive
    requests share the same attributes or are re-frozen wholesale, so they
    carry no tracker of their own), fed appended chunks by
    :meth:`observe`, and re-frozen by :meth:`reset` when the boundaries
    rebuild.
    """

    def __init__(self, trackers: Mapping[str, AttributeDriftTracker]) -> None:
        self._trackers = dict(trackers)

    @classmethod
    def from_results(
        cls,
        results: "PlanResults",
        seed: int,
        reservoir_capacity: int = DEFAULT_RESERVOIR_CAPACITY,
    ) -> "DriftTracker":
        """Freeze trackers at an executed plan's cuts and occupancies."""
        trackers: dict[str, AttributeDriftTracker] = {}
        for request_id, part in enumerate(results.parts):
            request = results.request(request_id)
            if request.kind not in ("bucket", "average"):
                continue
            if request.attribute in trackers:
                continue
            trackers[request.attribute] = AttributeDriftTracker(
                attribute=request.attribute,
                cuts=results.bucketing(request_id).cuts,
                base_occupancy=np.asarray(part.sizes, dtype=np.float64),
                seed=(int(seed) + len(trackers)) & 0x7FFFFFFF,
                reservoir_capacity=reservoir_capacity,
            )
        return cls(trackers)

    @property
    def attributes(self) -> tuple[str, ...]:
        """Tracked attribute names, in request order."""
        return tuple(self._trackers)

    def __len__(self) -> int:
        return len(self._trackers)

    @property
    def appended(self) -> int:
        """Appended tuples observed since the last freeze (max over attrs)."""
        if not self._trackers:
            return 0
        return max(tracker.appended for tracker in self._trackers.values())

    def observe(self, relation: Relation) -> None:
        """Fold one appended chunk; attributes absent from it are skipped."""
        names = set(relation.schema.names())
        for attribute, tracker in self._trackers.items():
            if attribute in names:
                tracker.observe(relation.column(attribute))

    def metrics(self) -> dict[str, DriftMetrics]:
        """Current drift reading per tracked attribute."""
        return {
            attribute: tracker.metrics()
            for attribute, tracker in self._trackers.items()
        }

    def max_metrics(self) -> DriftMetrics | None:
        """The worst reading across attributes (``None`` when untracked)."""
        readings = list(self.metrics().values())
        if not readings:
            return None
        return max(
            readings,
            key=lambda m: (m.occupancy_shift, m.kl_divergence, m.out_of_range_mass),
        )

    def reset(
        self,
        results: "PlanResults",
        seed: int,
        reservoir_capacity: int | None = None,
    ) -> None:
        """Re-freeze at a rebuilt snapshot's cuts and occupancies."""
        capacity = (
            reservoir_capacity
            if reservoir_capacity is not None
            else next(
                (t._capacity for t in self._trackers.values()),
                DEFAULT_RESERVOIR_CAPACITY,
            )
        )
        self._trackers = DriftTracker.from_results(
            results, seed, reservoir_capacity=capacity
        )._trackers

    def to_state(self) -> dict:
        """JSON-serializable snapshot of every tracker."""
        return {
            "version": 1,
            "trackers": [
                tracker.to_state() for tracker in self._trackers.values()
            ],
        }

    @classmethod
    def from_state(cls, state: Mapping) -> "DriftTracker":
        """Rebuild the tracker set from :meth:`to_state` output."""
        trackers = {}
        for tracker_state in state.get("trackers", []):
            tracker = AttributeDriftTracker.from_state(tracker_state)
            trackers[tracker.attribute] = tracker
        return cls(trackers)
