"""Shared infrastructure for the reproduction experiments.

Each ``figureN.py`` / ``table1.py`` module exposes a ``run_*`` function that
returns a structured result; this module provides the common pieces: a
monotonic timer, a parameter-sweep result container, and helpers for
geometric size sweeps (the paper's performance figures use log-spaced data
sizes).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Mapping, Sequence

from repro.exceptions import ExperimentError

__all__ = [
    "time_call",
    "SweepPoint",
    "SweepResult",
    "geometric_sizes",
    "bench_workload",
    "throughput_workload",
    "write_bench_json",
]


def time_call(function: Callable[[], object], repeats: int = 1) -> float:
    """Wall-clock seconds of the fastest of ``repeats`` calls to ``function``.

    The minimum over repeats is the conventional robust estimator for
    micro-benchmarks (it filters scheduler noise); the experiment drivers use
    small repeat counts because each call is already substantial.
    """
    if repeats <= 0:
        raise ExperimentError("repeats must be positive")
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best


@dataclass(frozen=True)
class SweepPoint:
    """One point of a parameter sweep: the parameter value plus measurements."""

    parameter: float
    measurements: dict[str, float]

    def measurement(self, name: str) -> float:
        """Look up one measurement by name."""
        if name not in self.measurements:
            raise ExperimentError(
                f"unknown measurement {name!r}; available: {sorted(self.measurements)}"
            )
        return self.measurements[name]


@dataclass
class SweepResult:
    """A named parameter sweep with one :class:`SweepPoint` per parameter value."""

    name: str
    parameter_name: str
    points: list[SweepPoint] = field(default_factory=list)

    def add(self, parameter: float, **measurements: float) -> None:
        """Append a sweep point."""
        self.points.append(SweepPoint(parameter=float(parameter), measurements=dict(measurements)))

    def series(self, measurement: str) -> list[tuple[float, float]]:
        """``(parameter, value)`` pairs of one measurement across the sweep."""
        return [(point.parameter, point.measurement(measurement)) for point in self.points]

    def measurement_names(self) -> list[str]:
        """Names of the measurements present at the first sweep point."""
        if not self.points:
            return []
        return sorted(self.points[0].measurements)

    def as_rows(self) -> list[list[float]]:
        """Rows ``[parameter, m1, m2, ...]`` ordered as :meth:`measurement_names`."""
        names = self.measurement_names()
        return [
            [point.parameter] + [point.measurement(name) for name in names]
            for point in self.points
        ]


def geometric_sizes(
    smallest: int, largest: int, points: int
) -> list[int]:
    """Log-spaced integer sizes from ``smallest`` to ``largest`` inclusive."""
    if smallest <= 0 or largest < smallest or points <= 0:
        raise ExperimentError("invalid geometric size sweep parameters")
    if points == 1:
        return [int(largest)]
    ratio = (largest / smallest) ** (1.0 / (points - 1))
    sizes = []
    value = float(smallest)
    for _ in range(points):
        sizes.append(int(round(value)))
        value *= ratio
    sizes[-1] = int(largest)
    # Deduplicate while preserving order (small sweeps can collide after rounding).
    seen: set[int] = set()
    unique = []
    for size in sizes:
        if size not in seen:
            seen.add(size)
            unique.append(size)
    return unique


def ensure_positive(name: str, values: Iterable[float] | Sequence[float]) -> None:
    """Validate that every element of a sweep specification is positive."""
    for value in values:
        if value <= 0:
            raise ExperimentError(f"{name} entries must be positive, got {value}")


def bench_workload(
    name: str,
    old_seconds: float,
    new_seconds: float,
    **parameters: object,
) -> dict[str, object]:
    """One old-vs-new benchmark measurement as a JSON-serializable row.

    ``speedup`` is ``old_seconds / new_seconds`` (``inf``-safe: 0.0 when the
    new timing is zero-length, which only happens for degenerate workloads).
    """
    if old_seconds < 0 or new_seconds < 0:
        raise ExperimentError("benchmark timings must be non-negative")
    speedup = old_seconds / new_seconds if new_seconds > 0 else 0.0
    return {
        "name": name,
        "old_seconds": float(old_seconds),
        "new_seconds": float(new_seconds),
        "speedup": float(speedup),
        "parameters": dict(parameters),
    }


def throughput_workload(
    name: str,
    seconds: float,
    num_tuples: int,
    old_seconds: float | None = None,
    **parameters: object,
) -> dict[str, object]:
    """One throughput benchmark measurement as a JSON-serializable row.

    Used by workloads whose figure of merit is scan rate rather than an
    old-vs-new speedup — e.g. the out-of-core catalog, where
    ``tuples_per_second`` tracks how fast the pipeline drives a chunked
    :class:`~repro.pipeline.DataSource` end to end.  When ``old_seconds``
    is given (the baseline configuration timed verbatim on the same
    workload) the row additionally records it and the resulting
    ``speedup``, so throughput workloads can carry an old-vs-new regression
    floor like the :func:`bench_workload` rows do.
    """
    if seconds < 0:
        raise ExperimentError("benchmark timings must be non-negative")
    if num_tuples < 0:
        raise ExperimentError("benchmark tuple counts must be non-negative")
    rate = num_tuples / seconds if seconds > 0 else 0.0
    row: dict[str, object] = {
        "name": name,
        "seconds": float(seconds),
        "num_tuples": int(num_tuples),
        "tuples_per_second": float(rate),
        "parameters": dict(parameters),
    }
    if old_seconds is not None:
        if old_seconds < 0:
            raise ExperimentError("benchmark timings must be non-negative")
        row["old_seconds"] = float(old_seconds)
        row["speedup"] = float(old_seconds / seconds) if seconds > 0 else 0.0
    return row


def write_bench_json(
    path: str | Path,
    benchmark: str,
    workloads: Sequence[Mapping[str, object]],
    metadata: Mapping[str, object] | None = None,
) -> Path:
    """Write a ``BENCH_*.json`` performance-trajectory record.

    The file captures old-vs-new wall-clock timings per workload (rows from
    :func:`bench_workload`) so that successive PRs can compare their bench
    baselines.  The latest run stays at the top level; any record already
    at ``path`` is appended to the ``history`` list (oldest first), so the
    perf trajectory survives across runs and PRs instead of being
    overwritten.  Returns the written path.
    """
    record: dict[str, object] = {
        "benchmark": benchmark,
        "created_unix": time.time(),
        "metadata": dict(metadata or {}),
        "workloads": [dict(workload) for workload in workloads],
    }
    target = Path(path)
    history: list[object] = []
    if target.exists():
        try:
            previous = json.loads(target.read_text(encoding="utf-8"))
        except (ValueError, OSError):
            previous = None
        if isinstance(previous, dict):
            prior = previous.pop("history", [])
            if isinstance(prior, list):
                history.extend(prior)
            history.append(previous)
    if history:
        record["history"] = history
    target.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return target
