"""Figure 11 reproduction: optimized-support rule performance (§6.2).

The paper times the effective-index linear algorithm against the naive
quadratic method for finding optimized support rules with a 50 % minimum
confidence, over bucket counts from 100 up to 10⁶, reporting an
order-of-magnitude advantage beyond about a hundred buckets and linear growth
of the fast algorithm.

The reproduction mirrors :mod:`repro.experiments.figure10`: synthetic planted
profiles, both solvers timed, results cross-checked, speedups reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.naive import naive_maximize_support
from repro.core.optimized_support import maximize_support
from repro.datasets.synthetic import planted_profile
from repro.exceptions import ExperimentError
from repro.experiments.reporting import format_seconds, format_table
from repro.experiments.runner import SweepResult, time_call

__all__ = ["Figure11Result", "run_figure11", "DEFAULT_BUCKET_COUNTS"]

#: Scaled-down default sweep (the paper sweeps 100 .. 1e6 buckets).
DEFAULT_BUCKET_COUNTS: tuple[int, ...] = (100, 200, 500, 1000, 2000, 5000)


@dataclass(frozen=True)
class Figure11Result:
    """Timing sweep of the linear and quadratic optimized-support solvers."""

    min_confidence: float
    sweep: SweepResult
    agreements: tuple[bool, ...]

    def report(self) -> str:
        """Aligned text table of the sweep."""
        rows = []
        for point, agreed in zip(self.sweep.points, self.agreements):
            fast = point.measurement("effective_index_algorithm")
            naive = point.measurement("naive_quadratic")
            rows.append(
                [
                    int(point.parameter),
                    format_seconds(fast),
                    format_seconds(naive) if naive >= 0 else "skipped",
                    f"{naive / fast:.1f}x" if naive >= 0 and fast > 0 else "-",
                    "yes" if agreed else "NO",
                ]
            )
        return format_table(
            ["buckets", "effective-index algorithm", "naive quadratic", "speedup", "same optimum"],
            rows,
            title=(
                "Figure 11 — optimized support rules, minimum confidence "
                f"{self.min_confidence:.0%}"
            ),
        )


def run_figure11(
    bucket_counts: Sequence[int] = DEFAULT_BUCKET_COUNTS,
    min_confidence: float = 0.50,
    naive_cutoff: int = 20_000,
    seed: int | None = 7,
) -> Figure11Result:
    """Time the linear and quadratic solvers across a sweep of bucket counts."""
    if not bucket_counts:
        raise ExperimentError("bucket_counts must not be empty")
    sweep = SweepResult(name="figure11", parameter_name="buckets")
    agreements: list[bool] = []
    for index, num_buckets in enumerate(bucket_counts):
        sizes, values = planted_profile(
            int(num_buckets),
            inside_confidence=0.7,
            outside_confidence=0.2,
            seed=None if seed is None else seed + index,
        )

        fast_seconds = time_call(lambda: maximize_support(sizes, values, min_confidence))
        fast_result = maximize_support(sizes, values, min_confidence)

        if num_buckets <= naive_cutoff:
            naive_seconds = time_call(
                lambda: naive_maximize_support(sizes, values, min_confidence)
            )
            naive_result = naive_maximize_support(sizes, values, min_confidence)
            agreed = (
                (fast_result is None and naive_result is None)
                or (
                    fast_result is not None
                    and naive_result is not None
                    and abs(fast_result.support_count - naive_result.support_count) < 1e-6
                )
            )
        else:
            naive_seconds = -1.0
            agreed = True
        agreements.append(agreed)
        sweep.add(
            num_buckets,
            effective_index_algorithm=fast_seconds,
            naive_quadratic=naive_seconds,
        )
    return Figure11Result(
        min_confidence=min_confidence, sweep=sweep, agreements=tuple(agreements)
    )
