"""Figure 1 reproduction: sample size versus bucket-error probability (§3.2).

The figure plots ``p_e = Pr(|X − S/M| ≥ 0.5·S/M)`` for ``X ~ B(S, 1/M)``
against the per-bucket sample factor ``S/M``, for ``M ∈ {5, 10, 10000}``.
The paper reads off that the curve drops sharply until ``S/M ≈ 40`` (where it
falls below 0.3 %) and flattens afterwards, which motivates the ``S = 40·M``
default of the bucketizer.

The reproduction computes the exact binomial tails, optionally cross-checks
them with a Monte-Carlo simulation, and reports the smallest factor that
achieves the paper's 0.3 % target for each ``M``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bucketing.sample_size import (
    deviation_probability,
    empirical_deviation_probability,
    recommended_sample_factor,
)
from repro.experiments.reporting import format_table

__all__ = ["Figure1Result", "run_figure1"]

#: Bucket counts plotted in the paper's Figure 1.
PAPER_BUCKET_COUNTS: tuple[int, ...] = (5, 10, 10_000)

#: Per-bucket sample factors at which the curves are evaluated.
DEFAULT_FACTORS: tuple[int, ...] = (1, 2, 5, 10, 20, 30, 40, 50, 60, 80, 100)


@dataclass(frozen=True)
class Figure1Result:
    """Curves of error probability versus sample factor."""

    delta: float
    factors: tuple[int, ...]
    bucket_counts: tuple[int, ...]
    analytic: dict[int, tuple[float, ...]]
    empirical: dict[int, tuple[float, ...]] | None
    recommended_factors: dict[int, int]

    def report(self) -> str:
        """Aligned text table of the curves."""
        headers = ["S/M"] + [f"M={m} (exact)" for m in self.bucket_counts]
        if self.empirical is not None:
            headers += [f"M={m} (simulated)" for m in self.bucket_counts]
        rows = []
        for index, factor in enumerate(self.factors):
            row: list[object] = [factor]
            row += [self.analytic[m][index] for m in self.bucket_counts]
            if self.empirical is not None:
                row += [self.empirical[m][index] for m in self.bucket_counts]
            rows.append(row)
        recommendation = ", ".join(
            f"M={m}: S/M={f}" for m, f in self.recommended_factors.items()
        )
        table = format_table(
            headers,
            rows,
            title="Figure 1 — probability that a bucket deviates by more than 50%",
        )
        return f"{table}\nSmallest factor reaching p_e <= 0.3%: {recommendation}"


def run_figure1(
    bucket_counts: tuple[int, ...] = PAPER_BUCKET_COUNTS,
    factors: tuple[int, ...] = DEFAULT_FACTORS,
    delta: float = 0.5,
    simulate: bool = True,
    simulation_trials: int = 4000,
    seed: int | None = 0,
) -> Figure1Result:
    """Compute the Figure 1 curves (and optionally a Monte-Carlo cross-check)."""
    rng = np.random.default_rng(seed)
    analytic: dict[int, tuple[float, ...]] = {}
    empirical: dict[int, tuple[float, ...]] | None = {} if simulate else None
    recommended: dict[int, int] = {}
    for bucket_count in bucket_counts:
        analytic[bucket_count] = tuple(
            deviation_probability(factor * bucket_count, bucket_count, delta)
            for factor in factors
        )
        if simulate:
            empirical[bucket_count] = tuple(
                empirical_deviation_probability(
                    factor * bucket_count,
                    bucket_count,
                    delta,
                    trials=simulation_trials,
                    rng=rng,
                )
                for factor in factors
            )
        recommended[bucket_count] = recommended_sample_factor(bucket_count, delta)
    return Figure1Result(
        delta=delta,
        factors=tuple(factors),
        bucket_counts=tuple(bucket_counts),
        analytic=analytic,
        empirical=empirical,
        recommended_factors=recommended,
    )
