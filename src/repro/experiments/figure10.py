"""Figure 10 reproduction: optimized-confidence rule performance (§6.2).

The paper times the hull-based linear algorithm against the naive quadratic
method for finding optimized confidence rules with a 5 % minimum support,
over bucket counts from 100 up to 10⁶, and reports that the linear algorithm
wins by more than an order of magnitude beyond a few hundred buckets while
its running time grows linearly.

The reproduction sweeps the bucket count over synthetic planted profiles
(the figure's x-axis is the number of buckets, so profiles are generated
directly), times both algorithms, verifies they return the same optimum, and
reports the speedup.  The naive method is skipped above
``naive_cutoff`` buckets to keep the default run short — exactly as one
would do with the paper's own quadratic baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.naive import naive_maximize_ratio
from repro.core.optimized_confidence import maximize_ratio
from repro.datasets.synthetic import planted_profile
from repro.exceptions import ExperimentError
from repro.experiments.reporting import format_seconds, format_table
from repro.experiments.runner import SweepResult, time_call

__all__ = ["Figure10Result", "run_figure10", "DEFAULT_BUCKET_COUNTS"]

#: Scaled-down default sweep (the paper sweeps 100 .. 1e6 buckets).
DEFAULT_BUCKET_COUNTS: tuple[int, ...] = (100, 200, 500, 1000, 2000, 5000)


@dataclass(frozen=True)
class Figure10Result:
    """Timing sweep of the linear and quadratic optimized-confidence solvers."""

    min_support: float
    sweep: SweepResult
    agreements: tuple[bool, ...]

    def report(self) -> str:
        """Aligned text table of the sweep."""
        rows = []
        for point, agreed in zip(self.sweep.points, self.agreements):
            fast = point.measurement("hull_algorithm")
            naive = point.measurement("naive_quadratic")
            rows.append(
                [
                    int(point.parameter),
                    format_seconds(fast),
                    format_seconds(naive) if naive >= 0 else "skipped",
                    f"{naive / fast:.1f}x" if naive >= 0 and fast > 0 else "-",
                    "yes" if agreed else "NO",
                ]
            )
        return format_table(
            ["buckets", "hull algorithm", "naive quadratic", "speedup", "same optimum"],
            rows,
            title=(
                "Figure 10 — optimized confidence rules, minimum support "
                f"{self.min_support:.0%}"
            ),
        )


def run_figure10(
    bucket_counts: Sequence[int] = DEFAULT_BUCKET_COUNTS,
    min_support: float = 0.05,
    naive_cutoff: int = 20_000,
    seed: int | None = 5,
) -> Figure10Result:
    """Time the linear and quadratic solvers across a sweep of bucket counts."""
    if not bucket_counts:
        raise ExperimentError("bucket_counts must not be empty")
    sweep = SweepResult(name="figure10", parameter_name="buckets")
    agreements: list[bool] = []
    for index, num_buckets in enumerate(bucket_counts):
        sizes, values = planted_profile(int(num_buckets), seed=None if seed is None else seed + index)
        min_count = min_support * float(sizes.sum())

        fast_seconds = time_call(lambda: maximize_ratio(sizes, values, min_count))
        fast_result = maximize_ratio(sizes, values, min_count)

        if num_buckets <= naive_cutoff:
            naive_seconds = time_call(lambda: naive_maximize_ratio(sizes, values, min_count))
            naive_result = naive_maximize_ratio(sizes, values, min_count)
            agreed = (
                fast_result is not None
                and naive_result is not None
                and abs(fast_result.ratio - naive_result.ratio) < 1e-9
                and abs(fast_result.support_count - naive_result.support_count) < 1e-6
            )
        else:
            naive_seconds = -1.0
            agreed = fast_result is not None
        agreements.append(agreed)
        sweep.add(
            num_buckets,
            hull_algorithm=fast_seconds,
            naive_quadratic=naive_seconds,
        )
    return Figure10Result(min_support=min_support, sweep=sweep, agreements=tuple(agreements))
