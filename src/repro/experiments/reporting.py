"""Plain-text reporting helpers for the experiment drivers.

The paper presents its evaluation as figures and one table; without a
plotting dependency the reproduction prints aligned text tables (one row per
sweep point / table row), which is what ``EXPERIMENTS.md`` and the CLI show.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_percent", "format_seconds"]


def format_percent(value: float, digits: int = 2) -> str:
    """Format a fraction as a percentage string."""
    return f"{value * 100:.{digits}f}%"


def format_seconds(value: float) -> str:
    """Format a duration with a sensible unit."""
    if value < 1e-3:
        return f"{value * 1e6:.1f}us"
    if value < 1.0:
        return f"{value * 1e3:.1f}ms"
    return f"{value:.2f}s"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned monospace table."""
    rendered_rows = [[_render(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append(line(["-" * width for width in widths]))
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)


def _render(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)
