"""Table I reproduction: approximation error versus number of buckets (§3.4).

Table I instantiates the granularity error bounds for an optimal range with
support 30 % and confidence 70 %: for each bucket count the worst-case
support and confidence of the bucket approximation is shown.  The
reproduction has two parts:

* the *analytic* rows, straight from the bound formulas / worst-case
  interval construction of :mod:`repro.bucketing.errors`;
* an *empirical* check: a relation with a planted optimal range of the same
  support and confidence is bucketed at each size, the optimized rule is
  mined over the buckets, and the measured deviation from the planted
  optimum is compared against the analytic interval (it must fall inside).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bucketing.equidepth_sort import SortingEquiDepthBucketizer
from repro.bucketing.errors import GranularityErrorRow, granularity_error_table
from repro.core.optimized_confidence import solve_optimized_confidence
from repro.core.profile import BucketProfile
from repro.datasets.synthetic import planted_range_relation
from repro.experiments.reporting import format_percent, format_table
from repro.relation.conditions import BooleanIs

__all__ = ["Table1Result", "EmpiricalErrorRow", "run_table1"]

#: Bucket counts of the paper's Table I.
PAPER_BUCKET_COUNTS: tuple[int, ...] = (10, 50, 100, 500, 1000)


@dataclass(frozen=True)
class EmpiricalErrorRow:
    """Measured approximation quality at one bucket count."""

    num_buckets: int
    measured_support: float
    measured_confidence: float
    support_within_bound: bool
    confidence_within_bound: bool


@dataclass(frozen=True)
class Table1Result:
    """Analytic Table I rows plus the empirical verification rows."""

    optimal_support: float
    optimal_confidence: float
    analytic_rows: tuple[GranularityErrorRow, ...]
    empirical_rows: tuple[EmpiricalErrorRow, ...]

    def report(self) -> str:
        """Aligned text rendering of both halves of the reproduction."""
        analytic_table = format_table(
            ["buckets", "support range", "confidence range"],
            [
                [
                    row.num_buckets,
                    f"{format_percent(row.support_low)} ... {format_percent(row.support_high)}",
                    f"{format_percent(row.confidence_low)} ... {format_percent(row.confidence_high)}",
                ]
                for row in self.analytic_rows
            ],
            title=(
                "Table I — worst-case approximation for support"
                f" {format_percent(self.optimal_support)} /"
                f" confidence {format_percent(self.optimal_confidence)}"
            ),
        )
        empirical_table = format_table(
            ["buckets", "measured support", "measured confidence", "within bounds"],
            [
                [
                    row.num_buckets,
                    format_percent(row.measured_support),
                    format_percent(row.measured_confidence),
                    "yes" if row.support_within_bound and row.confidence_within_bound else "NO",
                ]
                for row in self.empirical_rows
            ],
            title="Empirical check on a planted relation",
        )
        return f"{analytic_table}\n\n{empirical_table}"


def run_table1(
    bucket_counts: tuple[int, ...] = PAPER_BUCKET_COUNTS,
    optimal_support: float = 0.30,
    optimal_confidence: float = 0.70,
    num_tuples: int = 60_000,
    seed: int | None = 11,
) -> Table1Result:
    """Reproduce Table I analytically and verify it empirically."""
    analytic_rows = tuple(
        granularity_error_table(bucket_counts, optimal_support, optimal_confidence)
    )

    # Plant a relation whose optimal range has (approximately) the target
    # support and confidence: the range occupies `optimal_support` of a
    # uniform domain and the inside confidence equals `optimal_confidence`
    # while the outside confidence is far below any competitive level.
    low = 50.0 - 50.0 * optimal_support
    high = 50.0 + 50.0 * optimal_support
    relation, truth = planted_range_relation(
        num_tuples,
        low=low,
        high=high,
        inside_probability=optimal_confidence,
        outside_probability=0.02,
        seed=seed,
    )
    objective = BooleanIs(truth.objective, True)
    bucketizer = SortingEquiDepthBucketizer()
    values = relation.numeric_column(truth.attribute)

    empirical_rows = []
    for analytic_row in analytic_rows:
        bucketing = bucketizer.build(values, analytic_row.num_buckets)
        profile = BucketProfile.from_relation(
            relation, truth.attribute, objective, bucketing
        )
        selection = solve_optimized_confidence(profile, min_support=optimal_support)
        measured_support = selection.support if selection else 0.0
        measured_confidence = selection.ratio if selection else 0.0
        empirical_rows.append(
            EmpiricalErrorRow(
                num_buckets=analytic_row.num_buckets,
                measured_support=measured_support,
                measured_confidence=measured_confidence,
                support_within_bound=(
                    analytic_row.support_low - 0.02
                    <= measured_support
                    <= analytic_row.support_high + 0.02
                ),
                confidence_within_bound=(
                    analytic_row.confidence_low - 0.02
                    <= measured_confidence
                    <= analytic_row.confidence_high + 0.02
                ),
            )
        )
    return Table1Result(
        optimal_support=optimal_support,
        optimal_confidence=optimal_confidence,
        analytic_rows=analytic_rows,
        empirical_rows=tuple(empirical_rows),
    )
