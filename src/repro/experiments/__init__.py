"""Experiment harness reproducing the paper's figures and tables.

One module per experiment: Figure 1 (sample size), Table I (granularity
error), Figure 9 (bucketing performance), Figure 10 (optimized confidence
performance), Figure 11 (optimized support performance), and the
all-combinations catalog claim of §1.3.  Each ``run_*`` function returns a
structured result whose ``report()`` method renders the paper-style table.
"""

from repro.experiments.bucket_sweep import (
    BucketQualityResult,
    BucketQualityRow,
    run_bucket_quality_sweep,
)
from repro.experiments.catalog import CatalogExperimentResult, run_catalog_experiment
from repro.experiments.figure1 import Figure1Result, run_figure1
from repro.experiments.figure9 import Figure9Result, run_figure9
from repro.experiments.figure10 import Figure10Result, run_figure10
from repro.experiments.figure11 import Figure11Result, run_figure11
from repro.experiments.reporting import format_percent, format_seconds, format_table
from repro.experiments.runner import (
    SweepPoint,
    SweepResult,
    bench_workload,
    geometric_sizes,
    throughput_workload,
    time_call,
    write_bench_json,
)
from repro.experiments.table1 import EmpiricalErrorRow, Table1Result, run_table1

__all__ = [
    "run_figure1",
    "Figure1Result",
    "run_table1",
    "Table1Result",
    "EmpiricalErrorRow",
    "run_figure9",
    "Figure9Result",
    "run_figure10",
    "Figure10Result",
    "run_figure11",
    "Figure11Result",
    "run_catalog_experiment",
    "bench_workload",
    "throughput_workload",
    "write_bench_json",
    "CatalogExperimentResult",
    "run_bucket_quality_sweep",
    "BucketQualityResult",
    "BucketQualityRow",
    "format_table",
    "format_percent",
    "format_seconds",
    "time_call",
    "SweepPoint",
    "SweepResult",
    "geometric_sizes",
]
