"""All-combinations mining experiment (§1.3 narrative claim).

§1.3 and the introduction claim that the efficiency of the algorithms makes
it possible to "compute a complete set of optimized rules for all
combinations of hundreds of numeric and Boolean attributes in a reasonable
time".  This experiment quantifies that claim for the reproduction: it
generates a wide relation (configurable attribute counts), mines the
optimized-confidence and optimized-support rules for every
(numeric, Boolean) pair, and reports the total wall-clock time, the pair
throughput, and the number of rules found.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.synthetic import paper_benchmark_table
from repro.experiments.reporting import format_seconds, format_table
from repro.experiments.runner import time_call
from repro.mining.catalog import RuleCatalog, mine_rule_catalog
from repro.pipeline.sources import DataSource
from repro.relation.relation import Relation

__all__ = ["CatalogExperimentResult", "run_catalog_experiment"]


@dataclass(frozen=True)
class CatalogExperimentResult:
    """Outcome of the all-combinations mining run."""

    num_tuples: int
    num_numeric: int
    num_boolean: int
    num_buckets: int
    seconds: float
    catalog: RuleCatalog

    @property
    def num_pairs(self) -> int:
        """Number of (numeric, Boolean) attribute pairs mined."""
        return self.catalog.num_pairs

    @property
    def pairs_per_second(self) -> float:
        """Mining throughput in attribute pairs per second."""
        if self.seconds == 0:
            return 0.0
        return self.num_pairs / self.seconds

    def report(self) -> str:
        """Aligned text summary plus the top rules by lift."""
        summary = format_table(
            ["tuples", "numeric", "boolean", "pairs", "rules", "time", "pairs/s"],
            [
                [
                    self.num_tuples,
                    self.num_numeric,
                    self.num_boolean,
                    self.num_pairs,
                    len(self.catalog),
                    format_seconds(self.seconds),
                    f"{self.pairs_per_second:.1f}",
                ]
            ],
            title="All-combinations optimized rule mining",
        )
        top_rows = [
            [
                entry.rule.attribute,
                str(entry.rule.objective),
                str(entry.rule.kind),
                f"{entry.rule.support:.1%}",
                f"{entry.rule.confidence:.1%}",
                f"{entry.lift:.2f}",
            ]
            for entry in self.catalog.top(10, by="lift")
        ]
        top_table = format_table(
            ["attribute", "objective", "kind", "support", "confidence", "lift"],
            top_rows,
            title="Top rules by lift",
        )
        return f"{summary}\n\n{top_table}"


def run_catalog_experiment(
    num_tuples: int = 20_000,
    num_numeric: int = 16,
    num_boolean: int = 16,
    num_buckets: int = 200,
    min_support: float = 0.10,
    min_confidence: float = 0.50,
    seed: int | None = 13,
    source: DataSource | None = None,
    executor: str = "serial",
) -> CatalogExperimentResult:
    """Mine all attribute pairs of a wide synthetic relation and time it.

    By default the relation is generated in memory; pass any
    :class:`~repro.pipeline.DataSource` as ``source`` to run the identical
    workload over chunked or out-of-core data instead (``num_tuples`` /
    ``num_numeric`` / ``num_boolean`` are then read from the source's
    schema and scan).
    """
    if source is None:
        data: Relation | DataSource = paper_benchmark_table(
            num_tuples, num_numeric=num_numeric, num_boolean=num_boolean, seed=seed
        )
        schema = data.schema
    else:
        data = source
        schema = source.schema
    num_numeric = len(schema.numeric_names())
    num_boolean = len(schema.boolean_names())

    catalog_holder: dict[str, RuleCatalog] = {}

    def _mine() -> None:
        catalog_holder["catalog"] = mine_rule_catalog(
            data,
            min_support=min_support,
            min_confidence=min_confidence,
            num_buckets=num_buckets,
            executor=executor,
        )

    seconds = time_call(_mine)
    catalog = catalog_holder["catalog"]
    if source is not None:
        # The catalog read the size off its cached profiles — no extra scan.
        num_tuples = catalog.num_tuples
    return CatalogExperimentResult(
        num_tuples=num_tuples,
        num_numeric=num_numeric,
        num_boolean=num_boolean,
        num_buckets=num_buckets,
        seconds=seconds,
        catalog=catalog,
    )
