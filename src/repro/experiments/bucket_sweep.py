"""Bucket-count quality sweep (empirical companion to §3.4 / Table I).

Table I bounds the approximation error analytically; this experiment measures
it end to end: a relation with a planted optimal range is mined with the
*sampled* bucketizer at a sweep of bucket counts, and for each count the
confidence shortfall relative to the finest-bucket (exact) optimum is
reported next to the §3.4 bound.  It doubles as the guidance the paper gives
implementers — "the number of buckets should be much larger than
``1/supp_opt``" — expressed as data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.bucketing.equidepth_sample import SampledEquiDepthBucketizer
from repro.bucketing.errors import confidence_error_bound
from repro.bucketing.finest import finest_bucketing
from repro.core.optimized_confidence import solve_optimized_confidence
from repro.core.profile import BucketProfile
from repro.datasets.synthetic import planted_range_relation
from repro.exceptions import ExperimentError
from repro.experiments.reporting import format_percent, format_table
from repro.relation.conditions import BooleanIs

__all__ = ["BucketQualityRow", "BucketQualityResult", "run_bucket_quality_sweep"]


@dataclass(frozen=True)
class BucketQualityRow:
    """Measured rule quality at one bucket count."""

    num_buckets: int
    measured_confidence: float
    exact_confidence: float
    relative_shortfall: float
    bound: float


@dataclass(frozen=True)
class BucketQualityResult:
    """The full sweep plus the exact-bucket reference optimum."""

    min_support: float
    rows: tuple[BucketQualityRow, ...]

    def report(self) -> str:
        """Aligned text table of the sweep."""
        return format_table(
            ["buckets", "measured confidence", "exact optimum", "shortfall", "§3.4 bound"],
            [
                [
                    row.num_buckets,
                    format_percent(row.measured_confidence),
                    format_percent(row.exact_confidence),
                    format_percent(row.relative_shortfall),
                    "n/a" if np.isinf(row.bound) else format_percent(row.bound),
                ]
                for row in self.rows
            ],
            title=(
                "Rule quality vs number of buckets "
                f"(optimized confidence, support >= {self.min_support:.0%})"
            ),
        )


def run_bucket_quality_sweep(
    bucket_counts: Sequence[int] = (10, 20, 50, 100, 200, 500, 1000),
    num_tuples: int = 60_000,
    min_support: float = 0.20,
    seed: int | None = 37,
) -> BucketQualityResult:
    """Measure optimized-confidence quality across a sweep of bucket counts."""
    if not bucket_counts:
        raise ExperimentError("bucket_counts must not be empty")
    rng = np.random.default_rng(seed)
    relation, truth = planted_range_relation(
        num_tuples,
        low=40.0,
        high=60.0,
        inside_probability=0.8,
        outside_probability=0.1,
        seed=rng,
    )
    objective = BooleanIs(truth.objective, True)
    values = relation.numeric_column(truth.attribute)

    # Exact reference: finest buckets (every distinct value its own bucket).
    exact_profile = BucketProfile.from_relation(
        relation, truth.attribute, objective, finest_bucketing(values)
    )
    exact = solve_optimized_confidence(exact_profile, min_support=min_support)
    if exact is None:
        raise ExperimentError("the planted relation admits no ample range")

    rows = []
    bucketizer = SampledEquiDepthBucketizer()
    for num_buckets in bucket_counts:
        bucketing = bucketizer.build(values, int(num_buckets), rng=rng)
        profile = BucketProfile.from_relation(relation, truth.attribute, objective, bucketing)
        selection = solve_optimized_confidence(profile, min_support=min_support)
        measured = selection.ratio if selection is not None else 0.0
        shortfall = max(0.0, (exact.ratio - measured) / exact.ratio)
        rows.append(
            BucketQualityRow(
                num_buckets=int(num_buckets),
                measured_confidence=measured,
                exact_confidence=exact.ratio,
                relative_shortfall=shortfall,
                bound=confidence_error_bound(int(num_buckets), min_support),
            )
        )
    return BucketQualityResult(min_support=min_support, rows=tuple(rows))
