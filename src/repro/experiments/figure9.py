"""Figure 9 reproduction: bucketing performance versus data size (§6.1).

The paper generates relations with eight numeric and eight Boolean attributes
(72 bytes per tuple), builds 1000 buckets on each numeric attribute, counts
every Boolean attribute per bucket, and compares three bucketing methods over
data sizes from 5·10⁵ to 5·10⁶ tuples:

* **Algorithm 3.1** (random sample + boundary scan) — grows linearly and wins
  by an order of magnitude on large data;
* **Naive Sort** — sorts the whole relation per numeric attribute;
* **Vertical Split Sort** — sorts a narrow (tuple-id, attribute) projection,
  2–4× faster than Naive Sort but still slower than sampling.

The reproduction runs the same pipeline (scaled-down sweep sizes by default;
pass larger ``sizes`` for a full-scale run) and reports seconds per method,
plus the speedup of Algorithm 3.1 over each baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.bucketing.counting import count_relation_buckets
from repro.bucketing.equidepth_sample import SampledEquiDepthBucketizer
from repro.bucketing.equidepth_sort import (
    naive_sort_bucketing,
    vertical_split_sort_bucketing,
)
from repro.datasets.synthetic import paper_benchmark_table
from repro.experiments.reporting import format_seconds, format_table
from repro.experiments.runner import SweepResult, time_call
from repro.relation.conditions import BooleanIs
from repro.relation.relation import Relation

__all__ = ["Figure9Result", "run_figure9", "DEFAULT_SIZES"]

#: Scaled-down default sweep (the paper sweeps 5e5 .. 5e6 tuples).  Sizes are
#: kept well above 40 * num_buckets so the sampling algorithm's advantage is
#: visible; see EXPERIMENTS.md for the full-scale discussion.
DEFAULT_SIZES: tuple[int, ...] = (20_000, 50_000, 100_000, 200_000)


@dataclass(frozen=True)
class Figure9Result:
    """Timing sweep of the three bucketing methods."""

    num_buckets: int
    sweep: SweepResult

    def report(self) -> str:
        """Aligned text table with per-method seconds and speedups."""
        rows = []
        for point in self.sweep.points:
            sample = point.measurement("algorithm_3_1")
            naive = point.measurement("naive_sort")
            vertical = point.measurement("vertical_split_sort")
            rows.append(
                [
                    int(point.parameter),
                    format_seconds(sample),
                    format_seconds(vertical),
                    format_seconds(naive),
                    f"{naive / sample:.1f}x" if sample > 0 else "-",
                    f"{vertical / sample:.1f}x" if sample > 0 else "-",
                ]
            )
        return format_table(
            [
                "tuples",
                "Algorithm 3.1",
                "Vertical Split Sort",
                "Naive Sort",
                "naive/3.1",
                "vertical/3.1",
            ],
            rows,
            title=f"Figure 9 — building {self.num_buckets} buckets per numeric attribute",
        )


def _bucket_with_sampling(
    relation: Relation, num_buckets: int, rng: np.random.Generator
) -> None:
    """The full Algorithm 3.1 pipeline over every numeric attribute."""
    bucketizer = SampledEquiDepthBucketizer()
    objectives = {
        name: BooleanIs(name, True) for name in relation.schema.boolean_names()
    }
    for attribute in relation.schema.numeric_names():
        values = relation.numeric_column(attribute)
        bucketing = bucketizer.build(values, num_buckets, rng=rng)
        count_relation_buckets(relation, attribute, bucketing, objectives)


def _bucket_with_naive_sort(relation: Relation, num_buckets: int) -> None:
    """The Naive Sort pipeline over every numeric attribute."""
    objectives = {
        name: BooleanIs(name, True) for name in relation.schema.boolean_names()
    }
    for attribute in relation.schema.numeric_names():
        bucketing = naive_sort_bucketing(relation, attribute, num_buckets)
        count_relation_buckets(relation, attribute, bucketing, objectives)


def _bucket_with_vertical_split(relation: Relation, num_buckets: int) -> None:
    """The Vertical Split Sort pipeline over every numeric attribute."""
    objectives = {
        name: BooleanIs(name, True) for name in relation.schema.boolean_names()
    }
    for attribute in relation.schema.numeric_names():
        bucketing = vertical_split_sort_bucketing(relation, attribute, num_buckets)
        count_relation_buckets(relation, attribute, bucketing, objectives)


def run_figure9(
    sizes: Sequence[int] = DEFAULT_SIZES,
    num_buckets: int = 1000,
    num_numeric: int = 8,
    num_boolean: int = 8,
    seed: int | None = 3,
) -> Figure9Result:
    """Time the three bucketing methods across a sweep of data sizes."""
    rng = np.random.default_rng(seed)
    sweep = SweepResult(name="figure9", parameter_name="tuples")
    for size in sizes:
        relation = paper_benchmark_table(
            int(size), num_numeric=num_numeric, num_boolean=num_boolean, seed=rng
        )
        buckets = min(num_buckets, max(2, int(size) // 10))
        sample_seconds = time_call(lambda: _bucket_with_sampling(relation, buckets, rng))
        naive_seconds = time_call(lambda: _bucket_with_naive_sort(relation, buckets))
        vertical_seconds = time_call(lambda: _bucket_with_vertical_split(relation, buckets))
        sweep.add(
            size,
            algorithm_3_1=sample_seconds,
            naive_sort=naive_seconds,
            vertical_split_sort=vertical_seconds,
        )
    return Figure9Result(num_buckets=num_buckets, sweep=sweep)
