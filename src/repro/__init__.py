"""repro — reproduction of "Mining Optimized Association Rules for Numeric Attributes".

The package implements the full system described by Fukuda, Morimoto,
Morishita and Tokuyama (PODS 1996 / JCSS 1999): a relational substrate with
numeric and Boolean attributes, randomized almost-equi-depth bucketing, the
linear-time optimized-confidence and optimized-support rule algorithms built
on convex-hull geometry, the §5 average-operator ranges, the §4.3 and two-
dimensional extensions, baseline algorithms, synthetic data generators, and
an experiment harness that regenerates the paper's figures and tables.

Quick start
-----------
>>> from repro import OptimizedRuleMiner, datasets
>>> relation, truth = datasets.bank_customers(20_000, seed=7)
>>> miner = OptimizedRuleMiner(relation, num_buckets=200)
>>> rule = miner.optimized_confidence_rule("balance", "card_loan", min_support=0.1)
>>> print(rule)  # doctest: +SKIP
(balance in [...]) => (card_loan = yes)  [support=..., confidence=...]
"""

from repro import (
    bucketing,
    core,
    datasets,
    extensions,
    geometry,
    mining,
    pipeline,
    relation,
    reporting,
    store,
)
from repro.bucketing import (
    Bucketing,
    EquiWidthBucketizer,
    FinestBucketizer,
    SampledEquiDepthBucketizer,
    SortingEquiDepthBucketizer,
)
from repro.core import (
    BucketProfile,
    MiningSettings,
    OptimizedAverageRule,
    OptimizedRangeRule,
    OptimizedRuleMiner,
    RangeSelection,
    RuleKind,
    maximize_ratio,
    maximize_support,
)
from repro.exceptions import (
    BucketingError,
    ConditionError,
    DatasetError,
    KernelError,
    NoFeasibleRangeError,
    OptimizationError,
    PipelineError,
    ProfileError,
    RelationError,
    ReproError,
    SchemaError,
    StoreError,
)
from repro.kernels import HAVE_NUMBA, KERNEL_TIERS, resolve_kernel_tier
from repro.pipeline import (
    ChunkedSource,
    CSVSource,
    DataSource,
    GridProfile,
    GridProfileBuilder,
    NpyDirectorySource,
    ParquetSource,
    ProfileBuilder,
    RelationSource,
    write_columnar,
)
from repro.store import ProfileStore
from repro.relation import (
    Attribute,
    AttributeKind,
    BooleanIs,
    Condition,
    NumericInRange,
    Relation,
    RelationBuilder,
    Schema,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # subpackages
    "relation",
    "bucketing",
    "geometry",
    "core",
    "mining",
    "extensions",
    "datasets",
    "pipeline",
    "reporting",
    "store",
    # relational substrate
    "Attribute",
    "AttributeKind",
    "Schema",
    "Relation",
    "RelationBuilder",
    "Condition",
    "BooleanIs",
    "NumericInRange",
    # bucketing
    "Bucketing",
    "FinestBucketizer",
    "EquiWidthBucketizer",
    "SortingEquiDepthBucketizer",
    "SampledEquiDepthBucketizer",
    # core
    "BucketProfile",
    "RangeSelection",
    "RuleKind",
    "OptimizedRangeRule",
    "OptimizedAverageRule",
    "OptimizedRuleMiner",
    "MiningSettings",
    "maximize_ratio",
    "maximize_support",
    # pipeline
    "DataSource",
    "RelationSource",
    "ChunkedSource",
    "CSVSource",
    "ProfileBuilder",
    "GridProfile",
    "GridProfileBuilder",
    # persistent profile store
    "ProfileStore",
    # columnar sources
    "NpyDirectorySource",
    "ParquetSource",
    "write_columnar",
    # kernel tiers
    "HAVE_NUMBA",
    "KERNEL_TIERS",
    "resolve_kernel_tier",
    # exceptions
    "ReproError",
    "SchemaError",
    "RelationError",
    "ConditionError",
    "BucketingError",
    "ProfileError",
    "OptimizationError",
    "NoFeasibleRangeError",
    "DatasetError",
    "PipelineError",
    "StoreError",
    "KernelError",
]
