"""Rule-mining service plane: HTTP serving from a warm profile store.

The mining stack answers a warm catalog request in well under a
millisecond of actual lookups — this package puts that behind a network
API.  :class:`RuleService` is the transport-independent core (auth, typed
error bodies, a fingerprint-keyed response LRU, and single-flight request
coalescing); :mod:`repro.service.http` serves it over a dependency-free
stdlib asyncio HTTP/1.1 server (the primary, always-available tier), and
:mod:`repro.service.fastapi_app` adapts the same core to FastAPI for ASGI
deployments.

Tier selection mirrors the counting-kernel registry: ``auto`` (the
default, also via ``REPRO_SERVICE_TIER``) picks FastAPI when the optional
dependency stack is importable and the stdlib tier otherwise; both tiers
route every request through the same handler, so they are
behavior-identical by construction.
"""

from __future__ import annotations

import os

from repro.exceptions import ServiceError
from repro.service.app import RuleService, ServiceConfig, map_error_status
from repro.service.http import BackgroundServer, serve_forever

SERVICE_TIER_ENV = "REPRO_SERVICE_TIER"
SERVICE_TIERS = ("auto", "stdlib", "fastapi")

__all__ = [
    "BackgroundServer",
    "RuleService",
    "SERVICE_TIERS",
    "SERVICE_TIER_ENV",
    "ServiceConfig",
    "map_error_status",
    "resolve_service_tier",
    "serve_forever",
]


def _have_asgi_stack() -> bool:
    from repro.service.fastapi_app import HAVE_FASTAPI

    if not HAVE_FASTAPI:
        return False
    try:  # pragma: no cover - absent in the reference environment
        import uvicorn  # noqa: F401
    except ModuleNotFoundError:
        return False
    return True  # pragma: no cover - needs fastapi + uvicorn


def resolve_service_tier(name: str | None = None) -> str:
    """Resolve a tier request to ``"stdlib"`` or ``"fastapi"``.

    ``None`` defers to the ``REPRO_SERVICE_TIER`` environment variable,
    then ``"auto"``.  ``auto`` never raises — it serves with whatever is
    available; an *explicit* ``fastapi`` without the dependency stack is a
    typed configuration error instead of a silent downgrade.
    """
    requested = name or os.environ.get(SERVICE_TIER_ENV) or "auto"
    if requested not in SERVICE_TIERS:
        raise ServiceError(
            f"unknown service tier {requested!r}; use one of "
            f"{', '.join(SERVICE_TIERS)}",
            status=500,
        )
    if requested == "auto":
        return "fastapi" if _have_asgi_stack() else "stdlib"
    if requested == "fastapi" and not _have_asgi_stack():
        raise ServiceError(
            "service tier 'fastapi' requires the optional fastapi + uvicorn "
            "dependencies; install them or use --tier stdlib",
            status=500,
        )
    return requested
