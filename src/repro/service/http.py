"""Stdlib asyncio HTTP/1.1 front-end for :class:`~repro.service.RuleService`.

Mirrors the kernel-tier discipline: the dependency-free tier is the
*primary* implementation, not a fallback.  An :mod:`asyncio` protocol
parses requests and keeps connections alive; the synchronous
``RuleService.handle`` runs on a bounded :class:`ThreadPoolExecutor` so
slow cold mines never stall the accept loop, while warm cache hits clear a
worker thread in microseconds.

Two entry points:

* :func:`serve_forever` — the blocking server behind ``repro serve``;
* :class:`BackgroundServer` — the same server on a daemon thread bound to
  an ephemeral port, for hermetic in-process tests and the load-test
  harness (the service object stays reachable, so tests can monkeypatch
  the layers below and read the metrics counters directly).
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from http import HTTPStatus
from urllib.parse import parse_qsl, urlsplit

from repro.service.app import RuleService

__all__ = ["BackgroundServer", "serve_forever"]

# A request body bound: mining requests are small JSON documents; anything
# larger is a client error, answered before the body is read into memory.
MAX_BODY_BYTES = 1_048_576
MAX_HEADER_BYTES = 16_384


def _reason(status: int) -> str:
    try:
        return HTTPStatus(status).phrase
    except ValueError:
        return "Unknown"


def _encode_response(status: int, payload: dict, keep_alive: bool) -> bytes:
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_reason(status)}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        "\r\n"
    ).encode("ascii")
    return head + body


class _ConnectionClosed(Exception):
    """The peer went away mid-request; nothing left to answer."""


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, dict, dict, bytes] | None:
    """Parse one request; ``None`` on clean EOF between requests."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.IncompleteReadError):
        return None
    if not request_line:
        return None
    try:
        method, target, version = request_line.decode("ascii").split()
    except (UnicodeDecodeError, ValueError) as exc:
        raise _BadRequest(f"malformed request line: {exc}") from exc
    headers: dict[str, str] = {}
    header_bytes = 0
    while True:
        line = await reader.readline()
        header_bytes += len(line)
        if header_bytes > MAX_HEADER_BYTES:
            raise _BadRequest("request headers too large")
        if line in (b"\r\n", b"\n", b""):
            break
        name, separator, value = line.decode("latin-1").partition(":")
        if not separator:
            raise _BadRequest(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length_header = headers.get("content-length", "0")
    try:
        length = int(length_header)
    except ValueError as exc:
        raise _BadRequest(f"invalid Content-Length {length_header!r}") from exc
    if length < 0 or length > MAX_BODY_BYTES:
        raise _BadRequest(f"request body of {length} bytes exceeds the limit")
    if length:
        try:
            body = await reader.readexactly(length)
        except (ConnectionError, asyncio.IncompleteReadError) as exc:
            raise _ConnectionClosed() from exc
    split = urlsplit(target)
    query = dict(parse_qsl(split.query))
    keep_alive = version != "HTTP/1.0" and headers.get("connection", "").lower() != "close"
    headers["__keep_alive__"] = "1" if keep_alive else ""
    return method, split.path, query, headers, body


class _BadRequest(Exception):
    """The request could not be parsed; answered with a typed 400."""


async def _serve_connection(
    service: RuleService,
    pool: ThreadPoolExecutor,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    loop = asyncio.get_running_loop()
    try:
        while True:
            try:
                request = await _read_request(reader)
            except _BadRequest as exc:
                payload = {
                    "error": {
                        "type": "ServiceError",
                        "status": 400,
                        "message": str(exc),
                    }
                }
                writer.write(_encode_response(400, payload, keep_alive=False))
                await writer.drain()
                return
            except _ConnectionClosed:
                return
            if request is None:
                return
            method, path, query, headers, body = request
            keep_alive = bool(headers.pop("__keep_alive__", ""))
            status, payload = await loop.run_in_executor(
                pool, service.handle, method, path, query, headers, body
            )
            writer.write(_encode_response(status, payload, keep_alive))
            await writer.drain()
            if not keep_alive:
                return
    except (ConnectionError, asyncio.CancelledError):
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError, asyncio.CancelledError):
            # Loop shutdown cancels idle keep-alive connections; the
            # cancellation re-raises at this await and must not escape
            # into the stream handler's task (it would be logged as an
            # unhandled callback exception).
            pass


async def _run_server(
    service: RuleService,
    host: str,
    port: int,
    workers: int,
    ready: "threading.Event | None" = None,
    bound: "list | None" = None,
    stop: "asyncio.Event | None" = None,
) -> None:
    pool = ThreadPoolExecutor(max_workers=workers, thread_name_prefix="repro-serve")
    try:

        async def handler(reader, writer):
            await _serve_connection(service, pool, reader, writer)

        server = await asyncio.start_server(handler, host=host, port=port)
        try:
            if bound is not None:
                bound.append(server.sockets[0].getsockname()[1])
            if ready is not None:
                ready.set()
            if stop is None:
                async with server:
                    await server.serve_forever()
            else:
                async with server:
                    await stop.wait()
        finally:
            server.close()
    finally:
        pool.shutdown(wait=False, cancel_futures=True)


def serve_forever(
    service: RuleService, host: str = "127.0.0.1", port: int = 8000, workers: int = 8
) -> None:
    """Run the server on the calling thread until interrupted."""
    try:
        asyncio.run(_run_server(service, host, port, workers))
    except KeyboardInterrupt:
        pass


class BackgroundServer:
    """The stdlib server on a daemon thread, bound to an ephemeral port.

    Context-manager styled::

        with BackgroundServer(service) as server:
            http.client.HTTPConnection("127.0.0.1", server.port)
    """

    def __init__(
        self,
        service: RuleService,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 8,
        startup_timeout: float = 10.0,
    ) -> None:
        self.service = service
        self.host = host
        self._bound: list[int] = []
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None

        def run() -> None:
            async def main() -> None:
                self._loop = asyncio.get_running_loop()
                self._stop = asyncio.Event()
                await _run_server(
                    service,
                    host,
                    port,
                    workers,
                    ready=self._ready,
                    bound=self._bound,
                    stop=self._stop,
                )

            asyncio.run(main())

        self._thread = threading.Thread(target=run, daemon=True, name="repro-server")
        self._thread.start()
        if not self._ready.wait(timeout=startup_timeout):
            raise RuntimeError("service failed to start within the startup timeout")

    @property
    def port(self) -> int:
        return self._bound[0]

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self, timeout: float = 10.0) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "BackgroundServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
