"""The rule-mining service core: one synchronous request handler.

:class:`RuleService` is the whole service expressed as a plain function of
``(method, path, query, headers, body) -> (status, JSON body)``.  Both HTTP
front-ends — the stdlib asyncio server in :mod:`repro.service.http` and the
optional FastAPI adapter in :mod:`repro.service.fastapi_app` — are thin
transports around this one handler, so every behavior (auth, error mapping,
caching, coalescing) is tested once, transport-independently.

The hot path is built for a warm :class:`~repro.store.ProfileStore`:

* responses are cached in a small LRU keyed by the **source fingerprint**
  plus the canonical request parameters, so a repeated request over
  unchanged data never touches the miner at all (a ``stat`` + two dict
  lookups), and any change to the data — even one appended row — changes
  the fingerprint and misses the cache;
* concurrent identical cache misses are **coalesced**: a per-key
  single-flight elects one leader to run the mining batch while the other
  requests wait for its result, so a thundering herd against a cold key
  costs exactly one ``solve_many`` batch;
* every library error maps to a typed JSON error body
  ``{"error": {"type", "status", "message"}}`` at the response boundary —
  :class:`~repro.exceptions.SourceChangedError` is a 409 (the data moved
  under the request), :class:`~repro.exceptions.StoreError` a 500,
  :class:`~repro.exceptions.IngestError` a 503, solver/validation errors
  400 — so clients can branch on ``type`` without parsing prose.
"""

from __future__ import annotations

import hmac
import json
import threading
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.exceptions import (
    BucketingError,
    ConditionError,
    DatasetError,
    IngestError,
    OptimizationError,
    ProfileError,
    ReproError,
    SchemaError,
    ServiceError,
    ShardError,
    SourceChangedError,
    StoreError,
)

__all__ = [
    "RuleService",
    "ServiceConfig",
    "map_error_status",
]


def map_error_status(exc: ReproError) -> int:
    """The HTTP status a library error maps to at the response boundary.

    Ordering matters: :class:`SourceChangedError` derives from both
    :class:`RelationError` and :class:`StoreError` but is a *conflict* (the
    request raced a data change), not a server fault, so it is matched
    before the store branch.
    """
    if isinstance(exc, ServiceError):
        return exc.status
    if isinstance(exc, SourceChangedError):
        return 409
    if isinstance(exc, IngestError):
        return 503
    if isinstance(exc, ShardError):
        return 502
    if isinstance(
        exc,
        (
            SchemaError,
            ConditionError,
            OptimizationError,
            BucketingError,
            ProfileError,
            DatasetError,
        ),
    ):
        return 400
    # StoreError, PipelineError, and any future ReproError: the service is
    # misconfigured or its state is corrupt — the client did nothing wrong.
    return 500


def _error_body(exc: ReproError, status: int) -> dict:
    return {
        "error": {
            "type": type(exc).__name__,
            "status": status,
            "message": str(exc),
        }
    }


class _LRUCache:
    """A thread-safe LRU of response payloads."""

    def __init__(self, max_entries: int) -> None:
        self._entries: OrderedDict[tuple, dict] = OrderedDict()
        self._max_entries = int(max_entries)
        self._lock = threading.Lock()

    def get(self, key: tuple) -> dict | None:
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._entries.move_to_end(key)
            return value

    def put(self, key: tuple, value: dict) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class _SingleFlight:
    """Per-key coalescing: concurrent identical calls share one execution.

    The first caller for a key becomes the leader and runs ``fn``; callers
    arriving while it runs wait on the same future and receive the leader's
    result (or its exception — an error is answered identically to every
    coalesced request).  The key is retired before the future resolves, so
    a request arriving *after* completion starts a fresh flight — single-
    flight is a concurrency dedupe, never a cache.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: dict[tuple, Future] = {}

    def run(self, key: tuple, fn: Callable[[], Any]) -> tuple[Any, bool]:
        """Run ``fn`` (or join the in-flight run); returns ``(value, led)``."""
        with self._lock:
            future = self._inflight.get(key)
            if future is not None:
                leader = False
            else:
                future = Future()
                self._inflight[key] = future
                leader = True
        if not leader:
            return future.result(), False
        try:
            value = fn()
        except BaseException as exc:
            with self._lock:
                self._inflight.pop(key, None)
            future.set_exception(exc)
            raise
        with self._lock:
            self._inflight.pop(key, None)
        future.set_result(value)
        return value, True


@dataclass(frozen=True)
class ServiceConfig:
    """Static configuration of one service instance.

    ``num_buckets`` and ``seed`` are deliberately *not* request parameters:
    they determine the store plan signature, so pinning them server-side
    keeps every request interoperable with the snapshots ``repro store
    build`` / ``repro catalog --store`` / the ingest daemon create.
    Thresholds, ``top``, and ranking are per-request — they only shape the
    solver pass and the response, never the cached profiles.
    """

    data: str
    source: str = "stream"
    store: str | None = None
    num_buckets: int = 200
    seed: int = 0
    min_support: float = 0.10
    min_confidence: float = 0.50
    engine: str = "fast"
    executor: str = "serial"
    kernel_tier: str | None = None
    chunk_size: int | None = None
    token: str | None = None
    top: int = 20
    cache_entries: int = 128
    rebuild_threshold: float | None = None
    extra: Mapping[str, Any] = field(default_factory=dict)


_KIND_CHOICES = ("confidence", "support", "max-average", "support-average")
_RANK_CHOICES = ("lift", "confidence", "support")


class RuleService:
    """The service plane over a warm :class:`~repro.store.ProfileStore`.

    Thread-safe: ``handle`` may be called from any number of transport
    threads concurrently.  The store writer lock, the miner cache lock, and
    the fingerprint memo below this layer make the shared state safe; this
    layer adds the response LRU and the single-flight coalescer.
    """

    def __init__(self, config: ServiceConfig) -> None:
        if config.source not in ("stream", "npy", "parquet"):
            raise ServiceError(
                f"unsupported service source {config.source!r}; "
                "use stream, npy, or parquet",
                status=500,
            )
        self._config = config
        self._store = None
        if config.store is not None:
            from repro.store import ProfileStore

            kwargs: dict[str, Any] = {}
            if config.rebuild_threshold is not None:
                kwargs["rebuild_threshold"] = config.rebuild_threshold
            self._store = ProfileStore(config.store, **kwargs)
        self._cache = _LRUCache(config.cache_entries)
        self._flight = _SingleFlight()
        self._metrics_lock = threading.Lock()
        self._metrics = {
            "requests": 0,
            "errors": 0,
            "cache_hits": 0,
            "coalesced": 0,
            "solve_batches": 0,
        }

    # ------------------------------------------------------------------
    # plumbing

    @property
    def config(self) -> ServiceConfig:
        return self._config

    @property
    def store(self):
        """The service's ProfileStore (``None`` when serving store-less)."""
        return self._store

    def metrics(self) -> dict:
        with self._metrics_lock:
            return dict(self._metrics)

    def _count(self, name: str, amount: int = 1) -> None:
        with self._metrics_lock:
            self._metrics[name] += amount

    def _bare_source(self):
        """A schema-less source, sufficient for fingerprinting only."""
        from repro.pipeline import CSVSource, NpyDirectorySource, ParquetSource
        from repro.relation.io import DEFAULT_CHUNK_SIZE

        chunk_size = self._config.chunk_size or DEFAULT_CHUNK_SIZE
        if self._config.source == "npy":
            return NpyDirectorySource(self._config.data, chunk_size=chunk_size)
        if self._config.source == "parquet":
            return ParquetSource(self._config.data, chunk_size=chunk_size)
        return CSVSource(self._config.data, chunk_size=chunk_size)

    def _open_source(self):
        """The mining source, with the schema resolved store-first.

        A warm store remembers the schema its snapshot was built under, so
        warm requests never parse a row of the CSV; only a cold store (or a
        store-less service) pays the inference parse — immediately followed
        by the mining scan anyway.
        """
        from repro.pipeline import CSVSource
        from repro.relation.io import DEFAULT_CHUNK_SIZE, infer_csv_schema

        if self._config.source in ("npy", "parquet"):
            return self._bare_source()
        chunk_size = self._config.chunk_size or DEFAULT_CHUNK_SIZE
        schema = None
        if self._store is not None:
            schema = self._store.cached_schema(
                CSVSource(self._config.data, chunk_size=chunk_size)
            )
        if schema is None:
            schema = infer_csv_schema(self._config.data, chunk_size=chunk_size)
        return CSVSource(self._config.data, schema=schema, chunk_size=chunk_size)

    def _fingerprint_key(self) -> tuple:
        """``(token, length)`` of the current source bytes.

        This is the cache discriminator: any change to the data — append,
        rewrite, replacement — changes it, so the response LRU can never
        serve rules mined from bytes that no longer exist.
        """
        fingerprint = self._bare_source().fingerprint()
        if fingerprint is None:
            raise ServiceError(
                "the configured source cannot be fingerprinted; "
                "the service cannot cache or serve it safely",
                status=503,
            )
        return (fingerprint.token, fingerprint.length)

    def _cached(self, key: tuple, compute: Callable[[], dict]) -> dict:
        """LRU lookup, then single-flight computation on miss."""
        payload = self._cache.get(key)
        if payload is not None:
            self._count("cache_hits")
            return payload
        def fill() -> dict:
            value = compute()
            self._cache.put(key, value)
            return value
        payload, led = self._flight.run(key, fill)
        if not led:
            self._count("coalesced")
        return payload

    # ------------------------------------------------------------------
    # request entry point

    def handle(
        self,
        method: str,
        path: str,
        query: Mapping[str, str] | None = None,
        headers: Mapping[str, str] | None = None,
        body: bytes = b"",
    ) -> tuple[int, dict]:
        """Answer one request; never raises — errors become typed bodies."""
        self._count("requests")
        try:
            return self._dispatch(
                method.upper(),
                path.rstrip("/") or "/",
                dict(query or {}),
                {str(k).lower(): v for k, v in (headers or {}).items()},
                body,
            )
        except ReproError as exc:
            self._count("errors")
            status = map_error_status(exc)
            return status, _error_body(exc, status)
        except OSError as exc:
            # Data or store files vanished between checks; the request is
            # answerable later, the connection must survive now.
            self._count("errors")
            return 503, {
                "error": {"type": "OSError", "status": 503, "message": str(exc)}
            }
        except Exception as exc:  # noqa: BLE001 - the transport must never drop
            self._count("errors")
            return 500, {
                "error": {
                    "type": "InternalError",
                    "status": 500,
                    "message": f"{type(exc).__name__}: {exc}",
                }
            }

    def _dispatch(
        self,
        method: str,
        path: str,
        query: dict,
        headers: dict,
        body: bytes,
    ) -> tuple[int, dict]:
        if path == "/healthz":
            self._require(method, "GET")
            return 200, {"status": "ok", "service": "repro"}
        if path == "/readyz":
            self._require(method, "GET")
            return self._readyz()
        self._authorize(headers)
        if path == "/metrics":
            self._require(method, "GET")
            return 200, {"metrics": self.metrics(), "cache_entries": len(self._cache)}
        params = self._params(method, query, body)
        if path == "/v1/catalog":
            self._require(method, "GET", "POST")
            return self._catalog(params)
        if path == "/v1/mine":
            self._require(method, "POST")
            return self._mine(params)
        if path == "/v1/rules2d":
            self._require(method, "POST")
            return self._rules2d(params)
        if path == "/v1/store/inspect":
            self._require(method, "GET")
            return self._store_inspect()
        if path == "/v1/store/append":
            self._require(method, "POST")
            return self._store_append()
        raise ServiceError(f"unknown endpoint {path!r}", status=404)

    @staticmethod
    def _require(method: str, *allowed: str) -> None:
        if method not in allowed:
            raise ServiceError(
                f"method {method} not allowed; use {' or '.join(allowed)}",
                status=405,
            )

    def _authorize(self, headers: Mapping[str, str]) -> None:
        token = self._config.token
        if not token:
            return
        supplied = str(headers.get("authorization", ""))
        prefix, _, credential = supplied.partition(" ")
        if prefix.lower() != "bearer" or not hmac.compare_digest(
            credential.strip(), token
        ):
            raise ServiceError("missing or invalid bearer token", status=401)

    def _params(self, method: str, query: dict, body: bytes) -> dict:
        params = dict(query)
        if body:
            try:
                decoded = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ServiceError(f"request body is not valid JSON: {exc}") from exc
            if not isinstance(decoded, dict):
                raise ServiceError("request body must be a JSON object")
            params.update(decoded)
        return params

    # ------------------------------------------------------------------
    # parameter coercion

    @staticmethod
    def _fraction(params: dict, name: str, default: float) -> float:
        raw = params.pop(name, None)
        if raw is None:
            return default
        try:
            value = float(raw)
        except (TypeError, ValueError) as exc:
            raise ServiceError(f"parameter {name!r} must be a number") from exc
        if not 0.0 <= value <= 1.0:
            raise ServiceError(f"parameter {name!r} must lie in [0, 1]")
        return value

    @staticmethod
    def _positive_int(params: dict, name: str, default: int, maximum: int = 10_000) -> int:
        raw = params.pop(name, None)
        if raw is None:
            return default
        try:
            value = int(raw)
        except (TypeError, ValueError) as exc:
            raise ServiceError(f"parameter {name!r} must be an integer") from exc
        if not 1 <= value <= maximum:
            raise ServiceError(f"parameter {name!r} must lie in [1, {maximum}]")
        return value

    @staticmethod
    def _choice(params: dict, name: str, default: str, choices: tuple[str, ...]) -> str:
        value = str(params.pop(name, default))
        if value not in choices:
            raise ServiceError(
                f"parameter {name!r} must be one of {', '.join(choices)}"
            )
        return value

    @staticmethod
    def _text(params: dict, name: str) -> str:
        raw = params.pop(name, None)
        if raw is None or not str(raw):
            raise ServiceError(f"parameter {name!r} is required")
        return str(raw)

    @staticmethod
    def _reject_unknown(params: dict) -> None:
        if params:
            names = ", ".join(sorted(str(name) for name in params))
            raise ServiceError(f"unknown parameter(s): {names}")

    # ------------------------------------------------------------------
    # endpoints

    def _readyz(self) -> tuple[int, dict]:
        checks: dict[str, str] = {}
        ready = True
        try:
            self._fingerprint_key()
            checks["source"] = "ok"
        except ReproError as exc:
            checks["source"] = str(exc)
            ready = False
        except OSError as exc:
            checks["source"] = str(exc)
            ready = False
        if self._store is None:
            checks["store"] = "disabled"
        else:
            try:
                snapshots = len(self._store.inspect())
                checks["store"] = f"ok ({snapshots} snapshot(s))"
            except ReproError as exc:
                checks["store"] = str(exc)
                ready = False
        status = 200 if ready else 503
        return status, {"status": "ready" if ready else "unready", "checks": checks}

    def _catalog(self, params: dict) -> tuple[int, dict]:
        min_support = self._fraction(params, "min_support", self._config.min_support)
        min_confidence = self._fraction(
            params, "min_confidence", self._config.min_confidence
        )
        top = self._positive_int(params, "top", self._config.top)
        rank_by = self._choice(params, "rank_by", "lift", _RANK_CHOICES)
        self._reject_unknown(params)
        key = (
            "catalog",
            *self._fingerprint_key(),
            min_support,
            min_confidence,
            top,
            rank_by,
        )

        def compute() -> dict:
            import numpy as np

            from repro.mining import mine_rule_catalog

            catalog = mine_rule_catalog(
                self._open_source(),
                min_support=min_support,
                min_confidence=min_confidence,
                num_buckets=self._config.num_buckets,
                rng=np.random.default_rng(self._config.seed),
                engine=self._config.engine,
                executor=self._config.executor,
                store=self._store,
                kernel_tier=self._config.kernel_tier,
            )
            self._count("solve_batches")
            return {
                "store_status": None if self._store is None else self._store.last_status,
                "num_pairs": catalog.num_pairs,
                "num_rules": len(catalog),
                "num_tuples": catalog.num_tuples,
                "min_support": min_support,
                "min_confidence": min_confidence,
                "rank_by": rank_by,
                "rules": [entry.as_row() for entry in catalog.top(top, by=rank_by)],
            }

        return 200, self._cached(key, compute)

    def _mine(self, params: dict) -> tuple[int, dict]:
        attribute = self._text(params, "attribute")
        objective = self._text(params, "objective")
        kind = self._choice(params, "kind", "confidence", _KIND_CHOICES)
        min_support = self._fraction(params, "min_support", self._config.min_support)
        min_confidence = self._fraction(
            params, "min_confidence", self._config.min_confidence
        )
        min_average = self._fraction(params, "min_average", 0.0)
        self._reject_unknown(params)
        key = (
            "mine",
            *self._fingerprint_key(),
            attribute,
            objective,
            kind,
            min_support,
            min_confidence,
            min_average,
        )

        def compute() -> dict:
            import numpy as np

            from repro.core.miner import OptimizedRuleMiner

            # Single-pair mining plans differ per (attribute, objective),
            # so the shared catalog store is deliberately not attached —
            # it would accrete one snapshot per distinct request key.
            miner = OptimizedRuleMiner(
                self._open_source(),
                num_buckets=self._config.num_buckets,
                rng=np.random.default_rng(self._config.seed),
                engine=self._config.engine,
                executor=self._config.executor,
                kernel_tier=self._config.kernel_tier,
            )
            if kind == "confidence":
                rule = miner.optimized_confidence_rule(
                    attribute, objective, min_support=min_support
                )
            elif kind == "support":
                rule = miner.optimized_support_rule(
                    attribute, objective, min_confidence=min_confidence
                )
            elif kind == "max-average":
                rule = miner.maximum_average_rule(
                    attribute, objective, min_support=min_support
                )
            else:
                rule = miner.maximum_support_average_rule(
                    attribute, objective, min_average=min_average
                )
            self._count("solve_batches")
            return {
                "found": rule is not None,
                "rule": _rule_row(rule),
            }

        return 200, self._cached(key, compute)

    def _rules2d(self, params: dict) -> tuple[int, dict]:
        row_attribute = self._text(params, "row_attribute")
        column_attribute = self._text(params, "column_attribute")
        objective = self._text(params, "objective")
        kind = self._choice(params, "kind", "confidence", ("confidence", "support"))
        min_support = self._fraction(params, "min_support", self._config.min_support)
        min_confidence = self._fraction(
            params, "min_confidence", self._config.min_confidence
        )
        grid_rows = self._positive_int(params, "grid_rows", 32, maximum=4096)
        grid_columns = self._positive_int(params, "grid_columns", 32, maximum=4096)
        self._reject_unknown(params)
        key = (
            "rules2d",
            *self._fingerprint_key(),
            row_attribute,
            column_attribute,
            objective,
            kind,
            min_support,
            min_confidence,
            grid_rows,
            grid_columns,
        )

        def compute() -> dict:
            import numpy as np

            from repro.core.rules import RuleKind
            from repro.extensions import mine_rectangle_rule

            rule = mine_rectangle_rule(
                self._open_source(),
                row_attribute,
                column_attribute,
                objective,
                kind=(
                    RuleKind.OPTIMIZED_CONFIDENCE
                    if kind == "confidence"
                    else RuleKind.OPTIMIZED_SUPPORT
                ),
                min_support=min_support,
                min_confidence=min_confidence,
                grid=(grid_rows, grid_columns),
                rng=np.random.default_rng(self._config.seed),
                engine=self._config.engine,
                executor=self._config.executor,
                store=self._store,
                kernel_tier=self._config.kernel_tier,
            )
            self._count("solve_batches")
            return {
                "found": rule is not None,
                "store_status": None if self._store is None else self._store.last_status,
                "rule": _rectangle_row(rule),
            }

        return 200, self._cached(key, compute)

    def _store_inspect(self) -> tuple[int, dict]:
        if self._store is None:
            raise ServiceError("this service runs without a profile store", status=404)
        entries = []
        for entry in self._store.inspect():
            entries.append(
                {
                    "payload": entry.get("payload"),
                    "plan_signature": entry.get("plan_signature"),
                    "seed": entry.get("seed"),
                    "num_tuples": entry.get("num_tuples"),
                    "appended_tuples": entry.get("appended_tuples"),
                    "staleness": entry.get("staleness"),
                    "requests": list(entry.get("requests", [])),
                }
            )
        return 200, {"directory": str(self._store.directory), "snapshots": entries}

    def _store_append(self) -> tuple[int, dict]:
        """Fold the source's new tail rows into the stored catalog snapshot.

        *Strict* append semantics — the mutation counterpart of the catalog
        endpoint's lazy warming: an unchanged source is a zero-scan ``hit``,
        a grown source counts only its new rows, a missing snapshot is a
        typed error (build one through ``/v1/catalog`` or ``repro store
        build``), and a source whose bytes drifted from the snapshot is a
        409 :class:`~repro.exceptions.SourceChangedError`, never a silent
        rebuild over data the client may not have meant to serve.

        The builder seed derives from the configured seed exactly as the
        miner derives it internally, so the snapshot this folds into is the
        one the catalog endpoint reads (same plan signature, same seed).
        """
        if self._store is None:
            raise ServiceError("this service runs without a profile store", status=404)

        import numpy as np

        from repro.mining import catalog_scan_plan
        from repro.pipeline.builder import ProfileBuilder

        source = self._open_source()
        seed = int(np.random.default_rng(self._config.seed).integers(0, 2**32))
        builder = ProfileBuilder(
            num_buckets=self._config.num_buckets,
            seed=seed,
            executor=self._config.executor,
            kernel_tier=self._config.kernel_tier,
        )
        plan = catalog_scan_plan(source.schema)
        results = self._store.append(builder, source, plan)
        num_tuples = int(results.parts[0].num_tuples) if results.parts else 0
        return 200, {
            "store_status": self._store.last_status,
            "num_requests": len(plan),
            "num_tuples": num_tuples,
        }


def _rule_row(rule) -> dict | None:
    """A mined 1-D rule as a flat JSON-ready dictionary."""
    if rule is None:
        return None
    from repro.core.rules import OptimizedAverageRule

    if isinstance(rule, OptimizedAverageRule):
        return {
            "attribute": rule.attribute,
            "target": rule.target,
            "kind": str(rule.kind),
            "low": float(rule.low),
            "high": float(rule.high),
            "support": float(rule.support),
            "average": float(rule.average),
        }
    return {
        "attribute": rule.attribute,
        "objective": str(rule.objective),
        "kind": str(rule.kind),
        "low": float(rule.low),
        "high": float(rule.high),
        "support": float(rule.support),
        "confidence": float(rule.confidence),
    }


def _rectangle_row(rule) -> dict | None:
    """A mined 2-D rectangle rule as a flat JSON-ready dictionary."""
    if rule is None:
        return None
    return {
        "row_attribute": rule.row_attribute,
        "column_attribute": rule.column_attribute,
        "objective": rule.objective_label,
        "kind": str(rule.kind),
        "row_low": float(rule.row_low),
        "row_high": float(rule.row_high),
        "column_low": float(rule.column_low),
        "column_high": float(rule.column_high),
        "support": float(rule.support),
        "confidence": float(rule.confidence),
    }
