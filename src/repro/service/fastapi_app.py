"""Optional FastAPI front-end for :class:`~repro.service.RuleService`.

Present for deployments that already run an ASGI stack: the adapter routes
every request to the same synchronous ``RuleService.handle`` the stdlib
tier uses, so the two tiers are behavior-identical by construction — auth,
coalescing, caching, and the typed error bodies all live below the
transport.  Import errors are confined to this module; environments
without FastAPI (including this repository's own CI) never touch it.

Serving it needs an ASGI server::

    uvicorn --factory 'repro.service.fastapi_app:app_factory' ...

with the service configuration supplied through ``REPRO_SERVICE_CONFIG``
(a JSON object of :class:`~repro.service.ServiceConfig` fields).
"""

from __future__ import annotations

import json
import os

from repro.exceptions import ServiceError
from repro.service.app import RuleService, ServiceConfig

try:  # pragma: no cover - absent in the reference environment
    import fastapi

    HAVE_FASTAPI = True
except ModuleNotFoundError:  # pragma: no cover - the tested branch
    fastapi = None
    HAVE_FASTAPI = False

CONFIG_ENV = "REPRO_SERVICE_CONFIG"

__all__ = ["CONFIG_ENV", "HAVE_FASTAPI", "app_factory", "build_fastapi_app"]


def build_fastapi_app(service: RuleService):
    """A FastAPI application wrapping the given service."""
    if not HAVE_FASTAPI:
        raise ServiceError(
            "the fastapi service tier requires the optional 'fastapi' "
            "dependency; install it or use the stdlib tier",
            status=500,
        )
    from fastapi import Request
    from fastapi.concurrency import run_in_threadpool
    from fastapi.responses import JSONResponse

    app = fastapi.FastAPI(title="repro rule-mining service", docs_url=None)

    @app.api_route("/{path:path}", methods=["GET", "POST"])
    async def route(path: str, request: Request):  # pragma: no cover - needs fastapi
        body = await request.body()
        status, payload = await run_in_threadpool(
            service.handle,
            request.method,
            "/" + path,
            dict(request.query_params),
            dict(request.headers),
            body,
        )
        return JSONResponse(payload, status_code=status)

    return app


def app_factory():  # pragma: no cover - needs fastapi
    """Build the app from ``REPRO_SERVICE_CONFIG`` (for ``uvicorn --factory``)."""
    raw = os.environ.get(CONFIG_ENV)
    if not raw:
        raise ServiceError(
            f"set {CONFIG_ENV} to a JSON object of ServiceConfig fields",
            status=500,
        )
    try:
        fields = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ServiceError(f"{CONFIG_ENV} is not valid JSON: {exc}", status=500) from exc
    if not isinstance(fields, dict):
        raise ServiceError(f"{CONFIG_ENV} must be a JSON object", status=500)
    return build_fastapi_app(RuleService(ServiceConfig(**fields)))
