"""Unified DataSource → ScanPlan → ProfileBuilder pipeline.

One profile-construction path for every deployment scenario of Algorithm
3.1: in-memory relations, chunked streams, and out-of-core CSV files all
implement the :class:`DataSource` scan contract, a :class:`ScanPlan`
collects every profile request a workload needs (bucket, §5 average, §4.3
presumptive, §1.4 grid), and :meth:`ProfileBuilder.execute_plan` answers
the whole plan from **one physical scan** of the source — boundary
sampling caches the counting payloads, and the fused chunk kernel counts
every request at once — under a pluggable executor (``serial`` /
``streaming`` / ``multiprocessing``).  :class:`GridProfileBuilder` builds
the 2-D cell grids (:class:`GridProfile`) of the §1.4 rectangle extension
on the same plan engine.  Profiles and grids are bit-identical across all
source types and executors — and between fused plans and per-request
builds — so the miners, the §1.3 catalog, the extensions, and the
experiments run unchanged over any of them.
"""

from repro.pipeline.builder import (
    EXECUTORS,
    AttributeCounts,
    AttributeSpec,
    PlanResults,
    ProfileBuilder,
    ProfileRequest,
    ScanPlan,
)
from repro.pipeline.grid import GridCounts, GridProfile, GridProfileBuilder
from repro.pipeline.sources import (
    HAVE_PYARROW,
    ChunkedSource,
    CSVSource,
    DataSource,
    NpyDirectorySource,
    ParquetSource,
    RelationSource,
    SourceFingerprint,
    fingerprint_relation,
    write_columnar,
)

__all__ = [
    "DataSource",
    "RelationSource",
    "ChunkedSource",
    "CSVSource",
    "NpyDirectorySource",
    "ParquetSource",
    "write_columnar",
    "HAVE_PYARROW",
    "SourceFingerprint",
    "fingerprint_relation",
    "ProfileBuilder",
    "AttributeSpec",
    "AttributeCounts",
    "ScanPlan",
    "ProfileRequest",
    "PlanResults",
    "GridProfile",
    "GridCounts",
    "GridProfileBuilder",
    "EXECUTORS",
]
