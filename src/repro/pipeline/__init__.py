"""Unified DataSource → ProfileBuilder pipeline.

One profile-construction path for every deployment scenario of Algorithm
3.1: in-memory relations, chunked streams, and out-of-core CSV files all
implement the :class:`DataSource` scan contract, and
:class:`ProfileBuilder` turns any of them into solver-ready
:class:`~repro.core.BucketProfile`\\ s via two scans (boundary sampling, then
counting) with a pluggable executor (``serial`` / ``streaming`` /
``multiprocessing``).  :class:`GridProfileBuilder` extends the same two
scans to the 2-D cell grids (:class:`GridProfile`) of the §1.4 rectangle
extension.  Profiles and grids are bit-identical across all source types
and executors, so the miners, the §1.3 catalog, the extensions, and the
experiments run unchanged over any of them.
"""

from repro.pipeline.builder import (
    EXECUTORS,
    AttributeCounts,
    AttributeSpec,
    ProfileBuilder,
)
from repro.pipeline.grid import GridCounts, GridProfile, GridProfileBuilder
from repro.pipeline.sources import ChunkedSource, CSVSource, DataSource, RelationSource

__all__ = [
    "DataSource",
    "RelationSource",
    "ChunkedSource",
    "CSVSource",
    "ProfileBuilder",
    "AttributeSpec",
    "AttributeCounts",
    "GridProfile",
    "GridCounts",
    "GridProfileBuilder",
    "EXECUTORS",
]
