"""The unified profile-construction pipeline (sample → boundaries → count).

:class:`ProfileBuilder` owns the two scans of Algorithm 3.1 over any
:class:`~repro.pipeline.sources.DataSource`:

1. **sampling pass** — one scan feeding a chunk-invariant
   :class:`~repro.bucketing.streaming.ReservoirSampler` per requested
   attribute; the sorted samples yield the almost-equi-depth bucket
   boundaries (steps 1–3 of Algorithm 3.1);
2. **counting pass** — one scan in which every chunk runs through the shared
   kernel :func:`~repro.bucketing.counting.count_value_chunk` (one
   ``searchsorted`` assignment per attribute, mask-matrix ``bincount`` for
   all objective conditions, weighted bincounts for §5 average targets) and
   the resulting :class:`~repro.bucketing.counting.ChunkCounts` partials
   merge in chunk order.

*Where* the kernel runs is an executor strategy:

* ``"serial"`` — every chunk counted in-process, each partial merged the
  moment its chunk is counted (one-PE Algorithm 3.2; only one chunk is ever
  resident);
* ``"streaming"`` — an alias of the same bounded-memory in-process loop,
  named for the out-of-core deployment it serves;
* ``"multiprocessing"`` — chunks fan out to a ``ProcessPoolExecutor``
  (Algorithm 3.2 with real PEs) with a bounded submission window, and the
  partials still merge in chunk order.

Counts are integers and partials always merge in chunk order, so all three
executors — and all source types over the same tuples — produce **bit
identical** :class:`~repro.core.BucketProfile`\\ s; the parity suite in
``tests/pipeline/test_builder.py`` asserts exact equality across the full
source × executor matrix.
"""

from __future__ import annotations

import os
import zlib
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.bucketing.base import Bucketing
from repro.bucketing.counting import ChunkCounts, count_value_chunk
from repro.bucketing.equidepth_sample import DEFAULT_SAMPLE_FACTOR
from repro.bucketing.equidepth_sort import equidepth_cuts_from_sorted
from repro.bucketing.streaming import ReservoirSampler
from repro.core.profile import BucketProfile
from repro.exceptions import PipelineError
from repro.pipeline.sources import DataSource
from repro.relation.conditions import Condition

__all__ = ["AttributeSpec", "AttributeCounts", "ProfileBuilder", "EXECUTORS"]

#: Recognized executor strategy names.
EXECUTORS = ("serial", "streaming", "multiprocessing")


@dataclass(frozen=True)
class AttributeSpec:
    """What to count for one numeric attribute during the counting pass.

    Attributes
    ----------
    attribute:
        The numeric attribute whose buckets are counted.
    objectives:
        Objective conditions whose per-bucket conditional counts ``v_i`` are
        produced (confidence/support rules).
    targets:
        Numeric attributes whose per-bucket sums are produced (the §5
        average-operator numerators).
    """

    attribute: str
    objectives: tuple[Condition, ...] = ()
    targets: tuple[str, ...] = ()

    def merged_with(self, other: "AttributeSpec") -> "AttributeSpec":
        """Union of two specs for the same attribute (order-preserving)."""
        if other.attribute != self.attribute:
            raise PipelineError("cannot merge specs of different attributes")
        objectives = list(self.objectives)
        objectives.extend(o for o in other.objectives if o not in objectives)
        targets = list(self.targets)
        targets.extend(t for t in other.targets if t not in targets)
        return AttributeSpec(self.attribute, tuple(objectives), tuple(targets))


@dataclass
class AttributeCounts:
    """Pipeline output for one attribute: merged counts plus the bucketing.

    This is the streaming analogue of the miner's per-attribute assignment
    cache — everything needed to materialize any number of
    :class:`BucketProfile`\\ s for the attribute without another scan.
    """

    attribute: str
    bucketing: Bucketing
    sizes: np.ndarray
    conditional: dict[Condition, np.ndarray]
    sums: dict[str, np.ndarray]
    lows: np.ndarray
    highs: np.ndarray
    total: int

    @property
    def nonempty(self) -> np.ndarray:
        """Boolean mask of buckets that received at least one tuple."""
        return self.sizes > 0

    def profile(self, objective: Condition, label: str | None = None) -> BucketProfile:
        """The confidence/support profile of one counted objective."""
        if objective not in self.conditional:
            raise PipelineError(
                f"objective {objective} was not counted for attribute "
                f"{self.attribute!r}"
            )
        keep = self.nonempty
        if not np.any(keep):
            raise PipelineError("the source contained no tuples")
        return BucketProfile(
            attribute=self.attribute,
            objective_label=label if label is not None else str(objective),
            sizes=self.sizes[keep].astype(np.float64),
            values=self.conditional[objective][keep].astype(np.float64),
            lows=self.lows[keep],
            highs=self.highs[keep],
            total=float(self.total),
        )

    def average_profile(self, target: str) -> BucketProfile:
        """The §5 average-operator profile of one counted target attribute."""
        if target not in self.sums:
            raise PipelineError(
                f"target {target!r} was not counted for attribute "
                f"{self.attribute!r}"
            )
        keep = self.nonempty
        if not np.any(keep):
            raise PipelineError("the source contained no tuples")
        return BucketProfile(
            attribute=self.attribute,
            objective_label=f"avg({target})",
            sizes=self.sizes[keep].astype(np.float64),
            values=self.sums[target][keep],
            lows=self.lows[keep],
            highs=self.highs[keep],
            total=float(self.total),
        )


def _count_chunk_payload(
    payload: list[tuple[np.ndarray, np.ndarray, np.ndarray | None, np.ndarray | None]],
) -> list[ChunkCounts]:
    """Count one chunk's payload for every attribute (module-level: picklable).

    ``payload`` holds, per requested attribute, the chunk's value array, the
    bucketing cuts, the stacked objective masks (or ``None``) and the stacked
    target weights (or ``None``) — plain numpy only, so a process-pool worker
    needs nothing but this module.
    """
    return [
        count_value_chunk(values, cuts, masks=masks, weights=weights)
        for values, cuts, masks, weights in payload
    ]


def _count_presumptive_payload(
    payload: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
) -> ChunkCounts:
    """Count one chunk of a §4.3 presumptive batch (module-level: picklable).

    ``payload`` is ``(values, cuts, masks, bound_masks)`` where ``masks``
    interleaves each conjunct's population mask with its objective
    intersection and ``bound_masks`` holds the population masks whose
    restricted data bounds the profiles report.  The unrestricted bounds are
    never read by the presumptive profiles, so their sort is skipped.
    """
    values, cuts, masks, bound_masks = payload
    return count_value_chunk(
        values, cuts, masks=masks, with_bounds=False, bound_masks=bound_masks
    )


class ProfileBuilder:
    """Build bucket profiles from any data source with a pluggable executor.

    Parameters
    ----------
    num_buckets:
        Bucket count targeted per attribute (ties in the boundary sample can
        reduce it, exactly as in the in-memory bucketizer).
    executor:
        ``"serial"``, ``"streaming"``, or ``"multiprocessing"`` — where the
        counting kernel runs (see the module docstring).  All three produce
        bit-identical profiles.
    sample_factor:
        Reservoir points per bucket for the boundary sample (the paper's
        ``S = 40·M``).
    seed:
        Base seed of the boundary-sampling RNG.  Each attribute derives its
        own generator from ``(seed, crc32(attribute))``, so the boundaries of
        one attribute do not depend on which other attributes are requested,
        how the stream is chunked, or which executor counts it.
    max_workers:
        Worker processes for the multiprocessing executor (default: one per
        CPU, capped at 8).
    """

    def __init__(
        self,
        num_buckets: int = 1000,
        *,
        executor: str = "serial",
        sample_factor: int = DEFAULT_SAMPLE_FACTOR,
        seed: int = 0,
        max_workers: int | None = None,
    ) -> None:
        if num_buckets <= 0:
            raise PipelineError("num_buckets must be positive")
        if executor not in EXECUTORS:
            raise PipelineError(
                f"unknown executor {executor!r}; use one of {', '.join(EXECUTORS)}"
            )
        if sample_factor <= 0:
            raise PipelineError("sample_factor must be positive")
        if max_workers is not None and max_workers <= 0:
            raise PipelineError("max_workers must be positive")
        self._num_buckets = int(num_buckets)
        self._executor = executor
        self._sample_factor = int(sample_factor)
        self._seed = int(seed)
        self._max_workers = max_workers

    # -- configuration ---------------------------------------------------------

    @property
    def num_buckets(self) -> int:
        """Requested buckets per attribute."""
        return self._num_buckets

    @property
    def executor(self) -> str:
        """The executor strategy in use."""
        return self._executor

    # -- pass 1: boundary sampling ---------------------------------------------

    def _attribute_rng(self, attribute: str) -> np.random.Generator:
        """Deterministic per-attribute generator (independent of the request set)."""
        return np.random.default_rng(
            [self._seed, zlib.crc32(attribute.encode("utf-8"))]
        )

    def sample_bucketings(
        self,
        source: DataSource,
        attributes: Sequence[str],
        num_buckets: Mapping[str, int] | None = None,
    ) -> dict[str, Bucketing]:
        """One scan of ``source`` sampling bucket boundaries for every attribute.

        Algorithm 3.1 steps 1–3 via reservoir sampling: uniform without
        knowing the stream length, so the same code serves in-memory,
        chunked, and file sources.  Duplicate cut points (heavily tied data)
        are merged as the in-memory bucketizer does.  ``num_buckets`` entries
        override the builder-wide bucket count per attribute (the 2-D grid
        builder uses this for non-square grids); each attribute's reservoir
        is sized ``sample_factor`` times its own bucket count.
        """
        attributes = list(dict.fromkeys(attributes))
        if not attributes:
            return {}
        requested = {
            attribute: int((num_buckets or {}).get(attribute, self._num_buckets))
            for attribute in attributes
        }
        if any(count <= 0 for count in requested.values()):
            raise PipelineError("num_buckets must be positive")
        samplers = {
            attribute: ReservoirSampler(
                self._sample_factor * requested[attribute],
                rng=self._attribute_rng(attribute),
            )
            for attribute in attributes
            if requested[attribute] > 1
        }
        if samplers:
            for chunk in source.chunks():
                for attribute, sampler in samplers.items():
                    sampler.extend(chunk.numeric_column(attribute))
        bucketings: dict[str, Bucketing] = {}
        for attribute in attributes:
            if requested[attribute] == 1:
                bucketings[attribute] = Bucketing.single_bucket()
                continue
            sample = samplers[attribute].sample()
            if sample.size == 0:
                raise PipelineError(
                    f"the source contained no values for attribute {attribute!r}"
                )
            sample.sort(kind="stable")
            bucketings[attribute] = equidepth_cuts_from_sorted(
                sample, requested[attribute]
            ).deduplicated()
        return bucketings

    # -- pass 2: counting ------------------------------------------------------

    def build_many(
        self,
        source: DataSource,
        specs: Iterable[AttributeSpec],
        bucketings: Mapping[str, Bucketing] | None = None,
    ) -> dict[str, AttributeCounts]:
        """Count every spec in (at most) two scans of ``source``.

        Specs naming the same attribute are merged, so a whole mining catalog
        — many objectives and average targets over several attributes —
        costs one sampling scan plus one counting scan in total, however many
        profiles it produces.  ``bucketings`` entries skip the sampling pass
        for their attribute (e.g. boundaries computed elsewhere, or reused
        from a previous build).
        """
        merged: dict[str, AttributeSpec] = {}
        for spec in specs:
            if spec.attribute in merged:
                merged[spec.attribute] = merged[spec.attribute].merged_with(spec)
            else:
                merged[spec.attribute] = spec
        if not merged:
            return {}

        resolved = dict(bucketings or {})
        missing = [attribute for attribute in merged if attribute not in resolved]
        if missing:
            resolved.update(self.sample_bucketings(source, missing))

        spec_list = list(merged.values())
        totals = self._run_counting_pass(
            self._payloads(source, spec_list, resolved), spec_list, resolved
        )

        results: dict[str, AttributeCounts] = {}
        for spec, counts in zip(spec_list, totals):
            results[spec.attribute] = AttributeCounts(
                attribute=spec.attribute,
                bucketing=resolved[spec.attribute],
                sizes=counts.sizes,
                conditional={
                    objective: counts.conditional[row]
                    for row, objective in enumerate(spec.objectives)
                },
                sums={
                    target: counts.sums[row]
                    for row, target in enumerate(spec.targets)
                },
                lows=counts.lows,
                highs=counts.highs,
                total=counts.num_tuples,
            )
        return results

    def build_counts(
        self,
        source: DataSource,
        attribute: str,
        objectives: Sequence[Condition] = (),
        targets: Sequence[str] = (),
        bucketing: Bucketing | None = None,
    ) -> AttributeCounts:
        """Count one attribute (any number of objectives/targets) in two scans."""
        spec = AttributeSpec(attribute, tuple(objectives), tuple(targets))
        overrides = {attribute: bucketing} if bucketing is not None else None
        return self.build_many(source, [spec], bucketings=overrides)[attribute]

    def build_profile(
        self,
        source: DataSource,
        attribute: str,
        objective: Condition,
        *,
        presumptive: Condition | None = None,
        bucketing: Bucketing | None = None,
        label: str | None = None,
    ) -> BucketProfile:
        """One confidence/support profile (optionally with a §4.3 conjunct).

        With a ``presumptive`` conjunct the per-bucket population is
        restricted to tuples meeting it chunk-side (support stays measured
        against the full source size), matching
        :meth:`BucketProfile.from_relation` exactly.
        """
        if presumptive is None:
            counts = self.build_counts(
                source, attribute, objectives=[objective], bucketing=bucketing
            )
            return counts.profile(objective, label=label)
        return self.build_presumptive_profiles(
            source,
            attribute,
            objective,
            [presumptive],
            bucketing=bucketing,
            label=label,
        )[presumptive]

    def build_profiles(
        self,
        source: DataSource,
        attribute: str,
        objectives: Sequence[Condition],
        bucketing: Bucketing | None = None,
    ) -> dict[Condition, BucketProfile]:
        """Profiles for many objectives of one attribute from a single scan."""
        counts = self.build_counts(
            source, attribute, objectives=objectives, bucketing=bucketing
        )
        return {objective: counts.profile(objective) for objective in objectives}

    def build_average_profile(
        self,
        source: DataSource,
        attribute: str,
        target: str,
        bucketing: Bucketing | None = None,
    ) -> BucketProfile:
        """The §5 average-operator profile of ``target`` grouped by ``attribute``."""
        counts = self.build_counts(
            source, attribute, targets=[target], bucketing=bucketing
        )
        return counts.average_profile(target)

    # -- internals -------------------------------------------------------------

    def _payloads(
        self,
        source: DataSource,
        specs: Sequence[AttributeSpec],
        bucketings: Mapping[str, Bucketing],
    ) -> Iterator[list[tuple[np.ndarray, np.ndarray, np.ndarray | None, np.ndarray | None]]]:
        """Per-chunk kernel payloads: columns extracted, conditions evaluated.

        Condition masks are evaluated chunk-side here in the parent (they
        need the relation chunk); workers only ever see plain arrays.
        Columns, masks, and stacked matrices are cached per chunk, so a
        catalog where every attribute spec carries the same objectives
        evaluates each condition once per chunk (not once per attribute) and
        shares one mask matrix across the payload — pickle deduplicates the
        shared array when it ships to worker processes.
        """
        for chunk in source.chunks():
            columns: dict[str, np.ndarray] = {}
            mask_rows: dict[Condition, np.ndarray] = {}
            mask_stacks: dict[tuple[Condition, ...], np.ndarray | None] = {}
            weight_stacks: dict[tuple[str, ...], np.ndarray | None] = {}

            def column(name: str) -> np.ndarray:
                if name not in columns:
                    columns[name] = np.asarray(
                        chunk.numeric_column(name), dtype=np.float64
                    )
                return columns[name]

            def masks_for(objectives: tuple[Condition, ...]) -> np.ndarray | None:
                if objectives not in mask_stacks:
                    if not objectives:
                        mask_stacks[objectives] = None
                    else:
                        for objective in objectives:
                            if objective not in mask_rows:
                                mask_rows[objective] = np.asarray(
                                    objective.mask(chunk), dtype=bool
                                )
                        mask_stacks[objectives] = np.vstack(
                            [mask_rows[objective] for objective in objectives]
                        )
                return mask_stacks[objectives]

            def weights_for(targets: tuple[str, ...]) -> np.ndarray | None:
                if targets not in weight_stacks:
                    weight_stacks[targets] = (
                        np.vstack([column(target) for target in targets])
                        if targets
                        else None
                    )
                return weight_stacks[targets]

            yield [
                (
                    column(spec.attribute),
                    bucketings[spec.attribute].cuts,
                    masks_for(spec.objectives),
                    weights_for(spec.targets),
                )
                for spec in specs
            ]

    def _run_counting_pass(
        self,
        payloads: Iterator[list],
        specs: Sequence[AttributeSpec],
        bucketings: Mapping[str, Bucketing],
    ) -> list[ChunkCounts]:
        """Run the executor strategy and merge partials in chunk order."""
        totals = [
            ChunkCounts.zeros(
                bucketings[spec.attribute].num_buckets,
                num_masks=len(spec.objectives),
                num_weights=len(spec.targets),
            )
            for spec in specs
        ]

        def merge(parts: list[ChunkCounts]) -> None:
            for total, part in zip(totals, parts):
                total.merge(part)

        self.fold_payloads(payloads, _count_chunk_payload, merge)
        return totals

    def fold_payloads(self, payloads: Iterator, worker, merge) -> None:
        """Run ``worker`` over every payload under the executor strategy.

        This is the single executor implementation every pipeline counting
        pass — 1-D profiles, §4.3 presumptive profiles, and the 2-D grids of
        :class:`~repro.pipeline.grid.GridProfileBuilder` — runs on.
        ``worker`` must be a picklable module-level function taking one
        payload; ``merge`` folds each result in **chunk order**, whatever the
        executor, which is what keeps all executors bit-identical.

        * ``serial`` / ``streaming`` — count and fold one chunk at a time:
          only one chunk's data and partials are ever resident, so
          out-of-core scans stay bounded.
        * ``multiprocessing`` — fan chunks out to a ``ProcessPoolExecutor``
          with a bounded submission window (two payloads in flight per
          worker), consuming results oldest-first so the merge order equals
          the chunk order — which keeps even float accumulations (§5 bucket
          sums) identical to the serial executor.
        """
        if self._executor in ("serial", "streaming"):
            for payload in payloads:
                merge(worker(payload))
            return
        workers = self._max_workers or min(8, os.cpu_count() or 1)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            window: deque = deque()
            for payload in payloads:
                window.append(pool.submit(worker, payload))
                if len(window) >= 2 * workers:
                    merge(window.popleft().result())
            while window:
                merge(window.popleft().result())

    def build_presumptive_profiles(
        self,
        source: DataSource,
        attribute: str,
        objective: Condition,
        presumptives: Sequence[Condition],
        bucketing: Bucketing | None = None,
        label: str | None = None,
    ) -> dict[Condition, BucketProfile]:
        """§4.3 profiles for *every* candidate conjunct in one counting scan.

        The §4.3 reduction turns a presumptive conjunct ``C1`` into a pure
        change of counted quantities — ``u_i`` counts the bucket's tuples
        meeting ``C1`` and ``v_i`` those meeting ``C1 ∧ C2`` — so a whole
        catalog of candidate conjuncts is just more mask rows for the shared
        kernel: this method counts two mask rows (and one restricted-bounds
        row) per conjunct in a single scan of the source, instead of one
        dedicated scan per conjunct.  Support stays measured against the
        full source size, and each profile's value bounds come from the
        conjunct's own restricted population, exactly matching
        :meth:`BucketProfile.from_relation` with ``presumptive=``.
        """
        presumptives = list(presumptives)
        if not presumptives:
            return {}
        if bucketing is None:
            bucketing = self.sample_bucketings(source, [attribute])[attribute]
        cuts = bucketing.cuts

        def payloads() -> Iterator[tuple]:
            for chunk in source.chunks():
                values = np.asarray(
                    chunk.numeric_column(attribute), dtype=np.float64
                )
                objective_mask = np.asarray(objective.mask(chunk), dtype=bool)
                bound_masks = np.empty(
                    (len(presumptives), values.shape[0]), dtype=bool
                )
                masks = np.empty(
                    (2 * len(presumptives), values.shape[0]), dtype=bool
                )
                for row, presumptive in enumerate(presumptives):
                    base = np.asarray(presumptive.mask(chunk), dtype=bool)
                    bound_masks[row] = base
                    masks[2 * row] = base
                    masks[2 * row + 1] = base & objective_mask
                yield values, cuts, masks, bound_masks

        totals = ChunkCounts.zeros(
            bucketing.num_buckets,
            num_masks=2 * len(presumptives),
            num_bound_masks=len(presumptives),
        )
        self.fold_payloads(
            payloads(), _count_presumptive_payload, totals.merge
        )
        if totals.num_tuples == 0:
            raise PipelineError("the source contained no tuples")

        profiles: dict[Condition, BucketProfile] = {}
        for row, presumptive in enumerate(presumptives):
            sizes = totals.conditional[2 * row]
            keep = sizes > 0
            if not np.any(keep):
                raise PipelineError(
                    "no tuple satisfies the presumptive conjunct; "
                    "cannot build a profile"
                )
            profiles[presumptive] = BucketProfile(
                attribute=attribute,
                objective_label=label if label is not None else str(objective),
                sizes=sizes[keep].astype(np.float64),
                values=totals.conditional[2 * row + 1][keep].astype(np.float64),
                lows=totals.mask_lows[row][keep],
                highs=totals.mask_highs[row][keep],
                total=float(totals.num_tuples),
            )
        return profiles


