"""The unified profile-construction pipeline (sample → boundaries → count).

Fukuda et al. design the bucketed formulation so that mining cost is
dominated by **one scan of the relation** plus cheap work on the M-bucket
profiles.  This module realizes that contract literally: a
:class:`ScanPlan` collects *every* profile request a workload needs —
plain bucket counts, §5 average targets, §4.3 presumptive-conjunct groups,
§1.4 2-D grids — and :meth:`ProfileBuilder.execute_plan` answers all of
them from a single physical scan of any
:class:`~repro.pipeline.sources.DataSource`:

1. **boundary sampling** — chunk-invariant
   :class:`~repro.bucketing.streaming.ReservoirSampler`\\ s (one per
   distinct ``(attribute, bucket count)`` pair, each seeded from
   ``(seed, crc32(attribute))``) fix the almost-equi-depth boundaries
   (steps 1–3 of Algorithm 3.1).  While this pass scans, the counting
   payloads — parsed columns, evaluated condition masks, target weights —
   are cached up to ``cache_budget_mb``, so counting normally needs no
   second pass over the source;
2. **fused counting fold** — every chunk (cached or re-scanned) runs
   through :func:`~repro.bucketing.counting.count_plan_chunk`: each axis
   assigned to buckets once per chunk, every ``(segment × condition)``
   cell answered by offset-encoded flat ``bincount``\\ s, partials merged
   in chunk order.

Per-request entry points (``build_profile``, ``build_profiles``,
``build_average_profile``, ``build_presumptive_profiles``,
``build_counts``, ``build_many``) compile to one-request plans; pass
``fused=False`` to run the pre-fusion one-counting-scan-per-call path
instead (the reference baseline for parity tests and benchmarks).

*Where* the kernel runs is an executor strategy:

* ``"serial"`` — every chunk counted in-process, each partial merged the
  moment its chunk is counted (one-PE Algorithm 3.2; only one chunk is ever
  resident);
* ``"streaming"`` — an alias of the same bounded-memory in-process loop,
  named for the out-of-core deployment it serves;
* ``"multiprocessing"`` — the compiled plan ships to each
  ``ProcessPoolExecutor`` worker once, chunk payloads stream out in
  consecutive batches, and each worker returns one merged
  :class:`~repro.bucketing.counting.PlanChunkCounts` per batch (Algorithm
  3.2 with real PEs); batches still merge in chunk order.

Counts are integers and partials always merge in chunk order, so all three
executors — and all source types over the same tuples — produce **bit
identical** :class:`~repro.core.BucketProfile`\\ s, and fused plans match
the per-request builds bit for bit; the parity suites in
``tests/pipeline/test_builder.py`` and ``tests/pipeline/test_plan.py``
assert exact equality across the full source × executor matrix.
"""

from __future__ import annotations

import os
import zlib
from collections import deque
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.bucketing.base import Bucketing
from repro.bucketing.counting import (
    AxisSpec,
    ChunkCounts,
    GridChunkCounts,
    GridSegment,
    KernelPlan,
    PlanChunkCounts,
    ValueSegment,
    count_plan_chunk,
    count_value_chunk,
)
from repro.bucketing.equidepth_sample import DEFAULT_SAMPLE_FACTOR
from repro.bucketing.equidepth_sort import equidepth_cuts_from_sorted
from repro.bucketing.streaming import ReservoirSampler
from repro.core.profile import BucketProfile
from repro.exceptions import ExecutorError, PipelineError
from repro.kernels import resolve_kernel_tier
from repro.pipeline.sources import DataSource
from repro.relation.conditions import Condition
from repro.relation.relation import Relation

if TYPE_CHECKING:  # pragma: no cover - typing only (grid builds on builder)
    from repro.pipeline.grid import GridCounts

__all__ = [
    "AttributeSpec",
    "AttributeCounts",
    "CompiledPlan",
    "ProfileBuilder",
    "ProfileRequest",
    "ScanPlan",
    "PlanResults",
    "EXECUTORS",
]

#: Recognized executor strategy names.
EXECUTORS = ("serial", "streaming", "multiprocessing")

#: Chunks per multiprocessing work item of a fused plan fold: workers return
#: one merged :class:`~repro.bucketing.counting.PlanChunkCounts` per batch
#: instead of one partial per (chunk, request), cutting the IPC volume.
_PLAN_BATCH_CHUNKS = 4

#: Default budget (MiB) for caching the counting payloads gathered during the
#: boundary-sampling scan, which is what lets a plan run off one physical
#: source scan.  Overridable per builder or via ``REPRO_PLAN_CACHE_MB``.
_DEFAULT_PLAN_CACHE_MB = 512


@dataclass(frozen=True)
class AttributeSpec:
    """What to count for one numeric attribute during the counting pass.

    Attributes
    ----------
    attribute:
        The numeric attribute whose buckets are counted.
    objectives:
        Objective conditions whose per-bucket conditional counts ``v_i`` are
        produced (confidence/support rules).
    targets:
        Numeric attributes whose per-bucket sums are produced (the §5
        average-operator numerators).
    """

    attribute: str
    objectives: tuple[Condition, ...] = ()
    targets: tuple[str, ...] = ()

    def merged_with(self, other: "AttributeSpec") -> "AttributeSpec":
        """Union of two specs for the same attribute (order-preserving)."""
        if other.attribute != self.attribute:
            raise PipelineError("cannot merge specs of different attributes")
        objectives = list(self.objectives)
        objectives.extend(o for o in other.objectives if o not in objectives)
        targets = list(self.targets)
        targets.extend(t for t in other.targets if t not in targets)
        return AttributeSpec(self.attribute, tuple(objectives), tuple(targets))


@dataclass
class AttributeCounts:
    """Pipeline output for one attribute: merged counts plus the bucketing.

    This is the streaming analogue of the miner's per-attribute assignment
    cache — everything needed to materialize any number of
    :class:`BucketProfile`\\ s for the attribute without another scan.
    """

    attribute: str
    bucketing: Bucketing
    sizes: np.ndarray
    conditional: dict[Condition, np.ndarray]
    sums: dict[str, np.ndarray]
    lows: np.ndarray
    highs: np.ndarray
    total: int

    @property
    def nonempty(self) -> np.ndarray:
        """Boolean mask of buckets that received at least one tuple."""
        return self.sizes > 0

    def profile(self, objective: Condition, label: str | None = None) -> BucketProfile:
        """The confidence/support profile of one counted objective."""
        if objective not in self.conditional:
            raise PipelineError(
                f"objective {objective} was not counted for attribute "
                f"{self.attribute!r}"
            )
        keep = self.nonempty
        if not np.any(keep):
            raise PipelineError("the source contained no tuples")
        return BucketProfile(
            attribute=self.attribute,
            objective_label=label if label is not None else str(objective),
            sizes=self.sizes[keep].astype(np.float64),
            values=self.conditional[objective][keep].astype(np.float64),
            lows=self.lows[keep],
            highs=self.highs[keep],
            total=float(self.total),
        )

    def average_profile(self, target: str) -> BucketProfile:
        """The §5 average-operator profile of one counted target attribute."""
        if target not in self.sums:
            raise PipelineError(
                f"target {target!r} was not counted for attribute "
                f"{self.attribute!r}"
            )
        keep = self.nonempty
        if not np.any(keep):
            raise PipelineError("the source contained no tuples")
        return BucketProfile(
            attribute=self.attribute,
            objective_label=f"avg({target})",
            sizes=self.sizes[keep].astype(np.float64),
            values=self.sums[target][keep],
            lows=self.lows[keep],
            highs=self.highs[keep],
            total=float(self.total),
        )


def _count_chunk_payload(
    payload: list[tuple[np.ndarray, np.ndarray, np.ndarray | None, np.ndarray | None]],
) -> list[ChunkCounts]:
    """Count one chunk's payload for every attribute (module-level: picklable).

    ``payload`` holds, per requested attribute, the chunk's value array, the
    bucketing cuts, the stacked objective masks (or ``None``) and the stacked
    target weights (or ``None``) — plain numpy only, so a process-pool worker
    needs nothing but this module.
    """
    return [
        count_value_chunk(values, cuts, masks=masks, weights=weights)
        for values, cuts, masks, weights in payload
    ]


def _count_presumptive_payload(
    payload: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
) -> ChunkCounts:
    """Count one chunk of a §4.3 presumptive batch (module-level: picklable).

    ``payload`` is ``(values, cuts, masks, bound_masks)`` where ``masks``
    interleaves each conjunct's population mask with its objective
    intersection and ``bound_masks`` holds the population masks whose
    restricted data bounds the profiles report.  The unrestricted bounds are
    never read by the presumptive profiles, so their sort is skipped.
    """
    values, cuts, masks, bound_masks = payload
    return count_value_chunk(
        values, cuts, masks=masks, with_bounds=False, bound_masks=bound_masks
    )


@dataclass(frozen=True)
class ProfileRequest:
    """One profile-construction request collected into a :class:`ScanPlan`.

    ``kind`` is one of ``"bucket"`` (per-bucket sizes, objective counts, §5
    target sums), ``"average"`` (an alias of ``bucket`` carrying only
    targets), ``"presumptive"`` (§4.3 conjunct profiles of one objective),
    or ``"grid"`` (a §1.4 2-D cell grid).  ``num_buckets`` (and
    ``column_num_buckets`` for grids) override the builder-wide bucket count
    for the request's axes.
    """

    kind: str
    attribute: str
    objectives: tuple[Condition, ...] = ()
    targets: tuple[str, ...] = ()
    objective: Condition | None = None
    presumptives: tuple[Condition, ...] = ()
    column_attribute: str | None = None
    num_buckets: int | None = None
    column_num_buckets: int | None = None


class ScanPlan:
    """Every profile the miner needs from a source, as one batched plan.

    A plan collects any mix of bucket, average, presumptive, and grid
    requests; :meth:`ProfileBuilder.execute_plan` then answers all of them
    from a **single physical scan** of the source (plus, when bucket
    boundaries still need sampling and the projected columns exceed the
    cache budget, one more).  Each ``add_*`` method returns a request id for
    looking the result up on the returned :class:`PlanResults`.
    """

    def __init__(self) -> None:
        self._requests: list[ProfileRequest] = []

    @property
    def requests(self) -> tuple[ProfileRequest, ...]:
        """The collected requests, in id order."""
        return tuple(self._requests)

    def __len__(self) -> int:
        return len(self._requests)

    def _append(self, request: ProfileRequest) -> int:
        if request.num_buckets is not None and request.num_buckets <= 0:
            raise PipelineError("num_buckets must be positive")
        if (
            request.column_num_buckets is not None
            and request.column_num_buckets <= 0
        ):
            raise PipelineError("num_buckets must be positive")
        self._requests.append(request)
        return len(self._requests) - 1

    def add_bucket(
        self,
        attribute: str,
        objectives: Sequence[Condition] = (),
        targets: Sequence[str] = (),
        num_buckets: int | None = None,
    ) -> int:
        """Request per-bucket sizes, objective counts, and §5 target sums."""
        return self._append(
            ProfileRequest(
                kind="bucket",
                attribute=attribute,
                objectives=tuple(dict.fromkeys(objectives)),
                targets=tuple(dict.fromkeys(targets)),
                num_buckets=num_buckets,
            )
        )

    def add_average(
        self,
        attribute: str,
        targets: Sequence[str],
        num_buckets: int | None = None,
    ) -> int:
        """Request §5 average-operator sums of ``targets`` over ``attribute``."""
        return self._append(
            ProfileRequest(
                kind="average",
                attribute=attribute,
                targets=tuple(dict.fromkeys(targets)),
                num_buckets=num_buckets,
            )
        )

    def add_presumptive(
        self,
        attribute: str,
        objective: Condition,
        presumptives: Sequence[Condition],
        num_buckets: int | None = None,
    ) -> int:
        """Request §4.3 profiles of ``objective`` under candidate conjuncts."""
        conjuncts = tuple(dict.fromkeys(presumptives))
        if not conjuncts:
            raise PipelineError(
                "a presumptive request needs at least one conjunct"
            )
        return self._append(
            ProfileRequest(
                kind="presumptive",
                attribute=attribute,
                objective=objective,
                presumptives=conjuncts,
                num_buckets=num_buckets,
            )
        )

    def add_grid(
        self,
        row_attribute: str,
        column_attribute: str,
        objectives: Sequence[Condition] = (),
        grid: tuple[int, int] | None = None,
    ) -> int:
        """Request a §1.4 2-D cell grid of every objective."""
        if row_attribute == column_attribute:
            raise PipelineError(
                "the grid's row and column attributes must differ"
            )
        return self._append(
            ProfileRequest(
                kind="grid",
                attribute=row_attribute,
                column_attribute=column_attribute,
                objectives=tuple(dict.fromkeys(objectives)),
                num_buckets=None if grid is None else int(grid[0]),
                column_num_buckets=None if grid is None else int(grid[1]),
            )
        )


class PlanResults:
    """Merged counts of one executed :class:`ScanPlan`, accessed by request id."""

    def __init__(
        self,
        requests: Sequence[ProfileRequest],
        parts: Sequence[ChunkCounts | GridChunkCounts],
        bucketings: Sequence[tuple[Bucketing, ...]],
    ) -> None:
        self._requests = list(requests)
        self._parts = list(parts)
        self._bucketings = list(bucketings)

    def request(self, request_id: int) -> ProfileRequest:
        """The request a result id refers to."""
        return self._requests[request_id]

    def bucketing(self, request_id: int) -> Bucketing:
        """The resolved bucketing of a 1-D request's attribute."""
        return self._bucketings[request_id][0]

    @property
    def parts(self) -> tuple[ChunkCounts | GridChunkCounts, ...]:
        """The merged counting partials, one per request (id order).

        This is the persistence surface of the profile store: together with
        :meth:`request_bucketings` it captures everything a plan execution
        produced, and feeding both back into a fresh :class:`PlanResults`
        reproduces every profile bit for bit.
        """
        return tuple(self._parts)

    def request_bucketings(self, request_id: int) -> tuple[Bucketing, ...]:
        """The resolved bucketing(s) of a request (two entries for grids)."""
        return self._bucketings[request_id]

    def counts(self, request_id: int) -> AttributeCounts:
        """The :class:`AttributeCounts` of a bucket/average request."""
        request = self._requests[request_id]
        if request.kind not in ("bucket", "average"):
            raise PipelineError(
                f"request {request_id} is a {request.kind} request, not bucket"
            )
        part = self._parts[request_id]
        assert isinstance(part, ChunkCounts)
        return AttributeCounts(
            attribute=request.attribute,
            bucketing=self._bucketings[request_id][0],
            sizes=part.sizes,
            conditional={
                objective: part.conditional[row]
                for row, objective in enumerate(request.objectives)
            },
            sums={
                target: part.sums[row]
                for row, target in enumerate(request.targets)
            },
            lows=part.lows,
            highs=part.highs,
            total=part.num_tuples,
        )

    def presumptive_profiles(
        self, request_id: int, label: str | None = None
    ) -> dict[Condition, BucketProfile]:
        """The §4.3 profiles of a presumptive request, one per conjunct."""
        request = self._requests[request_id]
        if request.kind != "presumptive":
            raise PipelineError(
                f"request {request_id} is a {request.kind} request, "
                "not presumptive"
            )
        part = self._parts[request_id]
        assert isinstance(part, ChunkCounts)
        if part.num_tuples == 0:
            raise PipelineError("the source contained no tuples")
        profiles: dict[Condition, BucketProfile] = {}
        for row, presumptive in enumerate(request.presumptives):
            sizes = part.conditional[2 * row]
            keep = sizes > 0
            if not np.any(keep):
                raise PipelineError(
                    "no tuple satisfies the presumptive conjunct; "
                    "cannot build a profile"
                )
            profiles[presumptive] = BucketProfile(
                attribute=request.attribute,
                objective_label=(
                    label if label is not None else str(request.objective)
                ),
                sizes=sizes[keep].astype(np.float64),
                values=part.conditional[2 * row + 1][keep].astype(np.float64),
                lows=part.mask_lows[row][keep],
                highs=part.mask_highs[row][keep],
                total=float(part.num_tuples),
            )
        return profiles

    def grid_counts(self, request_id: int) -> "GridCounts":
        """The :class:`~repro.pipeline.grid.GridCounts` of a grid request."""
        from repro.pipeline.grid import GridCounts

        request = self._requests[request_id]
        if request.kind != "grid":
            raise PipelineError(
                f"request {request_id} is a {request.kind} request, not grid"
            )
        part = self._parts[request_id]
        assert isinstance(part, GridChunkCounts)
        row_bucketing, column_bucketing = self._bucketings[request_id]
        assert request.column_attribute is not None
        return GridCounts(
            row_attribute=request.attribute,
            column_attribute=request.column_attribute,
            row_bucketing=row_bucketing,
            column_bucketing=column_bucketing,
            sizes=part.sizes,
            conditional={
                objective: part.conditional[row]
                for row, objective in enumerate(request.objectives)
            },
            row_lows=part.row_lows,
            row_highs=part.row_highs,
            column_lows=part.column_lows,
            column_highs=part.column_highs,
            total=part.num_tuples,
        )


class _PlanPayloadBuilder:
    """Turn relation chunks into fused-kernel payloads (parent-side only).

    Per chunk, every axis column is extracted once, every distinct condition
    is evaluated into a tuple mask once (derived ``C1 ∧ C2`` rows reuse the
    cached single-condition masks), and the results stack into the single
    mask/weight matrices the :class:`~repro.bucketing.counting.KernelPlan`
    indexes by slot.
    """

    def __init__(
        self,
        column_names: Sequence[str],
        mask_descriptors: Sequence[tuple[Condition, ...]],
        weight_targets: Sequence[str],
    ) -> None:
        self._column_names = list(column_names)
        self._mask_descriptors = list(mask_descriptors)
        self._weight_targets = list(weight_targets)

    def needed_columns(self) -> list[str]:
        """Every source column the payloads touch (the projection pushdown)."""
        needed = dict.fromkeys(self._column_names)
        for descriptor in self._mask_descriptors:
            for condition in descriptor:
                needed.update(dict.fromkeys(condition.attribute_names()))
        needed.update(dict.fromkeys(self._weight_targets))
        return list(needed)

    def build(
        self, chunk: Relation
    ) -> tuple[tuple[np.ndarray, ...], np.ndarray | None, np.ndarray | None]:
        columns = tuple(
            np.asarray(chunk.numeric_column(name), dtype=np.float64)
            for name in self._column_names
        )
        num_tuples = chunk.num_tuples
        cache: dict[Condition, np.ndarray] = {}

        def condition_mask(condition: Condition) -> np.ndarray:
            if condition not in cache:
                cache[condition] = np.asarray(condition.mask(chunk), dtype=bool)
            return cache[condition]

        masks: np.ndarray | None = None
        if self._mask_descriptors:
            masks = np.empty((len(self._mask_descriptors), num_tuples), dtype=bool)
            for row, descriptor in enumerate(self._mask_descriptors):
                combined = condition_mask(descriptor[0])
                for condition in descriptor[1:]:
                    combined = combined & condition_mask(condition)
                masks[row] = combined
        weights: np.ndarray | None = None
        if self._weight_targets:
            weights = np.empty(
                (len(self._weight_targets), num_tuples), dtype=np.float64
            )
            for row, target in enumerate(self._weight_targets):
                weights[row] = np.asarray(
                    chunk.numeric_column(target), dtype=np.float64
                )
        return columns, masks, weights

    @staticmethod
    def nbytes(
        payload: tuple[tuple[np.ndarray, ...], np.ndarray | None, np.ndarray | None]
    ) -> int:
        """Approximate resident size of one payload (cache accounting)."""
        columns, masks, weights = payload
        total = sum(column.nbytes for column in columns)
        if masks is not None:
            total += masks.nbytes
        if weights is not None:
            total += weights.nbytes
        return total


@dataclass(frozen=True)
class CompiledPlan:
    """A :class:`ScanPlan` compiled against fully-resolved bucketings.

    Everything a counting pass needs, with the boundary question already
    settled: the fused :class:`~repro.bucketing.counting.KernelPlan`, the
    payload builder that evaluates relation chunks into kernel payloads, the
    projected source columns, and the per-request bucketing resolution.
    This is the unit of work the shard plane hands to each worker — compile
    once on the coordinator, count any span anywhere, merge the partials.
    """

    requests: tuple[ProfileRequest, ...]
    kernel_plan: KernelPlan
    payload_builder: _PlanPayloadBuilder
    needed_columns: tuple[str, ...]
    request_bucketings: tuple[tuple[Bucketing, ...], ...]
    # Resolved kernel tier the counting passes run under.  Deliberately NOT
    # part of the plan signature: tiers are bit-interchangeable, so stores
    # and checkpoints are shared freely across tiers.  Defaulted last so
    # plans pickled by older coordinators keep loading.
    kernel_tier: str = "numpy"

    def count_chunks(self, chunks: Iterable[Relation]) -> PlanChunkCounts:
        """Count relation chunks serially, merging partials in chunk order."""
        totals = self.kernel_plan.zeros()
        for chunk in chunks:
            totals.merge(
                count_plan_chunk(
                    self.kernel_plan,
                    self.payload_builder.build(chunk),
                    tier=self.kernel_tier,
                )
            )
        return totals

    def results(self, totals: PlanChunkCounts) -> PlanResults:
        """Wrap merged totals as the plan's :class:`PlanResults`."""
        return PlanResults(
            list(self.requests), totals.parts, list(self.request_bucketings)
        )


# Compiled plan shipped to each multiprocessing worker exactly once (via the
# pool initializer); per-chunk traffic is then payload batches only.
_WORKER_PLAN: KernelPlan | None = None
_WORKER_TIER: str = "numpy"


def _init_plan_worker(plan: KernelPlan, tier: str = "numpy") -> None:
    """Process-pool initializer: pin the fused plan in the worker process."""
    global _WORKER_PLAN, _WORKER_TIER
    _WORKER_PLAN = plan
    _WORKER_TIER = tier


def _count_plan_batch(batch: list) -> PlanChunkCounts:
    """Count a batch of consecutive chunks and merge them worker-side."""
    assert _WORKER_PLAN is not None
    totals: PlanChunkCounts | None = None
    for payload in batch:
        part = count_plan_chunk(_WORKER_PLAN, payload, tier=_WORKER_TIER)
        totals = part if totals is None else totals.merge(part)
    assert totals is not None
    return totals


class ProfileBuilder:
    """Build bucket profiles from any data source with a pluggable executor.

    Parameters
    ----------
    num_buckets:
        Bucket count targeted per attribute (ties in the boundary sample can
        reduce it, exactly as in the in-memory bucketizer).
    executor:
        ``"serial"``, ``"streaming"``, or ``"multiprocessing"`` — where the
        counting kernel runs (see the module docstring).  All three produce
        bit-identical profiles.
    sample_factor:
        Reservoir points per bucket for the boundary sample (the paper's
        ``S = 40·M``).
    seed:
        Base seed of the boundary-sampling RNG.  Each attribute derives its
        own generator from ``(seed, crc32(attribute))``, so the boundaries of
        one attribute do not depend on which other attributes are requested,
        how the stream is chunked, or which executor counts it.
    max_workers:
        Worker processes for the multiprocessing executor (default: one per
        CPU, capped at 8).
    fused:
        ``True`` (default) routes every counting pass through the fused
        :class:`ScanPlan` engine (one physical scan per plan).  ``False``
        keeps the pre-fusion behavior — one counting scan per ``build_*``
        call — and exists as the reference/baseline path for parity tests
        and benchmarks.
    cache_budget_mb:
        Budget (MiB) for caching counting payloads during the sampling scan
        so a plan needs only one physical source scan; past the budget the
        plan falls back to a separate counting scan.  Default: the
        ``REPRO_PLAN_CACHE_MB`` environment variable, else 512.
    kernel_tier:
        ``"auto"``, ``"numpy"``, or ``"compiled"`` — which kernel tier the
        counting passes run (default: the ``REPRO_KERNEL_TIER`` environment
        variable, then ``"auto"``).  Resolved once at construction;
        ``"auto"`` picks the compiled Numba kernels when numba is
        installed and the NumPy kernels otherwise.  Tiers are
        bit-interchangeable, so the choice never affects results, plan
        signatures, or store compatibility.
    """

    def __init__(
        self,
        num_buckets: int = 1000,
        *,
        executor: str = "serial",
        sample_factor: int = DEFAULT_SAMPLE_FACTOR,
        seed: int = 0,
        max_workers: int | None = None,
        fused: bool = True,
        cache_budget_mb: int | None = None,
        kernel_tier: str | None = None,
    ) -> None:
        if num_buckets <= 0:
            raise PipelineError("num_buckets must be positive")
        if executor not in EXECUTORS:
            raise PipelineError(
                f"unknown executor {executor!r}; use one of {', '.join(EXECUTORS)}"
            )
        if sample_factor <= 0:
            raise PipelineError("sample_factor must be positive")
        if max_workers is not None and max_workers <= 0:
            raise PipelineError("max_workers must be positive")
        if cache_budget_mb is None:
            raw = os.environ.get("REPRO_PLAN_CACHE_MB", "")
            cache_budget_mb = int(raw) if raw else _DEFAULT_PLAN_CACHE_MB
        if cache_budget_mb < 0:
            raise PipelineError("cache_budget_mb must be non-negative")
        self._num_buckets = int(num_buckets)
        self._executor = executor
        self._sample_factor = int(sample_factor)
        self._seed = int(seed)
        self._max_workers = max_workers
        self._fused = bool(fused)
        self._cache_budget_bytes = int(cache_budget_mb) * 1024 * 1024
        self._kernel_tier = resolve_kernel_tier(kernel_tier)

    # -- configuration ---------------------------------------------------------

    @property
    def num_buckets(self) -> int:
        """Requested buckets per attribute."""
        return self._num_buckets

    @property
    def executor(self) -> str:
        """The executor strategy in use."""
        return self._executor

    @property
    def sample_factor(self) -> int:
        """Reservoir points per bucket of the boundary sample."""
        return self._sample_factor

    @property
    def seed(self) -> int:
        """Base seed of the boundary-sampling RNG."""
        return self._seed

    @property
    def fused(self) -> bool:
        """Whether counting passes run through the fused scan planner."""
        return self._fused

    @property
    def kernel_tier(self) -> str:
        """The resolved kernel tier (``"numpy"`` or ``"compiled"``)."""
        return self._kernel_tier

    # -- pass 1: boundary sampling ---------------------------------------------

    def _attribute_rng(self, attribute: str) -> np.random.Generator:
        """Deterministic per-attribute generator (independent of the request set)."""
        return np.random.default_rng(
            [self._seed, zlib.crc32(attribute.encode("utf-8"))]
        )

    def sample_bucketings(
        self,
        source: DataSource,
        attributes: Sequence[str],
        num_buckets: Mapping[str, int] | None = None,
    ) -> dict[str, Bucketing]:
        """One scan of ``source`` sampling bucket boundaries for every attribute.

        Algorithm 3.1 steps 1–3 via reservoir sampling: uniform without
        knowing the stream length, so the same code serves in-memory,
        chunked, and file sources.  Duplicate cut points (heavily tied data)
        are merged as the in-memory bucketizer does.  ``num_buckets`` entries
        override the builder-wide bucket count per attribute (the 2-D grid
        builder uses this for non-square grids); each attribute's reservoir
        is sized ``sample_factor`` times its own bucket count.
        """
        attributes = list(dict.fromkeys(attributes))
        if not attributes:
            return {}
        requested = {
            attribute: int((num_buckets or {}).get(attribute, self._num_buckets))
            for attribute in attributes
        }
        if any(count <= 0 for count in requested.values()):
            raise PipelineError("num_buckets must be positive")
        pairs = [(attribute, requested[attribute]) for attribute in attributes]
        samplers = self._make_samplers(pairs)
        if samplers:
            columns = list(dict.fromkeys(attribute for attribute, _ in samplers))
            for chunk in source.scan(columns):
                for (attribute, _), sampler in samplers.items():
                    sampler.extend(chunk.numeric_column(attribute))
        sampled = self._resolve_sampled(pairs, samplers)
        return {
            attribute: sampled[(attribute, requested[attribute])]
            for attribute in attributes
        }

    def _make_samplers(
        self, pairs: Sequence[tuple[str, int]]
    ) -> dict[tuple[str, int], ReservoirSampler]:
        """One reservoir per distinct ``(attribute, bucket count)`` pair.

        Each reservoir draws from its own ``(seed, crc32(attribute))``
        generator, exactly as a standalone :meth:`sample_bucketings` call
        for that pair would — so however many requests a plan fuses, the
        sampled boundaries are bit-identical to the per-request scans.
        """
        return {
            (attribute, count): ReservoirSampler(
                self._sample_factor * count,
                rng=self._attribute_rng(attribute),
            )
            for attribute, count in dict.fromkeys(pairs)
            if count > 1
        }

    def _resolve_sampled(
        self,
        pairs: Sequence[tuple[str, int]],
        samplers: Mapping[tuple[str, int], ReservoirSampler],
    ) -> dict[tuple[str, int], Bucketing]:
        """Sorted-sample boundaries for every requested pair (steps 2–3)."""
        bucketings: dict[tuple[str, int], Bucketing] = {}
        for attribute, count in dict.fromkeys(pairs):
            if count == 1:
                bucketings[(attribute, count)] = Bucketing.single_bucket()
                continue
            sample = samplers[(attribute, count)].sample()
            if sample.size == 0:
                raise PipelineError(
                    f"the source contained no values for attribute {attribute!r}"
                )
            sample.sort(kind="stable")
            bucketings[(attribute, count)] = equidepth_cuts_from_sorted(
                sample, count
            ).deduplicated()
        return bucketings

    # -- fused scan planning ---------------------------------------------------

    def _axis_pairs(self, request: ProfileRequest) -> list[tuple[str, int]]:
        """The ``(attribute, bucket count)`` axis pair(s) a request buckets on."""
        pairs = [(request.attribute, request.num_buckets or self._num_buckets)]
        if request.kind == "grid":
            assert request.column_attribute is not None
            pairs.append(
                (
                    request.column_attribute,
                    request.column_num_buckets or self._num_buckets,
                )
            )
        return pairs

    def _plan_wiring(
        self, requests: Sequence[ProfileRequest]
    ) -> tuple[dict[str, int], list[dict], _PlanPayloadBuilder, list[str]]:
        """Slot compilation: one column slot per axis attribute, one mask row
        per distinct condition conjunction, one weight row per target.

        Returns the column-slot table, the per-request slot wiring, the
        payload builder that evaluates chunks into those slots, and the
        projected source columns the payloads touch.
        """
        column_slots: dict[str, int] = {}
        mask_slots: dict[tuple[Condition, ...], int] = {}
        weight_slots: dict[str, int] = {}

        def column_slot(attribute: str) -> int:
            return column_slots.setdefault(attribute, len(column_slots))

        def mask_slot(descriptor: tuple[Condition, ...]) -> int:
            descriptor = tuple(dict.fromkeys(descriptor))
            return mask_slots.setdefault(descriptor, len(mask_slots))

        def weight_slot(target: str) -> int:
            return weight_slots.setdefault(target, len(weight_slots))

        request_wiring: list[dict] = []
        for request in requests:
            wiring: dict = {"columns": [column_slot(request.attribute)]}
            if request.kind == "grid":
                assert request.column_attribute is not None
                wiring["columns"].append(column_slot(request.column_attribute))
                wiring["masks"] = [
                    mask_slot((objective,)) for objective in request.objectives
                ]
            elif request.kind == "presumptive":
                assert request.objective is not None
                interleaved: list[int] = []
                for presumptive in request.presumptives:
                    interleaved.append(mask_slot((presumptive,)))
                    interleaved.append(
                        mask_slot((presumptive, request.objective))
                    )
                wiring["masks"] = interleaved
                wiring["bounds"] = [
                    mask_slot((presumptive,))
                    for presumptive in request.presumptives
                ]
            else:
                wiring["masks"] = [
                    mask_slot((objective,)) for objective in request.objectives
                ]
                wiring["weights"] = [
                    weight_slot(target) for target in request.targets
                ]
            request_wiring.append(wiring)

        payload_builder = _PlanPayloadBuilder(
            list(column_slots), list(mask_slots), list(weight_slots)
        )
        return (
            column_slots,
            request_wiring,
            payload_builder,
            payload_builder.needed_columns(),
        )

    def _plan_kernel(
        self,
        requests: Sequence[ProfileRequest],
        column_slots: Mapping[str, int],
        request_wiring: Sequence[dict],
        resolve,
    ) -> tuple[KernelPlan, list[tuple[Bucketing, ...]]]:
        """Compile the fused kernel: one axis per distinct ``(attribute,
        bucketing)`` (bounds kept when any non-presumptive segment reads
        them), one segment per request.  ``resolve(attribute, count)`` must
        return the same :class:`Bucketing` object for the same pair.
        """
        axis_ids: dict[tuple[str, int], int] = {}
        axis_specs: list[dict] = []

        def axis_id(attribute: str, bucketing: Bucketing, bounds: bool) -> int:
            key = (attribute, id(bucketing))
            if key not in axis_ids:
                axis_ids[key] = len(axis_specs)
                axis_specs.append(
                    {
                        "column": column_slots[attribute],
                        "cuts": bucketing.cuts,
                        "bounds": bounds,
                    }
                )
            elif bounds:
                axis_specs[axis_ids[key]]["bounds"] = True
            return axis_ids[key]

        segments: list[ValueSegment | GridSegment] = []
        request_bucketings: list[tuple[Bucketing, ...]] = []
        for request, wiring in zip(requests, request_wiring):
            pairs = self._axis_pairs(request)
            resolved = tuple(resolve(attribute, count) for attribute, count in pairs)
            request_bucketings.append(resolved)
            if request.kind == "grid":
                segments.append(
                    GridSegment(
                        row_axis=axis_id(pairs[0][0], resolved[0], True),
                        column_axis=axis_id(pairs[1][0], resolved[1], True),
                        mask_slots=tuple(wiring["masks"]),
                    )
                )
            elif request.kind == "presumptive":
                segments.append(
                    ValueSegment(
                        axis=axis_id(pairs[0][0], resolved[0], False),
                        mask_slots=tuple(wiring["masks"]),
                        bound_mask_slots=tuple(wiring["bounds"]),
                        with_bounds=False,
                    )
                )
            else:
                segments.append(
                    ValueSegment(
                        axis=axis_id(pairs[0][0], resolved[0], True),
                        mask_slots=tuple(wiring["masks"]),
                        weight_slots=tuple(wiring.get("weights", ())),
                        with_bounds=True,
                    )
                )

        kernel_plan = KernelPlan(axes=tuple(
            AxisSpec(
                column=spec["column"], cuts=spec["cuts"], with_bounds=spec["bounds"]
            )
            for spec in axis_specs
        ), segments=tuple(segments))
        return kernel_plan, request_bucketings

    def plan_axis_pairs(self, plan: ScanPlan) -> list[tuple[str, int]]:
        """Every distinct ``(attribute, bucket count)`` axis pair of a plan."""
        return list(
            dict.fromkeys(
                pair
                for request in plan.requests
                for pair in self._axis_pairs(request)
            )
        )

    def sample_axis_bucketings(
        self, source: DataSource, pairs: Sequence[tuple[str, int]]
    ) -> dict[tuple[str, int], Bucketing]:
        """One scan sampling boundaries for explicit ``(attribute, count)`` pairs.

        The pair-keyed sibling of :meth:`sample_bucketings` — a plan may
        bucket the same attribute at two widths (a 1-D profile and a grid
        axis), which an attribute-keyed mapping cannot express.  Each pair's
        reservoir draws from the attribute's own seeded generator, so the
        boundaries are bit-identical to the sampling pass
        :meth:`execute_plan` runs for the same pairs.
        """
        pairs = list(dict.fromkeys(pairs))
        samplers = self._make_samplers(pairs)
        if samplers:
            columns = list(
                dict.fromkeys(attribute for attribute, _ in samplers)
            )
            for chunk in source.scan(columns):
                for (attribute, _), sampler in samplers.items():
                    sampler.extend(chunk.numeric_column(attribute))
        return self._resolve_sampled(pairs, samplers)

    def compile_plan(
        self,
        plan: ScanPlan,
        bucketings: Mapping[str | tuple[str, int], Bucketing],
    ) -> CompiledPlan:
        """Compile a plan against *fully-resolved* bucketings (no sampling).

        ``bucketings`` must cover every axis of the plan, keyed either by
        ``(attribute, bucket count)`` pair (exact) or by plain attribute
        name (a fallback for every width); the boundary-sampling pass has
        already happened (or the boundaries came from a store snapshot).
        The compiled plan is position-independent: counting any subset of
        the source's chunks through it and merging the partials in chunk
        order reproduces what a full :meth:`execute_plan` fold over those
        chunks would produce — the foundation of the shard plane's
        scatter/gather.
        """
        requests = list(plan.requests)
        column_slots, request_wiring, payload_builder, needed_columns = (
            self._plan_wiring(requests)
        )

        def resolve(attribute: str, count: int) -> Bucketing:
            if (attribute, count) in bucketings:
                return bucketings[(attribute, count)]
            if attribute in bucketings:
                return bucketings[attribute]
            raise PipelineError(
                f"compile_plan received no bucketing for attribute "
                f"{attribute!r} at {count} buckets"
            )

        kernel_plan, request_bucketings = self._plan_kernel(
            requests, column_slots, request_wiring, resolve
        )
        return CompiledPlan(
            requests=tuple(requests),
            kernel_plan=kernel_plan,
            payload_builder=payload_builder,
            needed_columns=tuple(needed_columns),
            request_bucketings=tuple(request_bucketings),
            kernel_tier=self._kernel_tier,
        )

    def execute_plan(
        self,
        source: DataSource,
        plan: ScanPlan,
        bucketings: Mapping[str, Bucketing] | None = None,
        store: "object | None" = None,
        shards: int | None = None,
    ) -> PlanResults:
        """Answer every request of ``plan`` from one fold over ``source``.

        The plan compiles into one :class:`~repro.bucketing.counting.KernelPlan`
        — shared axes, deduplicated condition slots, one segment per request
        — and a single counting fold under the builder's executor produces
        all the profiles.  Attributes without a ``bucketings`` override get
        their boundaries from the reservoir pass first; during that sampling
        scan the counting payloads are cached (up to ``cache_budget_mb``),
        so the whole plan normally touches the source **once** — and exactly
        once when every bucketing is supplied.  Results are bit-identical to
        running each request through its per-request ``build_*`` method.

        ``store`` routes the execution through a persistent
        :class:`~repro.store.ProfileStore`: a matching snapshot is served
        with **zero** physical source scans, an append-only grown source
        counts only its tail (frozen boundaries, staleness-tracked), and
        anything else executes normally and is persisted for next time.
        The store fixes its own boundaries, so it cannot be combined with
        ``bucketings`` overrides.

        ``shards`` routes the counting fold through a default-configured
        :class:`~repro.shard.ShardCoordinator` with that many shards —
        boundary sampling stays a single serial pass (reservoir streams are
        scan-order-sensitive), then each shard counts its own span of the
        source and the partials fold in shard order.  See
        :mod:`repro.shard` for timeouts, retries, checkpoint/resume, and
        degradation policies.
        """
        if shards is not None:
            if store is not None:
                raise PipelineError(
                    "shards cannot be combined with a store; run the "
                    "ShardCoordinator directly and persist via store.put"
                )
            from repro.shard import ShardCoordinator

            coordinator = ShardCoordinator(self, num_shards=shards)
            return coordinator.mine(source, plan, bucketings=bucketings).results
        if store is not None:
            if bucketings:
                raise PipelineError(
                    "bucketings overrides cannot be combined with a store; "
                    "stored snapshots fix their own boundaries"
                )
            results, _ = store.serve(self, source, plan)
            return results
        requests = list(plan.requests)
        if not requests:
            return PlanResults([], [], [])
        overrides = dict(bucketings or {})

        needed_pairs = list(
            dict.fromkeys(
                pair
                for request in requests
                for pair in self._axis_pairs(request)
                if pair[0] not in overrides
            )
        )

        column_slots, request_wiring, payload_builder, needed_columns = (
            self._plan_wiring(requests)
        )

        # Boundary sampling — with the counting payloads cached along the
        # way, this is the plan's one and only pass over the source.
        cache: list | None = None
        sampled: dict[tuple[str, int], Bucketing] = {}
        if needed_pairs:
            samplers = self._make_samplers(needed_pairs)
            if samplers:
                cache = [] if self._cache_budget_bytes > 0 else None
                cache_bytes = 0
                for chunk in source.scan(needed_columns):
                    for (attribute, _), sampler in samplers.items():
                        sampler.extend(chunk.numeric_column(attribute))
                    if cache is not None:
                        payload = payload_builder.build(chunk)
                        cache_bytes += _PlanPayloadBuilder.nbytes(payload)
                        if cache_bytes > self._cache_budget_bytes:
                            cache = None
                        else:
                            cache.append(payload)
            sampled = self._resolve_sampled(needed_pairs, samplers)

        def resolve(attribute: str, count: int) -> Bucketing:
            if attribute in overrides:
                return overrides[attribute]
            return sampled[(attribute, count)]

        kernel_plan, request_bucketings = self._plan_kernel(
            requests, column_slots, request_wiring, resolve
        )

        if cache is not None:
            payloads: Iterator = iter(cache)
        else:
            payloads = (
                payload_builder.build(chunk)
                for chunk in source.scan(needed_columns)
            )
        totals = self._fold_plan(kernel_plan, payloads)
        return PlanResults(requests, totals.parts, request_bucketings)

    def execute_plan_tail(
        self,
        source: DataSource,
        plan: ScanPlan,
        bucketings: Sequence[tuple[Bucketing, ...]],
        start: int,
        initial: PlanChunkCounts | None = None,
    ) -> PlanResults:
        """Fold only the source's tail into already-merged plan totals.

        This is the incremental-append half of the profile store: the bucket
        boundaries stay **frozen** at their snapshot values (``bucketings``
        is the per-request resolution of the original execution), the fused
        kernel counts only the chunks of ``source.scan_tail(start)``, and
        each tail partial merges into ``initial`` in chunk order — so with
        the serial/streaming executors the merged result is *by
        construction* the same sequence of float additions a full re-count
        over head-then-tail would perform, making append-then-serve
        bit-identical to rebuild-with-frozen-boundaries.  ``initial`` is
        mutated in place (callers pass a freshly deserialized copy); with
        ``initial=None`` and ``start=0`` this *is* that frozen-boundary
        rebuild — the differential harness uses exactly that as the append
        parity oracle.
        """
        requests = list(plan.requests)
        if len(requests) != len(bucketings):
            raise PipelineError(
                "stored bucketings do not match the plan's request count"
            )
        if not requests:
            return PlanResults([], [], [])
        column_slots, request_wiring, payload_builder, needed_columns = (
            self._plan_wiring(requests)
        )
        resolved_pairs: dict[tuple[str, int], Bucketing] = {}
        for request, resolved in zip(requests, bucketings):
            pairs = self._axis_pairs(request)
            if len(pairs) != len(resolved):
                raise PipelineError(
                    "stored bucketings do not match a request's axis count"
                )
            for pair, bucketing in zip(pairs, resolved):
                resolved_pairs.setdefault(pair, bucketing)

        def resolve(attribute: str, count: int) -> Bucketing:
            return resolved_pairs[(attribute, count)]

        kernel_plan, request_bucketings = self._plan_kernel(
            requests, column_slots, request_wiring, resolve
        )
        payloads = (
            payload_builder.build(chunk)
            for chunk in source.scan_tail(start, needed_columns)
        )
        totals = self._fold_plan(kernel_plan, payloads, initial=initial)
        return PlanResults(requests, totals.parts, request_bucketings)

    def _fold_plan(
        self,
        kernel_plan: KernelPlan,
        payloads: Iterator,
        initial: PlanChunkCounts | None = None,
    ) -> PlanChunkCounts:
        """Run the fused kernel over every payload under the executor strategy.

        Serial/streaming count and merge one chunk at a time.  The
        multiprocessing executor ships the compiled plan to each worker once
        (pool initializer), streams payloads in batches of
        ``_PLAN_BATCH_CHUNKS`` consecutive chunks, and each worker returns
        one merged :class:`PlanChunkCounts` per batch; batches are submitted
        and merged oldest-first, so the overall merge order equals the chunk
        order and stays bit-identical to the serial fold.  ``initial``
        seeds the fold with pre-merged totals (the store's append path)
        instead of the plan's zeros.
        """
        totals = kernel_plan.zeros() if initial is None else initial
        if self._executor in ("serial", "streaming"):
            for payload in payloads:
                totals.merge(
                    count_plan_chunk(kernel_plan, payload, tier=self._kernel_tier)
                )
            return totals
        workers = self._max_workers or min(8, os.cpu_count() or 1)
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_plan_worker,
            initargs=(kernel_plan, self._kernel_tier),
        ) as pool:
            window: deque = deque()
            submitted = 0
            merged = 0
            batch: list = []
            try:
                for payload in payloads:
                    batch.append(payload)
                    if len(batch) == _PLAN_BATCH_CHUNKS:
                        window.append(pool.submit(_count_plan_batch, batch))
                        submitted += 1
                        batch = []
                        if len(window) >= 2 * workers:
                            totals.merge(window.popleft().result())
                            merged += 1
                if batch:
                    window.append(pool.submit(_count_plan_batch, batch))
                    submitted += 1
                while window:
                    totals.merge(window.popleft().result())
                    merged += 1
            except BrokenExecutor as exc:
                raise ExecutorError(
                    "a multiprocessing counting worker died while processing "
                    f"chunk batch {merged} "
                    f"(chunks {merged * _PLAN_BATCH_CHUNKS}.."
                    f"{(merged + 1) * _PLAN_BATCH_CHUNKS - 1}) of the plan "
                    "fold (out-of-memory kill or crash); its partial counts "
                    "are unrecoverable"
                ) from exc
        return totals

    # -- pass 2: counting ------------------------------------------------------

    def build_many(
        self,
        source: DataSource,
        specs: Iterable[AttributeSpec],
        bucketings: Mapping[str, Bucketing] | None = None,
    ) -> dict[str, AttributeCounts]:
        """Count every spec in at most two — normally **one** — scans of ``source``.

        Specs naming the same attribute are merged, so a whole mining catalog
        — many objectives and average targets over several attributes —
        costs a single fused scan in total, however many profiles it
        produces (the boundary-sampling pass caches the counting payloads;
        only past the cache budget does counting re-scan the source).
        ``bucketings`` entries skip the sampling pass for their attribute
        (e.g. boundaries computed elsewhere, or reused from a previous
        build).
        """
        merged: dict[str, AttributeSpec] = {}
        for spec in specs:
            if spec.attribute in merged:
                merged[spec.attribute] = merged[spec.attribute].merged_with(spec)
            else:
                merged[spec.attribute] = spec
        if not merged:
            return {}
        if not self._fused:
            return self._build_many_unfused(source, merged, bucketings)

        plan = ScanPlan()
        ids = {
            spec.attribute: plan.add_bucket(
                spec.attribute, objectives=spec.objectives, targets=spec.targets
            )
            for spec in merged.values()
        }
        results = self.execute_plan(source, plan, bucketings=bucketings)
        return {
            attribute: results.counts(request_id)
            for attribute, request_id in ids.items()
        }

    def _build_many_unfused(
        self,
        source: DataSource,
        merged: Mapping[str, AttributeSpec],
        bucketings: Mapping[str, Bucketing] | None,
    ) -> dict[str, AttributeCounts]:
        """The pre-fusion counting pass (reference path for parity/benchmarks)."""
        resolved = dict(bucketings or {})
        missing = [attribute for attribute in merged if attribute not in resolved]
        if missing:
            resolved.update(self.sample_bucketings(source, missing))

        spec_list = list(merged.values())
        totals = self._run_counting_pass(
            self._payloads(source, spec_list, resolved), spec_list, resolved
        )

        results: dict[str, AttributeCounts] = {}
        for spec, counts in zip(spec_list, totals):
            results[spec.attribute] = AttributeCounts(
                attribute=spec.attribute,
                bucketing=resolved[spec.attribute],
                sizes=counts.sizes,
                conditional={
                    objective: counts.conditional[row]
                    for row, objective in enumerate(spec.objectives)
                },
                sums={
                    target: counts.sums[row]
                    for row, target in enumerate(spec.targets)
                },
                lows=counts.lows,
                highs=counts.highs,
                total=counts.num_tuples,
            )
        return results

    def build_counts(
        self,
        source: DataSource,
        attribute: str,
        objectives: Sequence[Condition] = (),
        targets: Sequence[str] = (),
        bucketing: Bucketing | None = None,
    ) -> AttributeCounts:
        """Count one attribute (any number of objectives/targets) in one fused scan."""
        spec = AttributeSpec(attribute, tuple(objectives), tuple(targets))
        overrides = {attribute: bucketing} if bucketing is not None else None
        return self.build_many(source, [spec], bucketings=overrides)[attribute]

    def build_profile(
        self,
        source: DataSource,
        attribute: str,
        objective: Condition,
        *,
        presumptive: Condition | None = None,
        bucketing: Bucketing | None = None,
        label: str | None = None,
    ) -> BucketProfile:
        """One confidence/support profile (optionally with a §4.3 conjunct).

        With a ``presumptive`` conjunct the per-bucket population is
        restricted to tuples meeting it chunk-side (support stays measured
        against the full source size), matching
        :meth:`BucketProfile.from_relation` exactly.
        """
        if presumptive is None:
            counts = self.build_counts(
                source, attribute, objectives=[objective], bucketing=bucketing
            )
            return counts.profile(objective, label=label)
        return self.build_presumptive_profiles(
            source,
            attribute,
            objective,
            [presumptive],
            bucketing=bucketing,
            label=label,
        )[presumptive]

    def build_profiles(
        self,
        source: DataSource,
        attribute: str,
        objectives: Sequence[Condition],
        bucketing: Bucketing | None = None,
    ) -> dict[Condition, BucketProfile]:
        """Profiles for many objectives of one attribute from a single scan."""
        counts = self.build_counts(
            source, attribute, objectives=objectives, bucketing=bucketing
        )
        return {objective: counts.profile(objective) for objective in objectives}

    def build_average_profile(
        self,
        source: DataSource,
        attribute: str,
        target: str,
        bucketing: Bucketing | None = None,
    ) -> BucketProfile:
        """The §5 average-operator profile of ``target`` grouped by ``attribute``."""
        counts = self.build_counts(
            source, attribute, targets=[target], bucketing=bucketing
        )
        return counts.average_profile(target)

    # -- internals -------------------------------------------------------------

    def _payloads(
        self,
        source: DataSource,
        specs: Sequence[AttributeSpec],
        bucketings: Mapping[str, Bucketing],
    ) -> Iterator[list[tuple[np.ndarray, np.ndarray, np.ndarray | None, np.ndarray | None]]]:
        """Per-chunk kernel payloads: columns extracted, conditions evaluated.

        Condition masks are evaluated chunk-side here in the parent (they
        need the relation chunk); workers only ever see plain arrays.
        Columns, masks, and stacked matrices are cached per chunk, so a
        catalog where every attribute spec carries the same objectives
        evaluates each condition once per chunk (not once per attribute) and
        shares one mask matrix across the payload — pickle deduplicates the
        shared array when it ships to worker processes.
        """
        for chunk in source.chunks():
            columns: dict[str, np.ndarray] = {}
            mask_rows: dict[Condition, np.ndarray] = {}
            mask_stacks: dict[tuple[Condition, ...], np.ndarray | None] = {}
            weight_stacks: dict[tuple[str, ...], np.ndarray | None] = {}

            def column(name: str) -> np.ndarray:
                if name not in columns:
                    columns[name] = np.asarray(
                        chunk.numeric_column(name), dtype=np.float64
                    )
                return columns[name]

            def masks_for(objectives: tuple[Condition, ...]) -> np.ndarray | None:
                if objectives not in mask_stacks:
                    if not objectives:
                        mask_stacks[objectives] = None
                    else:
                        for objective in objectives:
                            if objective not in mask_rows:
                                mask_rows[objective] = np.asarray(
                                    objective.mask(chunk), dtype=bool
                                )
                        mask_stacks[objectives] = np.vstack(
                            [mask_rows[objective] for objective in objectives]
                        )
                return mask_stacks[objectives]

            def weights_for(targets: tuple[str, ...]) -> np.ndarray | None:
                if targets not in weight_stacks:
                    weight_stacks[targets] = (
                        np.vstack([column(target) for target in targets])
                        if targets
                        else None
                    )
                return weight_stacks[targets]

            yield [
                (
                    column(spec.attribute),
                    bucketings[spec.attribute].cuts,
                    masks_for(spec.objectives),
                    weights_for(spec.targets),
                )
                for spec in specs
            ]

    def _run_counting_pass(
        self,
        payloads: Iterator[list],
        specs: Sequence[AttributeSpec],
        bucketings: Mapping[str, Bucketing],
    ) -> list[ChunkCounts]:
        """Run the executor strategy and merge partials in chunk order."""
        totals = [
            ChunkCounts.zeros(
                bucketings[spec.attribute].num_buckets,
                num_masks=len(spec.objectives),
                num_weights=len(spec.targets),
            )
            for spec in specs
        ]

        def merge(parts: list[ChunkCounts]) -> None:
            for total, part in zip(totals, parts):
                total.merge(part)

        self.fold_payloads(payloads, _count_chunk_payload, merge)
        return totals

    def fold_payloads(self, payloads: Iterator, worker, merge) -> None:
        """Run ``worker`` over every payload under the executor strategy.

        This is the single executor implementation every pipeline counting
        pass — 1-D profiles, §4.3 presumptive profiles, and the 2-D grids of
        :class:`~repro.pipeline.grid.GridProfileBuilder` — runs on.
        ``worker`` must be a picklable module-level function taking one
        payload; ``merge`` folds each result in **chunk order**, whatever the
        executor, which is what keeps all executors bit-identical.

        * ``serial`` / ``streaming`` — count and fold one chunk at a time:
          only one chunk's data and partials are ever resident, so
          out-of-core scans stay bounded.
        * ``multiprocessing`` — fan chunks out to a ``ProcessPoolExecutor``
          with a bounded submission window (two payloads in flight per
          worker), consuming results oldest-first so the merge order equals
          the chunk order — which keeps even float accumulations (§5 bucket
          sums) identical to the serial executor.
        """
        if self._executor in ("serial", "streaming"):
            for payload in payloads:
                merge(worker(payload))
            return
        workers = self._max_workers or min(8, os.cpu_count() or 1)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            window: deque = deque()
            merged = 0
            try:
                for payload in payloads:
                    window.append(pool.submit(worker, payload))
                    if len(window) >= 2 * workers:
                        merge(window.popleft().result())
                        merged += 1
                while window:
                    merge(window.popleft().result())
                    merged += 1
            except BrokenExecutor as exc:
                raise ExecutorError(
                    "a multiprocessing counting worker died while processing "
                    f"chunk {merged} of the fold (out-of-memory kill or "
                    "crash); its partial counts are unrecoverable"
                ) from exc

    def build_presumptive_profiles(
        self,
        source: DataSource,
        attribute: str,
        objective: Condition,
        presumptives: Sequence[Condition],
        bucketing: Bucketing | None = None,
        label: str | None = None,
    ) -> dict[Condition, BucketProfile]:
        """§4.3 profiles for *every* candidate conjunct in one counting scan.

        The §4.3 reduction turns a presumptive conjunct ``C1`` into a pure
        change of counted quantities — ``u_i`` counts the bucket's tuples
        meeting ``C1`` and ``v_i`` those meeting ``C1 ∧ C2`` — so a whole
        catalog of candidate conjuncts is just more mask rows for the shared
        kernel: this method counts two mask rows (and one restricted-bounds
        row) per conjunct in a single scan of the source, instead of one
        dedicated scan per conjunct.  Support stays measured against the
        full source size, and each profile's value bounds come from the
        conjunct's own restricted population, exactly matching
        :meth:`BucketProfile.from_relation` with ``presumptive=``.
        """
        presumptives = list(presumptives)
        if not presumptives:
            return {}
        if self._fused:
            plan = ScanPlan()
            request_id = plan.add_presumptive(attribute, objective, presumptives)
            overrides = {attribute: bucketing} if bucketing is not None else None
            results = self.execute_plan(source, plan, bucketings=overrides)
            return results.presumptive_profiles(request_id, label=label)
        if bucketing is None:
            bucketing = self.sample_bucketings(source, [attribute])[attribute]
        cuts = bucketing.cuts

        def payloads() -> Iterator[tuple]:
            for chunk in source.chunks():
                values = np.asarray(
                    chunk.numeric_column(attribute), dtype=np.float64
                )
                objective_mask = np.asarray(objective.mask(chunk), dtype=bool)
                bound_masks = np.empty(
                    (len(presumptives), values.shape[0]), dtype=bool
                )
                masks = np.empty(
                    (2 * len(presumptives), values.shape[0]), dtype=bool
                )
                for row, presumptive in enumerate(presumptives):
                    base = np.asarray(presumptive.mask(chunk), dtype=bool)
                    bound_masks[row] = base
                    masks[2 * row] = base
                    masks[2 * row + 1] = base & objective_mask
                yield values, cuts, masks, bound_masks

        totals = ChunkCounts.zeros(
            bucketing.num_buckets,
            num_masks=2 * len(presumptives),
            num_bound_masks=len(presumptives),
        )
        self.fold_payloads(
            payloads(), _count_presumptive_payload, totals.merge
        )
        if totals.num_tuples == 0:
            raise PipelineError("the source contained no tuples")

        profiles: dict[Condition, BucketProfile] = {}
        for row, presumptive in enumerate(presumptives):
            sizes = totals.conditional[2 * row]
            keep = sizes > 0
            if not np.any(keep):
                raise PipelineError(
                    "no tuple satisfies the presumptive conjunct; "
                    "cannot build a profile"
                )
            profiles[presumptive] = BucketProfile(
                attribute=attribute,
                objective_label=label if label is not None else str(objective),
                sizes=sizes[keep].astype(np.float64),
                values=totals.conditional[2 * row + 1][keep].astype(np.float64),
                lows=totals.mask_lows[row][keep],
                highs=totals.mask_highs[row][keep],
                total=float(totals.num_tuples),
            )
        return profiles


