"""Pluggable data sources for the profile-construction pipeline.

Algorithm 3.1 is designed so the relation is only ever *scanned* — never
sorted or held in memory.  A :class:`DataSource` captures exactly that
contract: it can produce a fresh iterator of :class:`~repro.relation.Relation`
chunks any number of times (the pipeline needs two sequential scans: one to
sample the bucket boundaries, one to count).  Three implementations cover the
paper's deployment scenarios:

* :class:`RelationSource` — an in-memory relation, optionally served in
  chunks (the degenerate "fits in RAM" case);
* :class:`ChunkedSource` — wraps any factory of relation-chunk iterators
  (message queues, database cursors, generator pipelines);
* :class:`CSVSource` — out-of-core scanning of a CSV file via
  :func:`repro.relation.io.read_csv_chunks`, the closest analogue of the
  paper's database file on disk.

Chunks are small :class:`Relation` objects so objective
:class:`~repro.relation.conditions.Condition`\\ s evaluate on them unchanged;
every source yields the same tuples in the same order for the same data,
which is what makes pipeline results bit-identical across source types.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from pathlib import Path
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.exceptions import RelationError
from repro.relation.io import (
    DEFAULT_CHUNK_SIZE,
    read_csv_chunks,
    read_csv_first_chunk,
)
from repro.relation.relation import Relation
from repro.relation.schema import Attribute, Schema

__all__ = ["DataSource", "RelationSource", "ChunkedSource", "CSVSource"]


class DataSource(ABC):
    """A re-scannable stream of relation chunks with a stable schema.

    Implementations must return a *fresh* iterator from every
    :meth:`chunks` call — the profile pipeline normally folds a whole scan
    plan over **one** pass (boundary sampling with the counting payloads
    cached along the way), and re-scans to count only when the plan cache
    cannot hold a projection of the data: at most the two passes the
    paper's system makes over the database file.
    """

    @property
    @abstractmethod
    def schema(self) -> Schema:
        """Schema shared by every chunk of the stream."""

    @abstractmethod
    def chunks(self) -> Iterator[Relation]:
        """A fresh iterator over the data as relation chunks."""

    def scan(self, columns: Sequence[str] | None = None) -> Iterator[Relation]:
        """A fresh scan, optionally projected to the named columns.

        ``columns`` is a *hint*: sources that can parse or serve a column
        subset cheaply (``CSVSource``, ``RelationSource``) push the
        projection down, everything else may ignore it and yield full
        chunks — callers must select the columns they need from each chunk
        by name either way.  The default implementation ignores the hint.
        """
        return self.chunks()

    @property
    def in_memory(self) -> bool:
        """Whether :meth:`materialize` is free (no extra memory or scan)."""
        return False

    def materialize(self) -> Relation:
        """Concatenate every chunk into one in-memory relation.

        Out-of-core callers should avoid this (it defeats the point of the
        source); it exists so in-memory fast paths can accept any source.
        """
        result: Relation | None = None
        for chunk in self.chunks():
            result = chunk if result is None else result.concat(chunk)
        if result is None:
            return Relation.empty(self.schema)
        return result


class RelationSource(DataSource):
    """An in-memory relation served as one chunk (or fixed-size chunks).

    Parameters
    ----------
    relation:
        The relation to serve.
    chunk_size:
        When given, scans yield consecutive slices of at most this many
        tuples; ``None`` (the default) yields the whole relation as a single
        chunk with no copying.
    """

    def __init__(self, relation: Relation, chunk_size: int | None = None) -> None:
        if chunk_size is not None and chunk_size <= 0:
            raise RelationError("chunk_size must be positive")
        self._relation = relation
        self._chunk_size = chunk_size

    @property
    def relation(self) -> Relation:
        """The wrapped relation."""
        return self._relation

    @property
    def schema(self) -> Schema:
        return self._relation.schema

    @property
    def in_memory(self) -> bool:
        return True

    def materialize(self) -> Relation:
        return self._relation

    def chunks(self) -> Iterator[Relation]:
        if self._chunk_size is None:
            yield self._relation
            return
        total = self._relation.num_tuples
        for start in range(0, total, self._chunk_size):
            stop = min(start + self._chunk_size, total)
            yield self._relation.take(np.arange(start, stop))

    def scan(self, columns: Sequence[str] | None = None) -> Iterator[Relation]:
        if columns is None:
            return self.chunks()
        requested = set(columns)
        names = [name for name in self.schema.names() if name in requested]
        if len(names) == len(self.schema):
            return self.chunks()
        # Project once up front so chunked scans only ever copy the
        # requested columns.
        return RelationSource(
            self._relation.project(names), chunk_size=self._chunk_size
        ).chunks()


class ChunkedSource(DataSource):
    """A source backed by a factory of relation-chunk iterators.

    Parameters
    ----------
    factory:
        Zero-argument callable returning a fresh iterable of
        :class:`Relation` chunks each time it is called.
    schema:
        Schema of the chunks.  When omitted it is discovered by peeking at
        the first chunk of one factory invocation.  Every scanned chunk is
        validated against it.
    """

    def __init__(
        self,
        factory: Callable[[], Iterable[Relation]],
        schema: Schema | None = None,
    ) -> None:
        self._factory = factory
        self._schema = schema

    @classmethod
    def from_arrays(
        cls,
        factory: Callable[[], Iterable[tuple[np.ndarray, np.ndarray]]],
        attribute: str = "A",
        objective: str = "C",
    ) -> "ChunkedSource":
        """Adapt a ``(values, objective_mask)`` chunk factory to relation chunks.

        This is the chunk shape the pre-pipeline streaming API consumed; the
        adapter builds two-column relations (numeric ``attribute``, Boolean
        ``objective``) so the old data feeds the unified pipeline.
        """
        schema = Schema.of(Attribute.numeric(attribute), Attribute.boolean(objective))

        def relation_chunks() -> Iterator[Relation]:
            for values, mask in factory():
                yield Relation.from_columns(
                    schema,
                    {
                        attribute: np.asarray(values, dtype=np.float64).ravel(),
                        objective: np.asarray(mask, dtype=bool).ravel(),
                    },
                )

        return cls(relation_chunks, schema=schema)

    @property
    def schema(self) -> Schema:
        if self._schema is None:
            iterator = iter(self._factory())
            try:
                first = next(iterator)
            except StopIteration as exc:
                raise RelationError(
                    "cannot infer the schema of an empty chunked source; "
                    "pass schema= explicitly"
                ) from exc
            self._schema = first.schema
        return self._schema

    def chunks(self) -> Iterator[Relation]:
        schema = self.schema
        for chunk in self._factory():
            if chunk.schema != schema:
                raise RelationError(
                    "chunked source produced a chunk with a different schema"
                )
            yield chunk


class CSVSource(DataSource):
    """Out-of-core scanning of a CSV file in bounded-size chunks.

    Parameters
    ----------
    path:
        CSV file with a header row (as written by
        :func:`repro.relation.io.write_csv`).
    schema:
        Optional explicit schema.  When omitted it is inferred from the
        first chunk of the file and then pinned, so every scan of this
        source parses identically; pass an explicit schema for files whose
        early rows are not representative (e.g. a 0/1 column that later
        holds other numbers) —
        :func:`repro.relation.io.infer_csv_schema` derives one from the
        whole file in a single bounded-memory scan.
    chunk_size:
        Maximum tuples per chunk (bounds the resident memory of a scan).
    fast:
        ``False`` disables the ``np.loadtxt`` block tokenizer and parses
        every scan through the legacy ``csv.reader`` path (the benchmarks
        use it to time the pre-fast-path configuration verbatim; results
        are identical either way).
    """

    def __init__(
        self,
        path: str | Path,
        schema: Schema | None = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        fast: bool = True,
    ) -> None:
        if chunk_size <= 0:
            raise RelationError("chunk_size must be positive")
        self._path = Path(path)
        if not self._path.exists():
            raise RelationError(f"CSV file {self._path} does not exist")
        self._schema = schema
        self._chunk_size = int(chunk_size)
        self._fast = bool(fast)
        # First parsed chunk kept after fast schema inference (one chunk of
        # bounded memory) so the next scan resumes after it instead of
        # parsing it again.
        self._first_chunk: tuple[Relation, int] | None = None

    @property
    def path(self) -> Path:
        """The CSV file being scanned."""
        return self._path

    @property
    def chunk_size(self) -> int:
        """Maximum tuples per chunk."""
        return self._chunk_size

    @property
    def schema(self) -> Schema:
        if self._schema is None:
            if self._fast:
                self._first_chunk = read_csv_first_chunk(
                    self._path, chunk_size=self._chunk_size
                )
            if self._first_chunk is not None:
                self._schema = self._first_chunk[0].schema
                return self._schema
            for chunk in read_csv_chunks(
                self._path, chunk_size=self._chunk_size, fast=self._fast
            ):
                self._schema = chunk.schema
                break
            else:
                raise RelationError(f"CSV file {self._path} contains no data rows")
        return self._schema

    def chunks(self) -> Iterator[Relation]:
        return self.scan()

    def scan(self, columns: Sequence[str] | None = None) -> Iterator[Relation]:
        schema = self.schema
        if self._first_chunk is None:
            return read_csv_chunks(
                self._path,
                schema=schema,
                chunk_size=self._chunk_size,
                columns=columns,
                fast=self._fast,
            )
        first, lines = self._first_chunk

        def resumed() -> Iterator[Relation]:
            if columns is None:
                yield first
            else:
                requested = set(columns)
                yield first.project(
                    [name for name in schema.names() if name in requested]
                )
            yield from read_csv_chunks(
                self._path,
                schema=schema,
                chunk_size=self._chunk_size,
                columns=columns,
                fast=self._fast,
                skip_lines=lines,
            )

        return resumed()
