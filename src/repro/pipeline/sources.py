"""Pluggable data sources for the profile-construction pipeline.

Algorithm 3.1 is designed so the relation is only ever *scanned* — never
sorted or held in memory.  A :class:`DataSource` captures exactly that
contract: it can produce a fresh iterator of :class:`~repro.relation.Relation`
chunks any number of times (the pipeline needs two sequential scans: one to
sample the bucket boundaries, one to count).  Three implementations cover the
paper's deployment scenarios:

* :class:`RelationSource` — an in-memory relation, optionally served in
  chunks (the degenerate "fits in RAM" case);
* :class:`ChunkedSource` — wraps any factory of relation-chunk iterators
  (message queues, database cursors, generator pipelines);
* :class:`CSVSource` — out-of-core scanning of a CSV file via
  :func:`repro.relation.io.read_csv_chunks`, the closest analogue of the
  paper's database file on disk;
* :class:`NpyDirectorySource` — a zero-copy columnar layout: one
  memory-mapped ``.npy`` file per column (written by
  :func:`write_columnar`), scans yielding dtype-stable slice *views*
  straight into the counting kernels with no per-chunk parse or copy;
* :class:`ParquetSource` — Arrow/Parquet files through the optional
  ``pyarrow`` dependency, with per-column projection pushed into the
  Parquet reader.

Chunks are small :class:`Relation` objects so objective
:class:`~repro.relation.conditions.Condition`\\ s evaluate on them unchanged;
every source yields the same tuples in the same order for the same data,
which is what makes pipeline results bit-identical across source types.
"""

from __future__ import annotations

import hashlib
import importlib.util
import json
import os
import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import RelationError, SourceChangedError
from repro.relation.io import (
    DEFAULT_CHUNK_SIZE,
    read_csv_chunks,
    read_csv_first_chunk,
)
from repro.relation.relation import Relation
from repro.relation.schema import Attribute, AttributeKind, Schema

__all__ = [
    "DataSource",
    "RelationSource",
    "ChunkedSource",
    "CSVSource",
    "NpyDirectorySource",
    "ParquetSource",
    "SourceFingerprint",
    "fingerprint_relation",
    "write_columnar",
    "HAVE_PYARROW",
]

#: Whether the optional ``pyarrow`` dependency is importable (probed without
#: importing it, so merely loading this module never pays Arrow's startup).
HAVE_PYARROW = importlib.util.find_spec("pyarrow") is not None


@dataclass(frozen=True)
class SourceFingerprint:
    """Content identity of (a prefix of) a data source.

    ``token`` is a digest of the first ``length`` units of the source's
    data, where the *unit* is source-defined — tuples for in-memory and
    chunked sources, bytes for CSV files — but always the same unit the
    source's :meth:`DataSource.scan_tail` resumes by.  Because the token
    covers exactly the leading ``length`` units, an append-only source keeps
    its old fingerprints valid: re-fingerprinting the grown source at the
    stored prefix (``source.fingerprint(prefix=stored.length)``) must
    reproduce the stored token bit for bit, which is how the profile store
    distinguishes "same data, grown at the tail" from "different data".
    """

    token: str
    length: int


def fingerprint_relation(
    relation: Relation, prefix: int | None = None
) -> SourceFingerprint:
    """Fingerprint the first ``prefix`` tuples of an in-memory relation.

    The digest covers the schema (names and kinds, so a re-typed column
    never collides) plus the raw bytes of every column's leading values.
    Shared by :meth:`RelationSource.fingerprint` and usable as the
    fingerprint hook of a :class:`ChunkedSource` whose chunks are backed by
    in-memory relations.
    """
    total = relation.num_tuples
    span = total if prefix is None else min(int(prefix), total)
    digest = hashlib.sha256()
    for attribute in relation.schema:
        digest.update(
            repr((attribute.name, attribute.kind.value)).encode("utf-8")
        )
    for name in relation.schema.names():
        column = np.ascontiguousarray(relation.column(name)[:span])
        digest.update(column.tobytes())
    return SourceFingerprint(token=digest.hexdigest(), length=span)


class DataSource(ABC):
    """A re-scannable stream of relation chunks with a stable schema.

    Implementations must return a *fresh* iterator from every
    :meth:`chunks` call — the profile pipeline normally folds a whole scan
    plan over **one** pass (boundary sampling with the counting payloads
    cached along the way), and re-scans to count only when the plan cache
    cannot hold a projection of the data: at most the two passes the
    paper's system makes over the database file.
    """

    @property
    @abstractmethod
    def schema(self) -> Schema:
        """Schema shared by every chunk of the stream."""

    @abstractmethod
    def chunks(self) -> Iterator[Relation]:
        """A fresh iterator over the data as relation chunks."""

    def scan(self, columns: Sequence[str] | None = None) -> Iterator[Relation]:
        """A fresh scan, optionally projected to the named columns.

        ``columns`` is a *hint*: sources that can parse or serve a column
        subset cheaply (``CSVSource``, ``RelationSource``) push the
        projection down, everything else may ignore it and yield full
        chunks — callers must select the columns they need from each chunk
        by name either way.  The default implementation ignores the hint.
        """
        return self.chunks()

    def fingerprint(self, prefix: int | None = None) -> SourceFingerprint | None:
        """Content fingerprint of the source's first ``prefix`` units.

        ``None`` (the default) means the source cannot be fingerprinted —
        the profile store then never caches it.  Implementations must be
        cheap relative to a scan (raw bytes / in-memory hashing, never a
        parse) and **append-stable**: fingerprinting a grown source at the
        old prefix reproduces the old token exactly.  The unit of ``prefix``
        and of the returned ``length`` is source-defined but must match what
        :meth:`scan_tail` resumes by.
        """
        return None

    def scan_tail(
        self, start: int, columns: Sequence[str] | None = None
    ) -> Iterator[Relation]:
        """A scan of only the data after marker ``start``.

        ``start`` is in the units of :meth:`fingerprint` ``length`` (tuples
        by default).  This is the append contract of the profile store: on
        an append-only source, counting ``scan_tail(snapshot.length)`` and
        merging into the stored partials equals a full re-count with the
        same (frozen) bucket boundaries.  The default implementation scans
        from the top and drops the first ``start`` tuples — correct for any
        source, but it still touches the head; sources with cheap random
        access (:class:`RelationSource` slices, :class:`CSVSource` byte
        seeks) override it to touch **only** the tail.
        """
        if start < 0:
            raise RelationError("scan_tail start must be non-negative")

        def tail() -> Iterator[Relation]:
            remaining = int(start)
            for chunk in self.scan(columns):
                if remaining >= chunk.num_tuples:
                    remaining -= chunk.num_tuples
                    continue
                if remaining:
                    yield chunk.take(np.arange(remaining, chunk.num_tuples))
                    remaining = 0
                else:
                    yield chunk

        return tail()

    def scan_span(
        self, start: int, stop: int, columns: Sequence[str] | None = None
    ) -> Iterator[Relation]:
        """A scan of only the data in ``[start, stop)``.

        ``start``/``stop`` are in the units of :meth:`fingerprint` ``length``
        (tuples by default, bytes for :class:`CSVSource`) — the same units
        :meth:`scan_tail` resumes by, so a shard plane can describe a
        partition of the source as fingerprint-stamped spans.  Scanning
        every span of a partition in span order yields exactly the tuples of
        one full scan, each exactly once.  The default implementation scans
        from the top and keeps only the window — correct for any source;
        sources with cheap random access override it to touch only the span.
        """
        if start < 0:
            raise RelationError("scan_span start must be non-negative")
        if stop < start:
            raise RelationError("scan_span stop must be at least start")

        def window() -> Iterator[Relation]:
            remaining = int(stop) - int(start)
            for chunk in self.scan_tail(start, columns):
                if remaining <= 0:
                    return
                if chunk.num_tuples <= remaining:
                    remaining -= chunk.num_tuples
                    yield chunk
                else:
                    yield chunk.take(np.arange(remaining))
                    return

        return window()

    @property
    def in_memory(self) -> bool:
        """Whether :meth:`materialize` is free (no extra memory or scan)."""
        return False

    def materialize(self) -> Relation:
        """Concatenate every chunk into one in-memory relation.

        Out-of-core callers should avoid this (it defeats the point of the
        source); it exists so in-memory fast paths can accept any source.
        """
        result: Relation | None = None
        for chunk in self.chunks():
            result = chunk if result is None else result.concat(chunk)
        if result is None:
            return Relation.empty(self.schema)
        return result


class RelationSource(DataSource):
    """An in-memory relation served as one chunk (or fixed-size chunks).

    Parameters
    ----------
    relation:
        The relation to serve.
    chunk_size:
        When given, scans yield consecutive slices of at most this many
        tuples; ``None`` (the default) yields the whole relation as a single
        chunk with no copying.
    """

    def __init__(self, relation: Relation, chunk_size: int | None = None) -> None:
        if chunk_size is not None and chunk_size <= 0:
            raise RelationError("chunk_size must be positive")
        self._relation = relation
        self._chunk_size = chunk_size

    @property
    def relation(self) -> Relation:
        """The wrapped relation."""
        return self._relation

    @property
    def schema(self) -> Schema:
        return self._relation.schema

    @property
    def in_memory(self) -> bool:
        return True

    def materialize(self) -> Relation:
        return self._relation

    def chunks(self) -> Iterator[Relation]:
        if self._chunk_size is None:
            yield self._relation
            return
        total = self._relation.num_tuples
        for start in range(0, total, self._chunk_size):
            stop = min(start + self._chunk_size, total)
            yield self._relation.take(np.arange(start, stop))

    def scan(self, columns: Sequence[str] | None = None) -> Iterator[Relation]:
        if columns is None:
            return self.chunks()
        requested = set(columns)
        names = [name for name in self.schema.names() if name in requested]
        if len(names) == len(self.schema):
            return self.chunks()
        # Project once up front so chunked scans only ever copy the
        # requested columns.
        return RelationSource(
            self._relation.project(names), chunk_size=self._chunk_size
        ).chunks()

    def fingerprint(self, prefix: int | None = None) -> SourceFingerprint:
        """Tuple-prefix digest of the in-memory data (memory-speed, no scan)."""
        return fingerprint_relation(self._relation, prefix)

    def scan_tail(
        self, start: int, columns: Sequence[str] | None = None
    ) -> Iterator[Relation]:
        """Slice the tail directly — the head is never copied or chunked."""
        if start < 0:
            raise RelationError("scan_tail start must be non-negative")
        total = self._relation.num_tuples
        start = min(int(start), total)
        tail = self._relation.take(np.arange(start, total))
        return RelationSource(tail, chunk_size=self._chunk_size).scan(columns)

    def scan_span(
        self, start: int, stop: int, columns: Sequence[str] | None = None
    ) -> Iterator[Relation]:
        """Slice the span directly — tuples outside it are never touched."""
        if start < 0:
            raise RelationError("scan_span start must be non-negative")
        if stop < start:
            raise RelationError("scan_span stop must be at least start")
        total = self._relation.num_tuples
        start = min(int(start), total)
        stop = min(int(stop), total)
        window = self._relation.take(np.arange(start, stop))
        return RelationSource(window, chunk_size=self._chunk_size).scan(columns)


class ChunkedSource(DataSource):
    """A source backed by a factory of relation-chunk iterators.

    Parameters
    ----------
    factory:
        Zero-argument callable returning a fresh iterable of
        :class:`Relation` chunks each time it is called.
    schema:
        Schema of the chunks.  When omitted it is discovered by peeking at
        the first chunk of one factory invocation.  Every scanned chunk is
        validated against it.
    fingerprint:
        Optional fingerprint hook ``(prefix) -> SourceFingerprint`` enabling
        the profile store for this source.  A generic chunk factory cannot
        be fingerprinted from the outside (the pipeline has no idea what
        backs it), so the owner of the data supplies the identity — e.g.
        :func:`fingerprint_relation` over the backing relation for
        list-of-chunks feeds, or a queue's own offset/epoch bookkeeping.
        The hook's length unit is tuples (matching the default
        :meth:`DataSource.scan_tail`).
    """

    def __init__(
        self,
        factory: Callable[[], Iterable[Relation]],
        schema: Schema | None = None,
        fingerprint: Callable[[int | None], SourceFingerprint] | None = None,
    ) -> None:
        self._factory = factory
        self._schema = schema
        self._fingerprint = fingerprint

    @classmethod
    def from_arrays(
        cls,
        factory: Callable[[], Iterable[tuple[np.ndarray, np.ndarray]]],
        attribute: str = "A",
        objective: str = "C",
    ) -> "ChunkedSource":
        """Adapt a ``(values, objective_mask)`` chunk factory to relation chunks.

        This is the chunk shape the pre-pipeline streaming API consumed; the
        adapter builds two-column relations (numeric ``attribute``, Boolean
        ``objective``) so the old data feeds the unified pipeline.
        """
        schema = Schema.of(Attribute.numeric(attribute), Attribute.boolean(objective))

        def relation_chunks() -> Iterator[Relation]:
            for values, mask in factory():
                yield Relation.from_columns(
                    schema,
                    {
                        attribute: np.asarray(values, dtype=np.float64).ravel(),
                        objective: np.asarray(mask, dtype=bool).ravel(),
                    },
                )

        return cls(relation_chunks, schema=schema)

    @property
    def schema(self) -> Schema:
        if self._schema is None:
            iterator = iter(self._factory())
            try:
                first = next(iterator)
            except StopIteration as exc:
                raise RelationError(
                    "cannot infer the schema of an empty chunked source; "
                    "pass schema= explicitly"
                ) from exc
            self._schema = first.schema
        return self._schema

    def chunks(self) -> Iterator[Relation]:
        schema = self.schema
        for chunk in self._factory():
            if chunk.schema != schema:
                raise RelationError(
                    "chunked source produced a chunk with a different schema"
                )
            yield chunk

    def fingerprint(self, prefix: int | None = None) -> SourceFingerprint | None:
        if self._fingerprint is None:
            return None
        return self._fingerprint(prefix)


class _DigestMemo:
    """Bounded process-wide digest memo, safe under concurrent fingerprints.

    The service plane fingerprints sources from many threads at once; a bare
    dict here had two races: N cold threads all hashing the same span (a
    stampede that multiplies the most expensive I/O in a request by the
    thread count) and unlocked mutation of the dict itself.  This memo takes
    one lock around all bookkeeping and runs per-key **single-flight**:
    the first thread to miss becomes the leader and computes the digest
    outside the lock, every other thread parks on a per-key event and reads
    the leader's published token.  A leader that raises wakes the waiters,
    and the first of them retries as the new leader — an I/O error never
    wedges the key.  Eviction stays bounded FIFO.
    """

    def __init__(self, max_entries: int) -> None:
        self._entries: dict[tuple, str] = {}
        self._max_entries = int(max_entries)
        self._lock = threading.Lock()
        self._inflight: dict[tuple, threading.Event] = {}

    def get_or_compute(self, key: tuple, compute: Callable[[], str]) -> str:
        while True:
            with self._lock:
                token = self._entries.get(key)
                if token is not None:
                    return token
                event = self._inflight.get(key)
                if event is None:
                    event = threading.Event()
                    self._inflight[key] = event
                    leader = True
                else:
                    leader = False
            if not leader:
                event.wait()
                continue  # published, or the leader failed: re-check
            try:
                token = compute()
            except BaseException:
                with self._lock:
                    self._inflight.pop(key, None)
                event.set()
                raise
            with self._lock:
                while len(self._entries) >= self._max_entries:
                    self._entries.pop(next(iter(self._entries)))
                self._entries[key] = token
                self._inflight.pop(key, None)
            event.set()
            return token

    def clear(self) -> None:
        """Drop every memoized digest (test isolation only)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


#: Process-wide memo of CSV prefix digests keyed by (resolved path, size,
#: mtime_ns, span).  Any in-place modification changes size or mtime, so a
#: stale hit would need a same-length rewrite inside one mtime tick — the
#: standard stat-cache tradeoff.  Bounded FIFO eviction, thread-safe with
#: per-key single-flight (see :class:`_DigestMemo`).
_CSV_DIGEST_CACHE = _DigestMemo(max_entries=256)


class CSVSource(DataSource):
    """Out-of-core scanning of a CSV file in bounded-size chunks.

    Parameters
    ----------
    path:
        CSV file with a header row (as written by
        :func:`repro.relation.io.write_csv`).
    schema:
        Optional explicit schema.  When omitted it is inferred from the
        first chunk of the file and then pinned, so every scan of this
        source parses identically; pass an explicit schema for files whose
        early rows are not representative (e.g. a 0/1 column that later
        holds other numbers) —
        :func:`repro.relation.io.infer_csv_schema` derives one from the
        whole file in a single bounded-memory scan.
    chunk_size:
        Maximum tuples per chunk (bounds the resident memory of a scan).
    fast:
        ``False`` disables the ``np.loadtxt`` block tokenizer and parses
        every scan through the legacy ``csv.reader`` path (the benchmarks
        use it to time the pre-fast-path configuration verbatim; results
        are identical either way).
    """

    def __init__(
        self,
        path: str | Path,
        schema: Schema | None = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        fast: bool = True,
    ) -> None:
        if chunk_size <= 0:
            raise RelationError("chunk_size must be positive")
        self._path = Path(path)
        if not self._path.exists():
            raise RelationError(f"CSV file {self._path} does not exist")
        self._schema = schema
        self._chunk_size = int(chunk_size)
        self._fast = bool(fast)
        # First parsed chunk kept after fast schema inference (one chunk of
        # bounded memory) so the next scan resumes after it instead of
        # parsing it again.
        self._first_chunk: tuple[Relation, int] | None = None

    @property
    def path(self) -> Path:
        """The CSV file being scanned."""
        return self._path

    @property
    def chunk_size(self) -> int:
        """Maximum tuples per chunk."""
        return self._chunk_size

    @property
    def schema(self) -> Schema:
        if self._schema is None:
            if self._fast:
                self._first_chunk = read_csv_first_chunk(
                    self._path, chunk_size=self._chunk_size
                )
            if self._first_chunk is not None:
                self._schema = self._first_chunk[0].schema
                return self._schema
            for chunk in read_csv_chunks(
                self._path, chunk_size=self._chunk_size, fast=self._fast
            ):
                self._schema = chunk.schema
                break
            else:
                raise RelationError(f"CSV file {self._path} contains no data rows")
        return self._schema

    def chunks(self) -> Iterator[Relation]:
        return self.scan()

    def _guarded(self, chunks: Iterator[Relation]) -> Iterator[Relation]:
        """Detect the file shrinking *mid-scan* as a typed error.

        A file truncated below its size at scan start invalidates every
        fingerprint taken of the missing bytes; depending on where the
        reader was, the raw symptom is an arbitrary parse error — or, worse,
        a silent early EOF that would under-count without complaint.  Both
        shapes are converted to :class:`~repro.exceptions.SourceChangedError`
        by re-stat-ing the file when the scan errors *and* when it
        completes.  Growth (an append-only feed) stays legal.
        """
        expected = self._path.stat().st_size

        def shrunk() -> int | None:
            try:
                size = self._path.stat().st_size
            except OSError:
                return 0
            return size if size < expected else None

        def guarded() -> Iterator[Relation]:
            try:
                yield from chunks
            except (RelationError, OSError, ValueError) as exc:
                size = shrunk()
                if size is not None:
                    raise SourceChangedError(
                        f"CSV file {self._path} shrank mid-scan from "
                        f"{expected} to {size} bytes; the scanned prefix no "
                        "longer exists"
                    ) from exc
                raise
            size = shrunk()
            if size is not None:
                raise SourceChangedError(
                    f"CSV file {self._path} shrank mid-scan from {expected} "
                    f"to {size} bytes; the scan ended early on truncated data"
                )

        return guarded()

    def scan(self, columns: Sequence[str] | None = None) -> Iterator[Relation]:
        schema = self.schema
        if self._first_chunk is None:
            return self._guarded(
                read_csv_chunks(
                    self._path,
                    schema=schema,
                    chunk_size=self._chunk_size,
                    columns=columns,
                    fast=self._fast,
                )
            )
        first, lines = self._first_chunk

        def resumed() -> Iterator[Relation]:
            if columns is None:
                yield first
            else:
                requested = set(columns)
                yield first.project(
                    [name for name in schema.names() if name in requested]
                )
            yield from read_csv_chunks(
                self._path,
                schema=schema,
                chunk_size=self._chunk_size,
                columns=columns,
                fast=self._fast,
                skip_lines=lines,
            )

        return self._guarded(resumed())

    def fingerprint(self, prefix: int | None = None) -> SourceFingerprint:
        """Digest of the file's first ``prefix`` bytes (raw I/O, no parse).

        The unit is **bytes** (``length`` is the file size), matching the
        byte-offset resume of :meth:`scan_tail`.  Appending rows leaves
        every earlier byte in place, so re-fingerprinting the grown file at
        the stored prefix reproduces the stored token — the append-stability
        the profile store relies on.

        Digests are memoized process-wide keyed by ``(path, size, mtime,
        span)``, so a warm store run — which fingerprints the same unchanged
        file from several code paths (schema lookup, serve, prefix checks)
        — hashes each span once, not once per caller.
        """
        stat = self._path.stat()
        size = stat.st_size
        span = size if prefix is None else min(int(prefix), size)
        key = (str(self._path.resolve()), size, stat.st_mtime_ns, span)

        def compute() -> str:
            digest = hashlib.sha256()
            with self._path.open("rb") as handle:
                remaining = span
                while remaining > 0:
                    block = handle.read(min(remaining, 1 << 20))
                    if not block:
                        break
                    digest.update(block)
                    remaining -= len(block)
            return digest.hexdigest()

        token = _CSV_DIGEST_CACHE.get_or_compute(key, compute)
        return SourceFingerprint(token=token, length=span)

    def scan_tail(
        self, start: int, columns: Sequence[str] | None = None
    ) -> Iterator[Relation]:
        """Parse only the rows after byte offset ``start`` (O(1) seek).

        ``start`` must be a fingerprint length of an earlier snapshot of the
        same file — i.e. a position just past a newline — so the resumed
        parse sees whole rows.  A ``start`` inside a line (the file was not
        grown append-only, or the snapshot was taken of a file without a
        trailing newline) raises :class:`~repro.exceptions.RelationError`
        rather than mis-parsing.
        """
        if start < 0:
            raise RelationError("scan_tail start must be non-negative")
        if start == 0:
            # No snapshot precedes the tail: the "tail" is the whole file
            # (a real CSV fingerprint is never shorter than its header).
            return self.scan(columns)
        size = self._path.stat().st_size
        if start >= size:
            return iter(())
        if start > 0:
            with self._path.open("rb") as handle:
                handle.seek(start - 1)
                if handle.read(1) != b"\n":
                    raise RelationError(
                        f"tail resume offset {start} of {self._path} does not "
                        "sit on a line boundary; the file is not an "
                        "append-only continuation of the snapshot"
                    )
        return read_csv_chunks(
            self._path,
            schema=self.schema,
            chunk_size=self._chunk_size,
            columns=columns,
            fast=self._fast,
            start_offset=start,
        )

    def data_start(self) -> int:
        """Byte offset of the first data row (one past the header newline)."""
        with self._path.open("rb") as handle:
            handle.readline()
            return handle.tell()

    def scan_span(
        self, start: int, stop: int, columns: Sequence[str] | None = None
    ) -> Iterator[Relation]:
        """Parse only the rows of byte span ``[start, stop)`` (O(1) seek).

        Both offsets must sit on line boundaries — :func:`csv_byte_spans`
        in :mod:`repro.shard.descriptors` produces exactly such partitions —
        and ``start`` must be at or past the first data row.  A ``start``
        inside a line raises :class:`~repro.exceptions.RelationError` rather
        than mis-parsing; a file that shrinks mid-span raises
        :class:`~repro.exceptions.SourceChangedError`.
        """
        if start < 0:
            raise RelationError("scan_span start must be non-negative")
        if stop < start:
            raise RelationError("scan_span stop must be at least start")
        size = self._path.stat().st_size
        stop = min(int(stop), size)
        if start >= stop:
            return iter(())
        with self._path.open("rb") as handle:
            handle.readline()
            data_start = handle.tell()
            if start < data_start:
                raise RelationError(
                    f"span start {start} of {self._path} sits inside the "
                    "header row"
                )
            handle.seek(start - 1)
            if handle.read(1) != b"\n":
                raise RelationError(
                    f"span start {start} of {self._path} does not sit on a "
                    "line boundary"
                )
            if stop < size:
                handle.seek(stop - 1)
                if handle.read(1) != b"\n":
                    raise RelationError(
                        f"span stop {stop} of {self._path} does not sit on a "
                        "line boundary"
                    )
        return self._guarded(
            read_csv_chunks(
                self._path,
                schema=self.schema,
                chunk_size=self._chunk_size,
                columns=columns,
                fast=self._fast,
                start_offset=start,
                stop_offset=stop,
            )
        )


#: Process-wide memo of columnar prefix digests keyed by the source's pinned
#: file identities plus the span.  Same stat-cache tradeoff (and the same
#: bounded FIFO eviction + per-key single-flight) as the CSV digest cache.
_COLUMNAR_DIGEST_CACHE = _DigestMemo(max_entries=256)

#: Manifest file naming the column order and kinds of a columnar directory.
COLUMNAR_MANIFEST = "columns.json"

#: Rows hashed per block when fingerprinting a columnar source (bounds the
#: resident memory of a digest over a memory-mapped column).
_COLUMNAR_DIGEST_BLOCK_ROWS = 1 << 20


def _canonical_dtype(kind: AttributeKind) -> np.dtype:
    """The dtype relation columns carry: float64 numeric, bool Boolean."""
    return np.dtype(bool) if kind is AttributeKind.BOOLEAN else np.dtype(np.float64)


def write_columnar(
    relation: Relation, directory: str | Path, append: bool = False
) -> Path:
    """Write (or append) a relation as a column directory of ``.npy`` files.

    The layout is one ``<name>.npy`` per column in the relation's canonical
    dtypes (float64 numeric, bool Boolean) plus a ``columns.json`` manifest
    pinning the attribute order and kinds.  ``append=True`` requires an
    existing directory with an identical schema and rewrites each column
    file with the new rows concatenated — the leading values are preserved
    bit for bit, so fingerprints taken before the append stay valid (the
    columnar fingerprint hashes array *values*, never the ``.npy`` file
    bytes, precisely because a rewrite changes the header).

    Every rewrite lands via a temporary file and ``os.replace``, so readers
    that already memory-mapped the old file keep their consistent snapshot
    and a crash mid-write never corrupts the directory.
    """
    directory = Path(directory)
    manifest_path = directory / COLUMNAR_MANIFEST
    if append:
        if not manifest_path.exists():
            raise RelationError(
                f"cannot append to {directory}: no {COLUMNAR_MANIFEST} manifest "
                "(write the directory first with append=False)"
            )
        existing = NpyDirectorySource(directory)
        if existing.schema != relation.schema:
            raise RelationError(
                f"cannot append to {directory}: schema mismatch with the "
                "existing column directory"
            )
    directory.mkdir(parents=True, exist_ok=True)
    for attribute in relation.schema:
        dtype = _canonical_dtype(attribute.kind)
        column = np.ascontiguousarray(relation.column(attribute.name), dtype=dtype)
        if append:
            head = np.ascontiguousarray(
                existing._column(attribute.name), dtype=dtype
            )
            column = np.concatenate([head, column])
        target = directory / f"{attribute.name}.npy"
        # np.save appends ".npy" to names without the suffix, so the
        # temporary must end with it for the replace to find the file.
        temporary = directory / f".{attribute.name}.tmp.npy"
        np.save(temporary, column)
        os.replace(temporary, target)
    if not append:
        manifest = {
            "columns": [
                [attribute.name, attribute.kind.value]
                for attribute in relation.schema
            ]
        }
        temporary = directory / (COLUMNAR_MANIFEST + ".tmp")
        temporary.write_text(json.dumps(manifest, indent=2), encoding="utf-8")
        os.replace(temporary, manifest_path)
    return directory


class NpyDirectorySource(DataSource):
    """Zero-copy scanning of a memory-mapped ``.npy`` column directory.

    Parameters
    ----------
    path:
        Either a directory written by :func:`write_columnar` (one
        ``<name>.npy`` per column plus a ``columns.json`` manifest) or a
        single ``.npz`` archive (column order and dtypes taken from the
        archive; loaded into memory, a convenience rather than the
        zero-copy path).
    chunk_size:
        Maximum tuples per chunk.  Chunks are raw slice *views* of the
        memory-mapped columns — no parse, no copy — handed to the counting
        kernels dtype-stable, so a scan's only data movement is the page
        cache faulting mapped pages in.

    The source pins its data at open time: columns are memory-mapped once,
    and :meth:`fingerprint` hashes those pinned arrays, so a directory
    rewritten behind an open source keeps serving (and fingerprinting) the
    snapshot it opened.  Open a fresh source to observe appended rows.
    :func:`write_columnar` grows a directory by *replacing* each column
    file (new inode), which leaves pinned mappings intact — but a column
    file truncated or mutated **in place** (same inode) changes the bytes
    under the live mapping, so every scan and fingerprint re-stats the
    pinned files first and raises
    :class:`~repro.exceptions.SourceChangedError` when a pinned inode's
    size or mtime moved (an in-place rewrite inside one mtime tick is the
    standard stat-cache blind spot).

    The fingerprint unit is **rows**, and the digest scheme is exactly that
    of :func:`fingerprint_relation` over the delivered values — so the same
    data fingerprints identically whether it is served from memory or from
    a column directory, and appends (which rewrite the ``.npy`` header)
    never invalidate a stored prefix token.
    """

    def __init__(
        self, path: str | Path, chunk_size: int = DEFAULT_CHUNK_SIZE
    ) -> None:
        if chunk_size <= 0:
            raise RelationError("chunk_size must be positive")
        self._path = Path(path)
        self._chunk_size = int(chunk_size)
        names_kinds: list[tuple[str, AttributeKind]] = []
        arrays: list[np.ndarray] = []
        stat_keys: list[tuple[str, int, int]] = []
        pinned: list[tuple[Path, int, int, int]] = []
        if self._path.is_dir():
            manifest_path = self._path / COLUMNAR_MANIFEST
            if not manifest_path.exists():
                raise RelationError(
                    f"column directory {self._path} has no {COLUMNAR_MANIFEST} "
                    "manifest"
                )
            try:
                manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
                entries = [
                    (str(name), AttributeKind(str(kind)))
                    for name, kind in manifest["columns"]
                ]
            except (KeyError, TypeError, ValueError) as exc:
                raise RelationError(
                    f"column directory {self._path} has a malformed "
                    f"{COLUMNAR_MANIFEST} manifest"
                ) from exc
            for name, kind in entries:
                column_path = self._path / f"{name}.npy"
                if not column_path.exists():
                    raise RelationError(
                        f"column directory {self._path} is missing "
                        f"{column_path.name}"
                    )
                stat = column_path.stat()
                stat_keys.append(
                    (str(column_path.resolve()), stat.st_size, stat.st_mtime_ns)
                )
                pinned.append(
                    (column_path, stat.st_ino, stat.st_size, stat.st_mtime_ns)
                )
                arrays.append(np.load(column_path, mmap_mode="r"))
                names_kinds.append((name, kind))
        elif self._path.suffix == ".npz" and self._path.exists():
            stat = self._path.stat()
            stat_keys.append(
                (str(self._path.resolve()), stat.st_size, stat.st_mtime_ns)
            )
            with np.load(self._path) as archive:
                for name in archive.files:
                    column = archive[name]
                    kind = (
                        AttributeKind.BOOLEAN
                        if column.dtype == np.dtype(bool)
                        else AttributeKind.NUMERIC
                    )
                    arrays.append(column)
                    names_kinds.append((name, kind))
        else:
            raise RelationError(
                f"columnar path {self._path} is neither a column directory "
                "nor a .npz archive"
            )
        if not arrays:
            raise RelationError(f"columnar source {self._path} has no columns")
        num_rows: int | None = None
        for (name, kind), column in zip(names_kinds, arrays):
            if column.ndim != 1:
                raise RelationError(
                    f"columnar source {self._path}: column {name!r} is "
                    f"{column.ndim}-dimensional, expected 1-D"
                )
            if num_rows is None:
                num_rows = int(column.shape[0])
            elif int(column.shape[0]) != num_rows:
                raise RelationError(
                    f"columnar source {self._path}: column {name!r} has "
                    f"{column.shape[0]} rows, expected {num_rows}"
                )
        self._num_rows = int(num_rows or 0)
        self._schema = Schema.of(
            *[
                Attribute.numeric(name)
                if kind is AttributeKind.NUMERIC
                else Attribute.boolean(name)
                for name, kind in names_kinds
            ]
        )
        self._arrays = dict(zip((name for name, _ in names_kinds), arrays))
        self._stat_key = tuple(stat_keys)
        self._pinned = tuple(pinned)
        # Columns whose stored dtype already is the canonical relation dtype
        # are served as raw slice views; anything else is cast per chunk.
        self._conforming = {
            name: self._arrays[name].dtype == _canonical_dtype(kind)
            for name, kind in names_kinds
        }

    @property
    def path(self) -> Path:
        """The column directory (or ``.npz`` archive) being scanned."""
        return self._path

    @property
    def chunk_size(self) -> int:
        """Maximum tuples per chunk."""
        return self._chunk_size

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def num_rows(self) -> int:
        """Total rows pinned at open time."""
        return self._num_rows

    def _check_pinned(self) -> None:
        """Refuse to serve a mapping whose backing file changed in place.

        A column file *replaced* wholesale (``write_columnar`` append, or
        an unlink) leaves the pinned mapping reading the intact old inode —
        the documented grow-behind-a-reader workflow, still legal.  A file
        truncated or rewritten **in place** keeps its inode, so the mapped
        pages themselves changed (or vanished: touching truncated pages is
        a bus error): that is drift, surfaced as the same typed error the
        CSV scanner raises when its file shrinks mid-scan.
        """
        for path, inode, size, mtime_ns in self._pinned:
            try:
                stat = path.stat()
            except OSError:
                continue  # unlinked/replaced: the mapping holds the snapshot
            if stat.st_ino != inode:
                continue  # replaced wholesale: the mapping holds the snapshot
            if stat.st_size != size or stat.st_mtime_ns != mtime_ns:
                raise SourceChangedError(
                    f"column file {path} was modified in place since this "
                    f"source pinned it (size {size} -> {stat.st_size}); the "
                    "mapped snapshot no longer exists"
                )

    def _column(self, name: str, start: int = 0, stop: int | None = None) -> np.ndarray:
        """A canonical-dtype view (or cast) of one column's row span."""
        column = self._arrays[name][start : self._num_rows if stop is None else stop]
        if self._conforming[name]:
            return column
        kind = self._schema.attribute(name).kind
        return np.asarray(column, dtype=_canonical_dtype(kind))

    def _window(self, start: int, stop: int) -> Iterator[Relation]:
        names = self._schema.names()
        schema = self._schema
        for begin in range(start, stop, self._chunk_size):
            end = min(begin + self._chunk_size, stop)
            yield Relation(
                schema,
                tuple(self._column(name, begin, end) for name in names),
            )

    def _projected_window(
        self, start: int, stop: int, columns: Sequence[str] | None
    ) -> Iterator[Relation]:
        if columns is None:
            return self._window(start, stop)
        requested = set(columns)
        names = [name for name in self._schema.names() if name in requested]
        if len(names) == len(self._schema):
            return self._window(start, stop)
        schema = self._schema.project(names)

        def projected() -> Iterator[Relation]:
            for begin in range(start, stop, self._chunk_size):
                end = min(begin + self._chunk_size, stop)
                yield Relation(
                    schema,
                    tuple(self._column(name, begin, end) for name in names),
                )

        return projected()

    def chunks(self) -> Iterator[Relation]:
        self._check_pinned()
        return self._window(0, self._num_rows)

    def scan(self, columns: Sequence[str] | None = None) -> Iterator[Relation]:
        self._check_pinned()
        return self._projected_window(0, self._num_rows, columns)

    def scan_tail(
        self, start: int, columns: Sequence[str] | None = None
    ) -> Iterator[Relation]:
        """Slice the tail directly — head pages are never faulted in."""
        if start < 0:
            raise RelationError("scan_tail start must be non-negative")
        self._check_pinned()
        start = min(int(start), self._num_rows)
        return self._projected_window(start, self._num_rows, columns)

    def scan_span(
        self, start: int, stop: int, columns: Sequence[str] | None = None
    ) -> Iterator[Relation]:
        """Slice the span directly — rows outside it are never touched."""
        if start < 0:
            raise RelationError("scan_span start must be non-negative")
        if stop < start:
            raise RelationError("scan_span stop must be at least start")
        self._check_pinned()
        start = min(int(start), self._num_rows)
        stop = min(int(stop), self._num_rows)
        return self._projected_window(start, stop, columns)

    def fingerprint(self, prefix: int | None = None) -> SourceFingerprint:
        """Row-prefix digest of the delivered column values.

        Identical scheme (and therefore identical tokens) to
        :func:`fingerprint_relation`: schema entries, then each column's
        leading values as raw bytes.  Hashing values rather than file bytes
        is what makes the fingerprint append-stable — rewriting a longer
        ``.npy`` changes its header, but never the leading values.  Digests
        are memoized process-wide keyed by the pinned file identities.
        """
        self._check_pinned()
        span = (
            self._num_rows
            if prefix is None
            else min(int(prefix), self._num_rows)
        )
        key = (self._stat_key, span)

        def compute() -> str:
            digest = hashlib.sha256()
            for attribute in self._schema:
                digest.update(
                    repr((attribute.name, attribute.kind.value)).encode("utf-8")
                )
            for name in self._schema.names():
                for begin in range(0, span, _COLUMNAR_DIGEST_BLOCK_ROWS):
                    end = min(begin + _COLUMNAR_DIGEST_BLOCK_ROWS, span)
                    digest.update(
                        np.ascontiguousarray(self._column(name, begin, end)).tobytes()
                    )
            return digest.hexdigest()

        token = _COLUMNAR_DIGEST_CACHE.get_or_compute(key, compute)
        return SourceFingerprint(token=token, length=span)


class ParquetSource(DataSource):
    """Arrow/Parquet scanning through the optional ``pyarrow`` dependency.

    Parameters
    ----------
    path:
        A Parquet file.  Boolean Arrow columns become Boolean attributes,
        everything else is read as numeric float64.
    chunk_size:
        Maximum tuples per chunk (``batch_size`` of the underlying
        ``iter_batches`` reader).  Column projection is pushed into the
        Parquet reader, so deselected columns are never decoded.

    The fingerprint unit is **rows** with the same value-digest scheme as
    :class:`NpyDirectorySource` (and :func:`fingerprint_relation`).  Unlike
    the CSV byte digest this must decode the column data, so it is cached
    per ``(file identity, span)`` — the store fingerprints a warm source
    once, not once per lookup.  :meth:`scan_tail` uses the default
    drop-the-head implementation: Parquet's row groups make an exact
    row-offset seek reader-dependent, and the append workflow for columnar
    data is the ``.npy`` directory layout.

    Unlike the ``.npy`` directory source, a Parquet file is re-read from
    disk on every scan — there is no pinned memory mapping to keep serving
    the open-time snapshot.  The source therefore pins the file's identity
    (size and mtime) at construction and every scan or fingerprint
    re-checks it: *any* change to the file — growth included, since a
    Parquet rewrite re-encodes row groups wholesale — raises
    :class:`~repro.exceptions.SourceChangedError`.  Appending to Parquet
    data is legal, but requires opening a fresh instance over the rewritten
    file; the value-digest fingerprint scheme keeps prefix tokens stable
    across such rewrites, so store append detection still works.
    """

    def __init__(
        self, path: str | Path, chunk_size: int = DEFAULT_CHUNK_SIZE
    ) -> None:
        if chunk_size <= 0:
            raise RelationError("chunk_size must be positive")
        if not HAVE_PYARROW:
            raise RelationError(
                "ParquetSource requires the optional pyarrow dependency, "
                "which is not installed; convert the data to a .npy column "
                "directory with write_columnar instead"
            )
        import pyarrow.parquet as parquet

        self._parquet = parquet
        self._path = Path(path)
        self._chunk_size = int(chunk_size)
        if not self._path.exists():
            raise RelationError(f"Parquet file {self._path} does not exist")
        stat = self._path.stat()
        self._stat_key = (str(self._path.resolve()), stat.st_size, stat.st_mtime_ns)
        handle = parquet.ParquetFile(self._path)
        try:
            arrow_schema = handle.schema_arrow
            self._num_rows = int(handle.metadata.num_rows)
        finally:
            handle.close()
        import pyarrow

        attributes = []
        self._kinds: dict[str, AttributeKind] = {}
        for field in arrow_schema:
            kind = (
                AttributeKind.BOOLEAN
                if field.type == pyarrow.bool_()
                else AttributeKind.NUMERIC
            )
            self._kinds[field.name] = kind
            attributes.append(
                Attribute.numeric(field.name)
                if kind is AttributeKind.NUMERIC
                else Attribute.boolean(field.name)
            )
        if not attributes:
            raise RelationError(f"Parquet file {self._path} has no columns")
        self._schema = Schema.of(*attributes)

    @property
    def path(self) -> Path:
        """The Parquet file being scanned."""
        return self._path

    @property
    def chunk_size(self) -> int:
        """Maximum tuples per chunk."""
        return self._chunk_size

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def num_rows(self) -> int:
        """Total rows per the Parquet footer metadata."""
        return self._num_rows

    def _check_pinned(self) -> None:
        """Raise unless the file still matches its construction-time pin.

        Every scan re-reads the file from disk, so a changed file would
        silently serve different tuples than the pinned fingerprint
        promises.  Re-stat eagerly: a missing file or any size/mtime
        difference means the snapshot this instance was opened against is
        gone — the caller must open a fresh :class:`ParquetSource`.
        """
        try:
            stat = self._path.stat()
        except OSError as error:
            raise SourceChangedError(
                f"Parquet file {self._path} disappeared after this source "
                "was opened; open a fresh ParquetSource over the new data"
            ) from error
        key = (str(self._path.resolve()), stat.st_size, stat.st_mtime_ns)
        if key != self._stat_key:
            raise SourceChangedError(
                f"Parquet file {self._path} changed after this source was "
                "opened (size or mtime differs from the pinned snapshot); "
                "open a fresh ParquetSource over the rewritten file"
            )

    def chunks(self) -> Iterator[Relation]:
        return self.scan()

    def scan(self, columns: Sequence[str] | None = None) -> Iterator[Relation]:
        self._check_pinned()
        if columns is None:
            names = self._schema.names()
            schema = self._schema
        else:
            requested = set(columns)
            names = [name for name in self._schema.names() if name in requested]
            schema = (
                self._schema
                if len(names) == len(self._schema)
                else self._schema.project(names)
            )

        def batches() -> Iterator[Relation]:
            handle = self._parquet.ParquetFile(self._path)
            try:
                for batch in handle.iter_batches(
                    batch_size=self._chunk_size, columns=names
                ):
                    arrays = []
                    for name in names:
                        column = batch.column(name).to_numpy(zero_copy_only=False)
                        arrays.append(
                            np.ascontiguousarray(
                                column, dtype=_canonical_dtype(self._kinds[name])
                            )
                        )
                    yield Relation(schema, tuple(arrays))
            finally:
                handle.close()

        return batches()

    def fingerprint(self, prefix: int | None = None) -> SourceFingerprint:
        """Row-prefix digest of the delivered column values (cached)."""
        self._check_pinned()
        span = (
            self._num_rows
            if prefix is None
            else min(int(prefix), self._num_rows)
        )
        key = (self._stat_key, span)

        def compute() -> str:
            digest = hashlib.sha256()
            for attribute in self._schema:
                digest.update(
                    repr((attribute.name, attribute.kind.value)).encode("utf-8")
                )
            handle = self._parquet.ParquetFile(self._path)
            try:
                for name in self._schema.names():
                    remaining = span
                    dtype = _canonical_dtype(self._kinds[name])
                    for batch in handle.iter_batches(
                        batch_size=self._chunk_size, columns=[name]
                    ):
                        if remaining <= 0:
                            break
                        column = batch.column(name).to_numpy(zero_copy_only=False)
                        block = np.ascontiguousarray(
                            column[:remaining], dtype=dtype
                        )
                        digest.update(block.tobytes())
                        remaining -= block.shape[0]
            finally:
                handle.close()
            return digest.hexdigest()

        token = _COLUMNAR_DIGEST_CACHE.get_or_compute(key, compute)
        return SourceFingerprint(token=token, length=span)
