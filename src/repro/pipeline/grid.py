"""Two-dimensional grid profiles through the unified pipeline (§1.4).

The rectangle extension of §1.4 optimizes a region in the plane of two
numeric attributes.  Its solver-ready input is a :class:`GridProfile` — the
2-D analogue of :class:`~repro.core.BucketProfile`: per-cell tuple counts
``u_ij`` and objective counts ``v_ij`` over an ``R × C`` bucket grid, plus
the per-axis observed data bounds that instantiate the winning rectangle.

:class:`GridProfileBuilder` builds grids from any
:class:`~repro.pipeline.sources.DataSource` exactly the way
:class:`~repro.pipeline.builder.ProfileBuilder` builds 1-D profiles:

1. the builder's per-attribute reservoir boundary pass (chunk-invariant,
   seeded per attribute) fixes both axes' bucket boundaries in one scan;
2. a counting scan runs the shared 2-D kernel
   :func:`~repro.bucketing.counting.count_grid_chunk` — one ``searchsorted``
   assignment per axis, one flattened ``bincount`` for the cells — under the
   same serial / streaming / multiprocessing executors.

Cell counts are integers and bounds are order-free min/max reductions, so
every source type and executor (at any pool size) produces **bit-identical**
grids; ``tests/pipeline/test_grid.py`` asserts the full matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.bucketing.base import Bucketing
from repro.bucketing.counting import GridChunkCounts, count_grid_chunk
from repro.exceptions import PipelineError
from repro.pipeline.builder import ProfileBuilder, ScanPlan
from repro.pipeline.sources import DataSource
from repro.relation.conditions import Condition
from repro.relation.relation import Relation

__all__ = ["GridProfile", "GridCounts", "GridProfileBuilder"]


@dataclass(frozen=True)
class GridProfile:
    """Per-cell counts over a 2-D bucket grid.

    ``sizes[i, j]`` is the number of tuples whose row attribute falls in row
    bucket ``i`` and column attribute in column bucket ``j``; ``values`` is
    the analogous count of tuples that also satisfy the objective.
    """

    row_attribute: str
    column_attribute: str
    objective_label: str
    sizes: np.ndarray
    values: np.ndarray
    row_lows: np.ndarray
    row_highs: np.ndarray
    column_lows: np.ndarray
    column_highs: np.ndarray
    total: float

    @staticmethod
    def from_relation(
        relation: Relation,
        row_attribute: str,
        column_attribute: str,
        objective: Condition,
        row_bucketing: Bucketing,
        column_bucketing: Bucketing,
    ) -> "GridProfile":
        """Count an in-memory relation into the grid of two bucketings.

        One call to the shared 2-D kernel — the same counting primitives the
        pipeline executors run chunk by chunk, so a
        :class:`GridProfileBuilder` fed the same bucketings produces a
        bit-identical grid.
        """
        counts = count_grid_chunk(
            relation.numeric_column(row_attribute),
            relation.numeric_column(column_attribute),
            row_bucketing.cuts,
            column_bucketing.cuts,
            masks=np.asarray(objective.mask(relation), dtype=bool)[None, :],
        )
        return GridProfile(
            row_attribute=row_attribute,
            column_attribute=column_attribute,
            objective_label=str(objective),
            sizes=counts.sizes.astype(np.float64),
            values=counts.conditional[0].astype(np.float64),
            row_lows=counts.row_lows,
            row_highs=counts.row_highs,
            column_lows=counts.column_lows,
            column_highs=counts.column_highs,
            total=float(relation.num_tuples),
        )

    @property
    def shape(self) -> tuple[int, int]:
        """Grid shape ``(rows, columns)``."""
        return tuple(self.sizes.shape)  # type: ignore[return-value]


@dataclass
class GridCounts:
    """Pipeline output for one attribute pair: merged cell counts + bucketings.

    The 2-D analogue of :class:`~repro.pipeline.builder.AttributeCounts`:
    everything needed to materialize a :class:`GridProfile` per counted
    objective without another scan.
    """

    row_attribute: str
    column_attribute: str
    row_bucketing: Bucketing
    column_bucketing: Bucketing
    sizes: np.ndarray
    conditional: dict[Condition, np.ndarray]
    row_lows: np.ndarray
    row_highs: np.ndarray
    column_lows: np.ndarray
    column_highs: np.ndarray
    total: int

    def profile(self, objective: Condition, label: str | None = None) -> GridProfile:
        """The grid profile of one counted objective."""
        if objective not in self.conditional:
            raise PipelineError(
                f"objective {objective} was not counted for the grid "
                f"({self.row_attribute!r}, {self.column_attribute!r})"
            )
        if self.total == 0:
            raise PipelineError("the source contained no tuples")
        return GridProfile(
            row_attribute=self.row_attribute,
            column_attribute=self.column_attribute,
            objective_label=label if label is not None else str(objective),
            sizes=self.sizes.astype(np.float64),
            values=self.conditional[objective].astype(np.float64),
            row_lows=self.row_lows,
            row_highs=self.row_highs,
            column_lows=self.column_lows,
            column_highs=self.column_highs,
            total=float(self.total),
        )


def _count_grid_payload(
    payload: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray | None],
) -> GridChunkCounts:
    """Count one chunk into the grid (module-level: picklable for workers)."""
    row_values, column_values, row_cuts, column_cuts, masks = payload
    return count_grid_chunk(
        row_values, column_values, row_cuts, column_cuts, masks=masks
    )


class GridProfileBuilder(ProfileBuilder):
    """Build 2-D grid profiles from any data source with a pluggable executor.

    Shares everything with :class:`ProfileBuilder` — constructor parameters,
    the per-attribute reservoir boundary pass, and the executor strategies —
    and adds the grid counting pass.  The boundary sample of each axis
    derives from ``(seed, crc32(attribute))`` exactly as for 1-D profiles,
    so a grid's bucket boundaries are independent of chunking, executor, and
    worker-pool size; the counting partials merge in chunk order, making the
    whole grid bit-identical across the source × executor × pool-size
    matrix.  This is the same determinism contract the fixed partition seed
    gives :class:`~repro.bucketing.parallel.ParallelBucketCounter` — here the
    tuple → worker partition is the (deterministic) chunk order itself, so
    growing the pool can never change a result
    (``tests/pipeline/test_grid.py`` regresses pool sizes 1/2/4).
    """

    def build_grid_counts(
        self,
        source: DataSource,
        row_attribute: str,
        column_attribute: str,
        objectives: Sequence[Condition],
        bucketings: Mapping[str, Bucketing] | None = None,
        grid: tuple[int, int] | None = None,
        store: "object | None" = None,
    ) -> GridCounts:
        """Count every objective's cell grid in one fused scan of ``source``.

        ``bucketings`` entries (keyed by attribute name) skip the sampling
        pass for their axis, e.g. to reuse boundaries from a previous build
        or from an in-memory bucketizer.  ``grid`` overrides the builder-wide
        bucket count per axis (``(rows, columns)``), so non-square grids need
        no second builder.  ``store`` serves the grid from a persistent
        :class:`~repro.store.ProfileStore` snapshot when one matches — zero
        physical scans, tail-only counting on append-only growth (requires
        the fused path and no ``bucketings`` overrides).
        """
        if row_attribute == column_attribute:
            raise PipelineError(
                "the grid's row and column attributes must differ"
            )
        objectives = list(dict.fromkeys(objectives))
        if self.fused:
            plan = ScanPlan()
            request_id = plan.add_grid(
                row_attribute, column_attribute, objectives, grid=grid
            )
            results = self.execute_plan(
                source, plan, bucketings=bucketings,
                store=store if not bucketings else None,
            )
            return results.grid_counts(request_id)
        if store is not None:
            raise PipelineError(
                "a profile store requires the fused scan planner (fused=True)"
            )
        resolved = dict(bucketings or {})
        missing = [
            attribute
            for attribute in (row_attribute, column_attribute)
            if attribute not in resolved
        ]
        if missing:
            overrides = (
                {row_attribute: grid[0], column_attribute: grid[1]}
                if grid is not None
                else None
            )
            resolved.update(
                self.sample_bucketings(source, missing, num_buckets=overrides)
            )
        row_bucketing = resolved[row_attribute]
        column_bucketing = resolved[column_attribute]

        def payloads() -> Iterator[tuple]:
            for chunk in source.chunks():
                if objectives:
                    masks = np.empty(
                        (len(objectives), chunk.num_tuples), dtype=bool
                    )
                    for row, objective in enumerate(objectives):
                        masks[row] = np.asarray(objective.mask(chunk), dtype=bool)
                else:
                    masks = None
                yield (
                    np.asarray(
                        chunk.numeric_column(row_attribute), dtype=np.float64
                    ),
                    np.asarray(
                        chunk.numeric_column(column_attribute), dtype=np.float64
                    ),
                    row_bucketing.cuts,
                    column_bucketing.cuts,
                    masks,
                )

        totals = GridChunkCounts.zeros(
            row_bucketing.num_buckets,
            column_bucketing.num_buckets,
            num_masks=len(objectives),
        )
        self.fold_payloads(payloads(), _count_grid_payload, totals.merge)
        return GridCounts(
            row_attribute=row_attribute,
            column_attribute=column_attribute,
            row_bucketing=row_bucketing,
            column_bucketing=column_bucketing,
            sizes=totals.sizes,
            conditional={
                objective: totals.conditional[row]
                for row, objective in enumerate(objectives)
            },
            row_lows=totals.row_lows,
            row_highs=totals.row_highs,
            column_lows=totals.column_lows,
            column_highs=totals.column_highs,
            total=totals.num_tuples,
        )

    def build_grid_profile(
        self,
        source: DataSource,
        row_attribute: str,
        column_attribute: str,
        objective: Condition,
        bucketings: Mapping[str, Bucketing] | None = None,
        grid: tuple[int, int] | None = None,
        label: str | None = None,
        store: "object | None" = None,
    ) -> GridProfile:
        """One objective's :class:`GridProfile` from one fused scan (or a store hit)."""
        counts = self.build_grid_counts(
            source,
            row_attribute,
            column_attribute,
            [objective],
            bucketings=bucketings,
            grid=grid,
            store=store,
        )
        return counts.profile(objective, label=label)
