"""Bounded retry with exponential backoff and deterministic jitter.

The coordinator retries a failed shard a bounded number of times, sleeping
between attempts.  The delay doubles per attempt up to a cap, plus a jitter
term derived from ``(shard_index, attempt)`` — deterministic, so two runs of
the same fault schedule back off identically, yet distinct across shards so
a herd of failures does not retry in lockstep.  Clock and sleep are
injectable for tests: the fault-injection suite runs with a no-op sleep and
a fake clock, so even schedules with long nominal backoffs finish instantly.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["RetryPolicy"]


def _jitter_fraction(shard_index: int, attempt: int) -> float:
    """Deterministic pseudo-random fraction in ``[0, 1)``."""
    digest = hashlib.sha256(f"{shard_index}:{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry a shard, and how long to wait in between.

    ``max_retries`` counts *re*-tries: a shard is attempted at most
    ``max_retries + 1`` times.  The delay before retry ``attempt`` (1-based)
    is ``min(base_delay * 2**(attempt-1), max_delay)`` scaled by a
    deterministic jitter factor in ``[1, 1 + jitter)``.
    """

    max_retries: int = 2
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.25
    sleep: Callable[[float], None] = field(default=time.sleep, compare=False)

    def delay(self, shard_index: int, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based) of ``shard_index``."""
        if attempt <= 0:
            return 0.0
        backoff = min(self.base_delay * (2.0 ** (attempt - 1)), self.max_delay)
        return backoff * (1.0 + self.jitter * _jitter_fraction(shard_index, attempt))

    def wait(self, shard_index: int, attempt: int) -> float:
        """Sleep out the backoff; returns the delay actually waited."""
        delay = self.delay(shard_index, attempt)
        if delay > 0.0:
            self.sleep(delay)
        return delay

    def allows(self, attempt: int) -> bool:
        """Whether attempt number ``attempt`` (0-based) may still run."""
        return attempt <= self.max_retries
