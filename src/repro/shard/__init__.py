"""Fault-tolerant sharded mining plane.

The serial story so far computes every profile of a
:class:`~repro.pipeline.ScanPlan` in one fused scan; this package scatters
that scan across N shards and folds the partials back — and keeps the
answer *provably* right when shards crash, hang, or return garbage:

* :mod:`repro.shard.descriptors` — fingerprint-stamped span partitions
  (byte spans for CSV files, tuple spans for everything else) that cover
  the source exactly once;
* :mod:`repro.shard.retry` — bounded exponential backoff with
  deterministic jitter, clock and sleep injectable;
* :mod:`repro.shard.coordinator` — the scatter/gather brain: serial
  boundary sampling, per-shard timeout + retry, checksummed and
  token-stamped partial validation, atomic checkpoint/resume, and
  graceful degradation with exact coverage metadata;
* :mod:`repro.shard.faults` — seeded fault injection (crash, hang,
  truncate, bit-flip, stale token, permanent death) for drills and the
  differential test suite.

Entry points: ``builder.execute_plan(source, plan, shards=N)`` for the
default configuration, or drive a :class:`ShardCoordinator` directly for
timeouts, retries, checkpoints, and degradation policies.  The CLI mirrors
this as ``repro shard mine | resume | status``.
"""

from repro.shard.coordinator import (
    ShardCoordinator,
    ShardReport,
    ShardRun,
    checkpoint_status,
    count_shard,
    gc_checkpoints,
)
from repro.shard.descriptors import (
    ShardDescriptor,
    csv_byte_spans,
    partition_source,
    run_key,
)
from repro.shard.faults import (
    CRASH_POINT_ENV,
    CrashSchedule,
    FaultSchedule,
    FaultySource,
    FaultyWorker,
    STORE_CRASH_POINTS,
    crash_point,
)
from repro.shard.retry import RetryPolicy
from repro.store.profile_store import ShardCheckpointStore

__all__ = [
    "CRASH_POINT_ENV",
    "CrashSchedule",
    "FaultSchedule",
    "FaultySource",
    "FaultyWorker",
    "RetryPolicy",
    "STORE_CRASH_POINTS",
    "ShardCheckpointStore",
    "ShardCoordinator",
    "ShardDescriptor",
    "ShardReport",
    "ShardRun",
    "checkpoint_status",
    "count_shard",
    "crash_point",
    "csv_byte_spans",
    "gc_checkpoints",
    "partition_source",
    "run_key",
]
