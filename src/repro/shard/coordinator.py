"""The :class:`ShardCoordinator`: scatter/gather counting that survives faults.

One sharded mining run is three phases:

1. **Sample** — boundary sampling stays a *single serial pass* over the
   source (reservoir RNG streams are scan-order-sensitive; splitting them
   would change the sampled boundaries).  The pass also counts tuples, which
   tuple-span partitioning needs for free.
2. **Scatter** — the source is partitioned into fingerprint-stamped
   :class:`~repro.shard.descriptors.ShardDescriptor` spans and each is
   dispatched to a worker, which counts exactly its span through the frozen
   :class:`~repro.pipeline.builder.CompiledPlan` and returns a checksummed,
   stamped partial.  Failures are typed — :class:`ShardTimeout`,
   :class:`ShardCrashed`, :class:`ShardCorrupt` — and retried under a
   bounded backoff policy; validated partials are checkpointed atomically so
   a killed coordinator resumes only the unfinished shards.
3. **Gather** — partials fold in shard-index order.  Integer counts,
   min/max bounds, and tuple totals merge exactly under any partition, so
   the folded profiles are bit-identical to one serial scan.  (§5 float
   bucket *sums* are left-fold order-dependent across chunk boundaries,
   exactly as re-chunking any stream is — the differential suite pins
   bit-exactness on sum-free plans, which is every catalog plan.)

When retries are exhausted the coordinator either raises the last typed
error (``on_exhausted="raise"``) or degrades gracefully
(``on_exhausted="partial"``): the fold proceeds over the surviving shards
and the returned :class:`ShardRun` carries exact coverage metadata — which
spans are represented, which are missing, and what fraction of the source
the counts cover.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from collections.abc import Iterator, Mapping, Sequence
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from repro.bucketing.base import Bucketing
from repro.bucketing.counting import PlanChunkCounts, count_plan_chunk
from repro.exceptions import (
    BucketingError,
    ShardCorrupt,
    ShardCrashed,
    ShardError,
    ShardTimeout,
)
from repro.pipeline.builder import (
    CompiledPlan,
    PlanResults,
    ProfileBuilder,
    ScanPlan,
)
from repro.pipeline.sources import CSVSource, DataSource
from repro.relation import Relation, Schema
from repro.shard.descriptors import ShardDescriptor, partition_source
from repro.shard.descriptors import run_key as compute_run_key
from repro.shard.retry import RetryPolicy
from repro.store.profile_store import (
    ProfileStore,
    ShardCheckpointStore,
    plan_signature,
)

__all__ = [
    "ShardCoordinator",
    "ShardReport",
    "ShardRun",
    "checkpoint_status",
    "count_shard",
]

TRANSPORTS = ("thread", "inline")
_BUCKETING_PREFIX = "cuts."


def count_shard(
    compiled: CompiledPlan,
    source: DataSource,
    descriptor: ShardDescriptor,
    attempt: int = 0,
) -> dict[str, np.ndarray]:
    """The default worker: count one shard's span into a stamped partial.

    The contract any worker must honor: scan exactly
    ``[descriptor.start, descriptor.stop)`` of ``source`` through
    ``compiled``, and return the partial's ``to_state()`` dictionary (self-
    checksummed) stamped with the shard index, the source fingerprint token
    the shard was cut from, and the number of tuples actually counted.  The
    state is pure serializable arrays — the same contract works in-process,
    over a process pool, or across a wire.
    """
    totals = compiled.kernel_plan.zeros()
    tuples = 0
    columns = list(compiled.needed_columns)
    for chunk in source.scan_span(descriptor.start, descriptor.stop, columns):
        tuples += chunk.num_tuples
        totals.merge(
            count_plan_chunk(
                compiled.kernel_plan, compiled.payload_builder.build(chunk)
            )
        )
    state = totals.to_state()
    state["shard.index"] = np.asarray(np.int64(descriptor.index))
    state["shard.token"] = np.asarray(descriptor.token)
    state["shard.tuples"] = np.asarray(np.int64(tuples))
    return state


@dataclass(frozen=True)
class ShardReport:
    """How one shard fared: attempts spent, terminal status, typed error."""

    index: int
    status: str  # "ok" | "checkpointed" | "failed"
    attempts: int
    tuples: int
    error: str | None = None


@dataclass(frozen=True)
class ShardRun:
    """Everything a sharded mining run produced.

    ``results`` folds the surviving shards; ``coverage`` says exactly what
    "surviving" meant — a complete run covers fraction ``1.0`` and lists no
    failed shards, a degraded run (``on_exhausted="partial"``) accounts for
    every missing span.
    """

    results: PlanResults
    run_key: str
    descriptors: tuple[ShardDescriptor, ...]
    reports: tuple[ShardReport, ...]
    coverage: dict

    @property
    def complete(self) -> bool:
        """Whether every shard of the partition is in the fold."""
        return not self.coverage["failed_shards"]


class _TupleCountingSource(DataSource):
    """Delegating proxy that tallies tuples as scans stream through it.

    Lets the coordinator's single sampling pass double as the tuple count
    that tuple-span partitioning needs — no extra scan.
    """

    def __init__(self, inner: DataSource) -> None:
        self._inner = inner
        self.total: int | None = None

    @property
    def schema(self) -> Schema:
        return self._inner.schema

    def chunks(self) -> Iterator[Relation]:
        return self._counted(self._inner.chunks())

    def scan(self, columns: Sequence[str] | None = None) -> Iterator[Relation]:
        return self._counted(self._inner.scan(columns))

    def _counted(self, chunks: Iterator[Relation]) -> Iterator[Relation]:
        def stream() -> Iterator[Relation]:
            total = 0
            for chunk in chunks:
                total += chunk.num_tuples
                yield chunk
            self.total = total

        return stream()


def checkpoint_status(
    checkpoints: ProfileStore | ShardCheckpointStore | str | Path,
    run_key: str | None = None,
) -> dict:
    """What a run's checkpoint namespace holds (for ``repro shard status``)."""
    store = _open_checkpoints(checkpoints, run_key)
    if store is None:
        raise ShardError("checkpoint_status needs a checkpoint location")
    return {
        "directory": str(store.directory),
        "completed_shards": store.completed(),
        "has_bucketings": store.load_meta() is not None,
    }


def gc_checkpoints(
    root: ProfileStore | str | Path,
    active_run_keys: Sequence[str] = (),
) -> list[str]:
    """Delete orphan run namespaces under a checkpoint root.

    Completed folds clear their own namespace, but a run that was abandoned
    — or whose run key changed because the source grew or the plan moved —
    leaves its directory behind forever.  This removes every run directory
    except the ones named in ``active_run_keys`` (the run an operator is
    still resuming must survive; ``repro shard status --gc`` passes the
    current run key).  Returns the removed run keys, sorted.
    """
    directory = (
        root.directory / "checkpoints"
        if isinstance(root, ProfileStore)
        else Path(root)
    )
    removed: list[str] = []
    if not directory.is_dir():
        return removed
    keep = {str(key) for key in active_run_keys}
    for child in sorted(directory.iterdir()):
        if not child.is_dir() or child.name in keep:
            continue
        ShardCheckpointStore(child).clear()
        if not child.exists():
            removed.append(child.name)
    return removed


def _open_checkpoints(
    checkpoints: ProfileStore | ShardCheckpointStore | str | Path | None,
    run_key: str | None,
) -> ShardCheckpointStore | None:
    if checkpoints is None:
        return None
    if isinstance(checkpoints, ShardCheckpointStore):
        return checkpoints
    if isinstance(checkpoints, ProfileStore):
        if run_key is None:
            raise ShardError("a ProfileStore checkpoint target needs a run key")
        return checkpoints.checkpoints(run_key)
    root = Path(checkpoints)
    if run_key is None:
        raise ShardError("a directory checkpoint target needs a run key")
    return ShardCheckpointStore(root / run_key)


class ShardCoordinator:
    """Partition, dispatch, retry, checkpoint, and fold a sharded count.

    Parameters
    ----------
    builder:
        The :class:`ProfileBuilder` whose sampling seed and bucket counts
        define the run.  Boundary sampling runs through it serially, so a
        sharded run is bit-identical to ``builder.execute_plan`` for every
        merge-exact payload.
    num_shards:
        Requested partition width (the actual partition may hold fewer
        shards when the data is too small to split further).
    transport:
        ``"thread"`` (default) dispatches shards to an in-process thread
        pool and enforces ``shard_timeout`` per attempt; ``"inline"`` runs
        shards sequentially in the caller's thread — fully deterministic
        scheduling, but hangs cannot be preempted, so ``shard_timeout`` is
        ignored.
    retry:
        A :class:`RetryPolicy`; defaults to 2 retries with exponential
        backoff and deterministic jitter.
    shard_timeout:
        Seconds one attempt may run before it is declared
        :class:`ShardTimeout` (``None`` waits forever).
    on_exhausted:
        ``"raise"`` (default) re-raises the exhausted shard's last typed
        error; ``"partial"`` folds the surviving shards and reports exact
        coverage metadata instead.
    checkpoints:
        Where to persist validated partials: a :class:`ProfileStore` (the
        run gets a namespace under ``<store>/checkpoints/<run_key>/``), a
        directory root, a ready :class:`ShardCheckpointStore`, or ``None``
        to disable checkpointing.
    worker:
        The shard-counting callable, ``worker(compiled, source, descriptor,
        attempt) -> state``; defaults to :func:`count_shard`.  The fault
        harness (:mod:`repro.shard.faults`) wraps this hook.
    """

    def __init__(
        self,
        builder: ProfileBuilder,
        num_shards: int = 4,
        transport: str = "thread",
        retry: RetryPolicy | None = None,
        shard_timeout: float | None = None,
        on_exhausted: str = "raise",
        checkpoints: ProfileStore | ShardCheckpointStore | str | Path | None = None,
        worker: Callable | None = None,
    ) -> None:
        if num_shards <= 0:
            raise ShardError("num_shards must be positive")
        if transport not in TRANSPORTS:
            raise ShardError(
                f"unknown transport {transport!r}; expected one of {TRANSPORTS}"
            )
        if on_exhausted not in ("raise", "partial"):
            raise ShardError(
                f"unknown on_exhausted policy {on_exhausted!r}; "
                "expected 'raise' or 'partial'"
            )
        if shard_timeout is not None and shard_timeout <= 0:
            raise ShardError("shard_timeout must be positive")
        self._builder = builder
        self._num_shards = int(num_shards)
        self._transport = transport
        self._retry = retry if retry is not None else RetryPolicy()
        self._shard_timeout = shard_timeout
        self._on_exhausted = on_exhausted
        self._checkpoints = checkpoints
        self._worker = worker if worker is not None else count_shard

    # -- phase 1: sample + partition -------------------------------------------

    def _resolve_bucketings(
        self,
        source: DataSource,
        plan: ScanPlan,
        provided: Mapping[str, Bucketing] | None,
        checkpoints: ShardCheckpointStore | None,
    ) -> tuple[dict[tuple[str, int], Bucketing], int | None]:
        """Frozen per-axis boundaries + the tuple total (if counted).

        Keys are ``(attribute, bucket count)`` pairs — a plan may bucket the
        same attribute at two widths.  Resolution order: caller-provided
        (pair- or attribute-keyed), then checkpointed (a resumed run must
        reuse the exact boundaries its partials were counted under), then
        one serial sampling pass.  The sampling scan runs through a counting
        proxy, so non-CSV partitioning gets its tuple total free.
        """
        pairs = self._builder.plan_axis_pairs(plan)
        overrides = dict(provided or {})
        resolved: dict[tuple[str, int], Bucketing] = {}
        for attribute, count in pairs:
            if (attribute, count) in overrides:
                resolved[(attribute, count)] = overrides[(attribute, count)]
            elif attribute in overrides:
                resolved[(attribute, count)] = overrides[attribute]
        missing = [pair for pair in pairs if pair not in resolved]
        if missing and checkpoints is not None:
            saved = checkpoints.load_meta()
            if saved is not None:
                for attribute, count in list(missing):
                    key = f"{_BUCKETING_PREFIX}{count:d}.{attribute}"
                    if key in saved:
                        resolved[(attribute, count)] = Bucketing(saved[key])
                missing = [pair for pair in missing if pair not in resolved]
        total: int | None = None
        if missing:
            proxy = _TupleCountingSource(source)
            resolved.update(
                self._builder.sample_axis_bucketings(proxy, missing)
            )
            total = proxy.total
        return resolved, total

    def _count_tuples(self, source: DataSource) -> int:
        total = 0
        for chunk in source.scan():
            total += chunk.num_tuples
        return total

    # -- phase 2: dispatch with retry ------------------------------------------

    def _attempt(
        self,
        compiled: CompiledPlan,
        source: DataSource,
        descriptor: ShardDescriptor,
        attempt: int,
    ) -> dict[str, np.ndarray]:
        """One worker attempt, with the transport's timeout discipline."""
        if self._transport == "inline" or self._shard_timeout is None:
            try:
                return self._worker(compiled, source, descriptor, attempt)
            except ShardError:
                raise
            except Exception as exc:
                raise ShardCrashed(
                    f"shard {descriptor.index} worker crashed on attempt "
                    f"{attempt}: {exc}",
                    shard_index=descriptor.index,
                    attempt=attempt,
                ) from exc
        pool = ThreadPoolExecutor(max_workers=1)
        try:
            future = pool.submit(
                self._worker, compiled, source, descriptor, attempt
            )
            try:
                return future.result(timeout=self._shard_timeout)
            except FuturesTimeoutError as exc:
                raise ShardTimeout(
                    f"shard {descriptor.index} attempt {attempt} exceeded "
                    f"the {self._shard_timeout}s shard timeout",
                    shard_index=descriptor.index,
                    attempt=attempt,
                ) from exc
            except ShardError:
                raise
            except Exception as exc:
                raise ShardCrashed(
                    f"shard {descriptor.index} worker crashed on attempt "
                    f"{attempt}: {exc}",
                    shard_index=descriptor.index,
                    attempt=attempt,
                ) from exc
        finally:
            # Never block on a hung worker thread; it dies with its fault.
            pool.shutdown(wait=False)

    def _validate_partial(
        self, descriptor: ShardDescriptor, state: Mapping[str, np.ndarray]
    ) -> PlanChunkCounts:
        """Admit a partial to the fold only with its identity proven.

        Checks, in order: the stamp exists; it names *this* shard; it was
        counted against the data the partition was cut from (token match);
        the counting arrays survive their checksum; and — for tuple spans —
        every tuple of the span is accounted for.
        """
        for key in ("shard.index", "shard.token", "shard.tuples"):
            if key not in state:
                raise ShardCorrupt(
                    f"shard {descriptor.index} partial is missing its "
                    f"{key!r} stamp",
                    shard_index=descriptor.index,
                )
        stamped_index = int(np.asarray(state["shard.index"]))
        if stamped_index != descriptor.index:
            raise ShardCorrupt(
                f"shard {descriptor.index} received a partial stamped for "
                f"shard {stamped_index}",
                shard_index=descriptor.index,
            )
        stamped_token = str(np.asarray(state["shard.token"]).item())
        if stamped_token != descriptor.token:
            raise ShardCorrupt(
                f"shard {descriptor.index} partial was counted against "
                "different data than this partition (stale fingerprint "
                "token); refusing to fold it",
                shard_index=descriptor.index,
            )
        try:
            partial = PlanChunkCounts.from_state(state)
        except (BucketingError, KeyError, ValueError) as exc:
            raise ShardCorrupt(
                f"shard {descriptor.index} partial failed validation: {exc}",
                shard_index=descriptor.index,
            ) from exc
        tuples = int(np.asarray(state["shard.tuples"]))
        if descriptor.unit == "tuples" and tuples != descriptor.length:
            raise ShardCorrupt(
                f"shard {descriptor.index} counted {tuples} tuples for a "
                f"span of {descriptor.length}; tuples were lost or "
                "double-counted",
                shard_index=descriptor.index,
            )
        return partial

    def _run_shard(
        self,
        compiled: CompiledPlan,
        source: DataSource,
        descriptor: ShardDescriptor,
        checkpoints: ShardCheckpointStore | None,
    ) -> tuple[ShardDescriptor, dict | None, ShardReport]:
        """One shard's full life: attempts, validation, checkpoint."""
        attempt = 0
        while True:
            try:
                state = self._attempt(compiled, source, descriptor, attempt)
                self._validate_partial(descriptor, state)
            except ShardError as error:
                attempt += 1
                if self._retry.allows(attempt):
                    self._retry.wait(descriptor.index, attempt)
                    continue
                report = ShardReport(
                    index=descriptor.index,
                    status="failed",
                    attempts=attempt,
                    tuples=0,
                    error=f"{type(error).__name__}: {error}",
                )
                return descriptor, None, report
            if checkpoints is not None:
                checkpoints.save(descriptor.index, dict(state))
            report = ShardReport(
                index=descriptor.index,
                status="ok",
                attempts=attempt + 1,
                tuples=int(np.asarray(state["shard.tuples"])),
            )
            return descriptor, dict(state), report

    # -- phase 3: gather --------------------------------------------------------

    def mine(
        self,
        source: DataSource,
        plan: ScanPlan,
        bucketings: Mapping[str, Bucketing] | None = None,
    ) -> ShardRun:
        """Execute ``plan`` over ``source`` as a fault-tolerant sharded fold.

        Resumable by construction: with a checkpoint target configured,
        re-invoking ``mine`` after a crash reloads the frozen boundaries and
        every validated partial, re-counts only the unfinished shards, and
        folds — checkpoints that fail validation on reload (torn files,
        stale tokens) are discarded and recounted, never folded.
        """
        requests = list(plan.requests)
        if not requests:
            empty = PlanResults([], [], [])
            return ShardRun(
                results=empty,
                run_key="",
                descriptors=(),
                reports=(),
                coverage=_coverage((), {}, []),
            )
        signature = plan_signature(self._builder, plan)
        seed = self._builder.seed

        if isinstance(source, CSVSource):
            # Byte-span partitioning needs no scan: the run key (and with it
            # the checkpoint namespace) exists before any sampling, so a
            # resumed run can reload its frozen boundaries instead of
            # re-sampling.
            descriptors = partition_source(source, self._num_shards)
            key = compute_run_key(signature, seed, descriptors)
            checkpoints = _open_checkpoints(self._checkpoints, key)
            resolved, _ = self._resolve_bucketings(
                source, plan, bucketings, checkpoints
            )
        else:
            resolved, total = self._resolve_bucketings(
                source, plan, bucketings, None
            )
            if total is None:
                total = self._count_tuples(source)
            descriptors = partition_source(source, self._num_shards, total)
            key = compute_run_key(signature, seed, descriptors)
            checkpoints = _open_checkpoints(self._checkpoints, key)
        if checkpoints is not None:
            checkpoints.save_meta(
                {
                    f"{_BUCKETING_PREFIX}{count:d}.{attribute}": bucketing.cuts
                    for (attribute, count), bucketing in resolved.items()
                }
            )
        compiled = self._builder.compile_plan(plan, resolved)

        partials: dict[int, PlanChunkCounts] = {}
        reports: dict[int, ShardReport] = {}
        pending: list[ShardDescriptor] = []
        for descriptor in descriptors:
            state = (
                checkpoints.load(descriptor.index)
                if checkpoints is not None
                else None
            )
            if state is not None:
                try:
                    partials[descriptor.index] = self._validate_partial(
                        descriptor, state
                    )
                except ShardCorrupt:
                    checkpoints.discard(descriptor.index)
                else:
                    reports[descriptor.index] = ShardReport(
                        index=descriptor.index,
                        status="checkpointed",
                        attempts=0,
                        tuples=int(np.asarray(state["shard.tuples"])),
                    )
                    continue
            pending.append(descriptor)

        outcomes: list[tuple[ShardDescriptor, dict | None, ShardReport]] = []
        if pending:
            if self._transport == "inline":
                for descriptor in pending:
                    outcomes.append(
                        self._run_shard(compiled, source, descriptor, checkpoints)
                    )
            else:
                with ThreadPoolExecutor(max_workers=len(pending)) as pool:
                    futures = [
                        pool.submit(
                            self._run_shard,
                            compiled,
                            source,
                            descriptor,
                            checkpoints,
                        )
                        for descriptor in pending
                    ]
                    outcomes = [future.result() for future in futures]
        failures: list[ShardReport] = []
        for descriptor, state, report in outcomes:
            reports[descriptor.index] = report
            if state is None:
                failures.append(report)
            else:
                partials[descriptor.index] = PlanChunkCounts.from_state(state)

        if failures and self._on_exhausted == "raise":
            worst = failures[0]
            raise ShardError(
                f"shard {worst.index} exhausted its "
                f"{self._retry.max_retries} retries ({worst.error}); "
                "re-run with on_exhausted='partial' to fold the surviving "
                "shards, or resume from the checkpoints",
                shard_index=worst.index,
                attempt=worst.attempts,
            )

        totals = compiled.kernel_plan.zeros()
        for descriptor in descriptors:
            if descriptor.index in partials:
                totals.merge(partials[descriptor.index])
        results = compiled.results(totals)
        coverage = _coverage(descriptors, partials, list(reports.values()))
        if checkpoints is not None and not coverage["failed_shards"]:
            checkpoints.clear()
        ordered = tuple(
            reports[descriptor.index] for descriptor in descriptors
        )
        return ShardRun(
            results=results,
            run_key=key,
            descriptors=tuple(descriptors),
            reports=ordered,
            coverage=coverage,
        )


def _coverage(
    descriptors: Sequence[ShardDescriptor],
    partials: Mapping[int, PlanChunkCounts],
    reports: Sequence[ShardReport],
) -> dict:
    """Exact accounting of what a (possibly degraded) fold represents."""
    completed = sorted(index for index in partials)
    failed = sorted(
        descriptor.index
        for descriptor in descriptors
        if descriptor.index not in partials
    )
    total_units = sum(descriptor.length for descriptor in descriptors)
    covered_units = sum(
        descriptor.length
        for descriptor in descriptors
        if descriptor.index in partials
    )
    covered_tuples = sum(
        report.tuples for report in reports if report.status != "failed"
    )
    return {
        "total_shards": len(descriptors),
        "completed_shards": completed,
        "failed_shards": failed,
        "unit": descriptors[0].unit if descriptors else "tuples",
        "total_units": total_units,
        "covered_units": covered_units,
        "coverage": (covered_units / total_units) if total_units else 1.0,
        "covered_tuples": covered_tuples,
    }
