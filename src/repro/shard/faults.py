"""Fault injection for the sharded mining plane.

Shipped as library code, not test scaffolding: operators can rehearse
failure drills against real stores, and the differential test suite drives
the same injectors.  Faults are *seeded schedules* — a
:class:`FaultSchedule` maps ``(shard_index, attempt)`` to a fault kind, so
a run with a given seed misbehaves identically every time and the
coordinator's recovery can be asserted bit-for-bit against a fault-free
oracle.

Fault kinds
-----------
``"crash"``
    The worker raises mid-count (process died, machine rebooted).
``"hang"``
    The worker stalls past the shard timeout before answering.
``"truncate"``
    The partial arrives with a piece missing (torn file, short read).
``"bitflip"``
    The partial arrives with a flipped bit (disk or network corruption).
``"wrong_token"``
    The partial was computed against *different data* (stale worker cache).
``"die"``
    The worker host is gone for good — every attempt fails.

Beyond the scheduled in-process faults, :class:`CrashSchedule` arms the
store's write-sequence crash points (see :mod:`repro.store.wal`) through
the environment, so a drill can launch a *real* subprocess daemon and
``SIGKILL`` it at any journal boundary — the chaos harness in
``tests/ingest`` drives the full kill matrix this way.
"""

from __future__ import annotations

import random
import time
from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.pipeline.sources import DataSource
from repro.relation import Relation, Schema
from repro.store.wal import CRASH_POINT_ENV, STORE_CRASH_POINTS, crash_point

__all__ = [
    "CRASH_POINT_ENV",
    "CrashSchedule",
    "FAULT_KINDS",
    "FaultSchedule",
    "FaultySource",
    "FaultyWorker",
    "STORE_CRASH_POINTS",
    "crash_point",
]


@dataclass(frozen=True)
class CrashSchedule:
    """Armed crash points for a subprocess drill, carried via environment.

    The store's write path calls :func:`repro.store.wal.crash_point` at
    each stage of its journaled sequence; a schedule names the stages that
    must die.  ``environment()`` produces the variables to merge into a
    subprocess's ``env`` — the child ``SIGKILL``\\ s itself the instant it
    reaches an armed point, no cleanup, no ``atexit``.  ``matrix()`` is
    the full kill matrix over every journal boundary, one schedule per
    stage, which is exactly the chaos drill's parameter list.
    """

    points: tuple[str, ...] = ()

    @classmethod
    def at(cls, *points: str) -> "CrashSchedule":
        """A schedule arming exactly the named points."""
        return cls(tuple(points))

    @classmethod
    def matrix(cls) -> list["CrashSchedule"]:
        """One single-point schedule per store write-sequence stage."""
        return [cls((point,)) for point in STORE_CRASH_POINTS]

    def environment(self) -> dict[str, str]:
        """Environment variables arming this schedule in a subprocess."""
        if not self.points:
            return {}
        return {CRASH_POINT_ENV: ",".join(self.points)}

FAULT_KINDS = ("crash", "hang", "truncate", "bitflip", "wrong_token", "die")


@dataclass(frozen=True)
class FaultSchedule:
    """Deterministic map from ``(shard_index, attempt)`` to a fault kind.

    ``faults`` maps a shard index to the fault kind per attempt (attempts
    beyond the listed ones succeed).  A ``"die"`` entry applies to every
    attempt of that shard regardless of position.
    """

    faults: dict[int, tuple[str, ...]] = field(default_factory=dict)

    @classmethod
    def always(cls, kind: str, shards: Sequence[int], attempts: int = 1) -> FaultSchedule:
        """Inject ``kind`` for the first ``attempts`` attempts of ``shards``."""
        return cls({int(shard): (kind,) * attempts for shard in shards})

    @classmethod
    def random(
        cls,
        seed: int,
        num_shards: int,
        rate: float = 0.5,
        attempts: int = 2,
        kinds: Sequence[str] = ("crash", "hang", "truncate", "bitflip"),
    ) -> FaultSchedule:
        """Seeded random schedule: each attempt faults with ``rate``."""
        rng = random.Random(seed)
        faults: dict[int, tuple[str, ...]] = {}
        for shard in range(num_shards):
            plan = tuple(
                rng.choice(list(kinds)) if rng.random() < rate else "ok"
                for _ in range(attempts)
            )
            if any(kind != "ok" for kind in plan):
                faults[shard] = plan
        return cls(faults)

    def kind(self, shard_index: int, attempt: int) -> str:
        """Fault kind for one attempt (``"ok"`` when none is scheduled)."""
        plan = self.faults.get(int(shard_index), ())
        if "die" in plan:
            return "die"
        if 0 <= attempt < len(plan):
            return plan[attempt]
        return "ok"


def _corrupt_truncate(state: dict) -> dict:
    """Drop the last counting key — a torn write / short read."""
    state = dict(state)
    keys = sorted(key for key in state if key.startswith("part"))
    if keys:
        del state[keys[-1]]
    return state


def _corrupt_bitflip(state: dict) -> dict:
    """Flip one bit inside the first non-empty counting array."""
    state = dict(state)
    for key in sorted(state):
        if not key.startswith("part"):
            continue
        array = np.asarray(state[key])
        if array.nbytes == 0:
            continue
        flipped = array.copy()
        flat = flipped.view(np.uint8).reshape(-1)
        flat[0] ^= 1
        state[key] = flipped
        return state
    return state


@dataclass
class FaultyWorker:
    """Wrap a shard worker so it fails on the schedule's say-so.

    Matches the coordinator's worker contract
    ``worker(compiled, source, descriptor, attempt) -> state dict`` and
    delegates to ``inner`` when no fault is scheduled.  Hangs are real but
    short (``hang_seconds``); pair them with a smaller ``shard_timeout`` so
    the coordinator observes a timeout without the suite actually waiting.
    """

    inner: Callable
    schedule: FaultSchedule
    hang_seconds: float = 0.05
    calls: list = field(default_factory=list)

    def __call__(self, compiled, source, descriptor, attempt: int = 0) -> dict:
        kind = self.schedule.kind(descriptor.index, attempt)
        self.calls.append((descriptor.index, attempt, kind))
        if kind in ("crash", "die"):
            raise RuntimeError(
                f"injected {kind} on shard {descriptor.index} attempt {attempt}"
            )
        if kind == "hang":
            time.sleep(self.hang_seconds)
            return self.inner(compiled, source, descriptor, attempt)
        state = self.inner(compiled, source, descriptor, attempt)
        if kind == "truncate":
            return _corrupt_truncate(state)
        if kind == "bitflip":
            return _corrupt_bitflip(state)
        if kind == "wrong_token":
            state = dict(state)
            state["shard.token"] = np.asarray("stale-token-from-other-data")
            return state
        return state


class FaultySource(DataSource):
    """Wrap a source so span scans misbehave on a per-call schedule.

    ``schedule`` is consumed one kind per :meth:`scan_span` call, in call
    order: ``"crash"`` raises after ``after_chunks`` chunks (I/O error
    mid-scan), ``"truncate"`` ends the stream silently early (the
    coordinator's tuple accounting must catch it), anything else scans
    normally.  Whole-source scans are never faulted — sampling stays clean.
    """

    def __init__(
        self,
        inner: DataSource,
        schedule: Sequence[str] = (),
        after_chunks: int = 1,
    ) -> None:
        self._inner = inner
        self._schedule = list(schedule)
        self._after_chunks = int(after_chunks)
        self.span_calls = 0

    @property
    def schema(self) -> Schema:
        return self._inner.schema

    def chunks(self) -> Iterator[Relation]:
        return self._inner.chunks()

    def scan(self, columns: Sequence[str] | None = None) -> Iterator[Relation]:
        return self._inner.scan(columns)

    def fingerprint(self, prefix: int | None = None):
        return self._inner.fingerprint(prefix)

    def scan_tail(
        self, start: int, columns: Sequence[str] | None = None
    ) -> Iterator[Relation]:
        return self._inner.scan_tail(start, columns)

    def scan_span(
        self, start: int, stop: int, columns: Sequence[str] | None = None
    ) -> Iterator[Relation]:
        index = self.span_calls
        self.span_calls += 1
        kind = self._schedule[index] if index < len(self._schedule) else "ok"
        chunks = self._inner.scan_span(start, stop, columns)
        if kind == "ok":
            return chunks

        def faulted() -> Iterator[Relation]:
            served = 0
            for chunk in chunks:
                if served >= self._after_chunks:
                    if kind == "crash":
                        raise OSError(
                            f"injected I/O failure in span [{start}, {stop}) "
                            f"after {served} chunks"
                        )
                    return  # "truncate": silent early end of stream
                yield chunk
                served += 1

        return faulted()
