"""Shard descriptors: fingerprint-stamped spans partitioning a data source.

A :class:`ShardDescriptor` names one span of a source in the source's own
fingerprint units — tuples for in-memory and chunked sources, bytes for CSV
files — so a worker anywhere can count exactly its slice via
:meth:`~repro.pipeline.DataSource.scan_span` and stamp the resulting partial
with the identity of the data it counted.  Partitions are exact covers: the
spans are contiguous, non-overlapping, and union to the full data region, so
folding every shard's partial in span order reproduces one full scan with
zero lost or double-counted tuples.

CSV partitioning never parses the file: split points are chosen by byte
arithmetic plus one ``readline`` per boundary to land on the next line start
(the same O(1)-seek discipline as :meth:`CSVSource.scan_tail`).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from repro.exceptions import ShardError
from repro.pipeline.sources import CSVSource, DataSource

__all__ = ["ShardDescriptor", "csv_byte_spans", "partition_source", "run_key"]


@dataclass(frozen=True)
class ShardDescriptor:
    """One shard's span of a partitioned source.

    Attributes
    ----------
    index:
        Position of the shard in the partition (fold order).
    start / stop:
        Half-open span ``[start, stop)`` in ``unit`` units.
    unit:
        ``"tuples"`` or ``"bytes"`` — the source's fingerprint unit.
    token:
        Fingerprint token of the *whole* source at partition time (empty
        when the source has no fingerprint).  Workers stamp their partials
        with it, so a partial computed against different data — an older
        file, the wrong file — is rejected as
        :class:`~repro.exceptions.ShardCorrupt` instead of folded.
    """

    index: int
    start: int
    stop: int
    unit: str
    token: str = ""

    @property
    def length(self) -> int:
        """Span extent in the descriptor's units."""
        return self.stop - self.start

    def describe(self) -> dict:
        """JSON-able form (checkpoint metadata, status reports)."""
        return {
            "index": self.index,
            "start": self.start,
            "stop": self.stop,
            "unit": self.unit,
            "token": self.token,
        }


def csv_byte_spans(path: str | Path, num_shards: int) -> list[tuple[int, int]]:
    """Line-aligned byte spans partitioning a CSV file's data region.

    The data region runs from one past the header newline to end of file.
    Target boundaries are placed at equal byte fractions, then each is
    advanced to the next line start with a single ``readline`` — no parsing,
    no full read.  Empty spans (more shards than lines) are dropped, so the
    result may hold fewer spans than requested.
    """
    if num_shards <= 0:
        raise ShardError("num_shards must be positive")
    path = Path(path)
    size = path.stat().st_size
    with path.open("rb") as handle:
        handle.readline()
        data_start = handle.tell()
        if data_start >= size:
            return []
        bounds = [data_start]
        data_bytes = size - data_start
        for shard in range(1, num_shards):
            target = data_start + (data_bytes * shard) // num_shards
            if target <= bounds[-1]:
                continue
            handle.seek(target)
            handle.readline()
            boundary = handle.tell()
            if boundary >= size:
                break
            if boundary > bounds[-1]:
                bounds.append(boundary)
    bounds.append(size)
    return [
        (start, stop)
        for start, stop in zip(bounds, bounds[1:])
        if stop > start
    ]


def partition_source(
    source: DataSource,
    num_shards: int,
    total_tuples: int | None = None,
) -> list[ShardDescriptor]:
    """Partition a source into shard descriptors (an exact cover).

    CSV sources partition by byte spans (cheap seeks, workers touch only
    their bytes); every other source partitions ``[0, total_tuples)`` into
    near-equal tuple spans — the caller supplies the total, normally counted
    for free during the coordinator's boundary-sampling pass.
    """
    if num_shards <= 0:
        raise ShardError("num_shards must be positive")
    fingerprint = source.fingerprint()
    token = fingerprint.token if fingerprint is not None else ""
    if isinstance(source, CSVSource):
        spans = csv_byte_spans(source.path, num_shards)
        return [
            ShardDescriptor(index, start, stop, "bytes", token)
            for index, (start, stop) in enumerate(spans)
        ]
    if total_tuples is None:
        raise ShardError(
            "partitioning a non-CSV source needs total_tuples (count it "
            "during the sampling pass)"
        )
    total = int(total_tuples)
    descriptors: list[ShardDescriptor] = []
    for shard in range(num_shards):
        start = (total * shard) // num_shards
        stop = (total * (shard + 1)) // num_shards
        if stop > start:
            descriptors.append(
                ShardDescriptor(len(descriptors), start, stop, "tuples", token)
            )
    return descriptors


def run_key(
    signature: str, seed: int, descriptors: list[ShardDescriptor]
) -> str:
    """Identity of one sharded run: plan signature, seed, and partition.

    Checkpoints are namespaced by this digest, so a resume only ever folds
    partials written for the *same* plan, seed, source data, and span layout
    — changing any of them lands in a fresh namespace and recounts.
    """
    payload = json.dumps(
        {
            "signature": signature,
            "seed": int(seed),
            "shards": [descriptor.describe() for descriptor in descriptors],
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]
