"""Package metadata for the Fukuda et al. (PODS 1996) reproduction."""

from setuptools import find_packages, setup

setup(
    name="repro-optimized-rules",
    version="0.2.0",
    description=(
        "Reproduction of 'Data Mining Using Two-Dimensional Optimized "
        "Association Rules' (Fukuda, Morimoto, Morishita, Tokuyama; PODS 1996): "
        "almost-equi-depth bucketing, linear-time optimized-confidence/support "
        "solvers, and a vectorized batch-mining engine"
    ),
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "pytest-timeout", "hypothesis"],
    },
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
        ],
    },
)
